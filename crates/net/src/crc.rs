//! CRC-32C (Castagnoli) — the checksum guarding wire frames and
//! checkpoint segments.
//!
//! The Castagnoli polynomial (`0x1EDC6F41`, reflected `0x82F63B78`) is
//! the iSCSI/ext4 choice: measurably better burst-error detection than
//! CRC-32/ISO-HDLC at the same cost, and the variant hardware CRC
//! instructions implement (SSE4.2 `crc32`, ARMv8 `crc32c*`), so a later
//! accelerated path can swap in without changing any stored checksum.
//! This implementation is a byte-at-a-time table walk: the table is
//! built in a `const fn` so there is no init-once state, and the loop is
//! fast enough for control-plane frames and checkpoint capture (both far
//! from the compute hot path).

/// Reflected CRC-32C polynomial.
const POLY: u32 = 0x82F6_3B78;

const fn make_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0usize;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ POLY
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

static TABLE: [u32; 256] = make_table();

/// CRC-32C of `data` (init `!0`, reflected, final xor `!0` — the standard
/// parameterisation, matching hardware `crc32c` instructions).
pub fn crc32c(data: &[u8]) -> u32 {
    let mut crc = !0u32;
    for &b in data {
        crc = (crc >> 8) ^ TABLE[((crc ^ b as u32) & 0xFF) as usize];
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // The canonical check value for CRC-32C.
        assert_eq!(crc32c(b"123456789"), 0xE306_9283);
        assert_eq!(crc32c(b""), 0);
        // RFC 3720 (iSCSI) appendix B.4 test patterns.
        assert_eq!(crc32c(&[0u8; 32]), 0x8A91_36AA);
        assert_eq!(crc32c(&[0xFFu8; 32]), 0x62A8_AB43);
    }

    #[test]
    fn any_single_bit_flip_changes_the_checksum() {
        let data: Vec<u8> = (0..64u8).collect();
        let clean = crc32c(&data);
        for bit in 0..data.len() * 8 {
            let mut flipped = data.clone();
            flipped[bit / 8] ^= 1 << (bit % 8);
            assert_ne!(crc32c(&flipped), clean, "bit {bit} not detected");
        }
    }
}
