//! # easyhps-net — virtual-MPI transport (channels or sockets)
//!
//! The EasyHPS paper deploys its master/slave runtime over MPICH on a
//! cluster. This crate provides the equivalent substrate: a
//! fully-connected set of *ranks* exchanging tagged, ordered messages —
//! over in-process channels by default, or over real TCP / Unix-domain
//! sockets ([`socket`]) when master and slaves run as separate OS
//! processes — plus deterministic fault injection (message drops, rank
//! death) and latency/bandwidth cost models the simulator uses to price
//! the same traffic on a real interconnect.
//!
//! ```
//! use easyhps_net::{Network, Rank, Tag, WireWriter, WireReader};
//!
//! let mut eps = Network::new(2);
//! let mut worker = eps.pop().unwrap();
//! let mut master = eps.pop().unwrap();
//!
//! let mut w = WireWriter::new();
//! w.put_u32(7).put_bytes(b"task data");
//! master.send(Rank(1), Tag(1), w.finish()).unwrap();
//!
//! let env = worker.recv().unwrap();
//! let mut r = WireReader::new(&env.payload);
//! assert_eq!(r.get_u32().unwrap(), 7);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod crc;
mod delay;
mod fault;
pub mod frame;
mod message;
mod reliable;
pub mod rpc;
pub mod socket;
mod transport;
mod wire;

pub use crc::crc32c;
pub use delay::DelayModel;
pub use fault::{FaultPlan, LinkSever};
pub use message::{Envelope, Rank, Tag};
pub use reliable::{
    FailReason, PeerReliStats, ReliStats, ReliableEndpoint, RetryPolicy, SendFailure,
};
pub use socket::{
    FleetAcceptor, LinkSnapshot, LinkStats, MembershipEvent, NetAddr, SocketConfig, SocketInfo,
    SocketListener,
};
pub use transport::{Endpoint, KillHandle, NetError, NetStats, Network};
pub use wire::{WireError, WireReader, WireWriter};
