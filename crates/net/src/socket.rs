//! Socket transport: master and slaves as separate OS processes.
//!
//! Replaces the in-process crossbeam links with real TCP or Unix-domain
//! connections while keeping the [`Endpoint`](crate::Endpoint) API,
//! fault injection and statistics identical — `ReliableEndpoint` and the
//! CRC frame layer run on top unchanged.
//!
//! ## Topology
//!
//! The runtime is a star: every message flows master (rank 0) ↔ slave.
//! The master listens, accepts one connection per slave and assigns
//! ranks; each slave holds exactly one connection (to the master) and
//! [`TxLink::Unrouted`](crate::transport::TxLink) stubs for its siblings.
//!
//! ## Wire format
//!
//! Every message is one length-prefixed frame:
//!
//! ```text
//! [len u32 LE] [src u32 LE] [dst u32 LE] [tag u32 LE] [payload …]
//! ```
//!
//! `len` counts everything after itself (12-byte header + payload) and
//! is bounded by [`SocketConfig::max_frame`]; an out-of-range length
//! desynchronises the stream and is treated as a fatal connection error.
//! Payload integrity is *not* this layer's job — the sealed CRC-32C
//! frames from [`crate::frame`] ride inside the payload exactly as they
//! do in-process.
//!
//! ## Backpressure
//!
//! Each connection owns a bounded outbound queue drained by a writer
//! thread. `send` blocks once [`SocketConfig::outbound_hwm`] bytes are
//! queued (a single frame larger than the high-water mark is admitted
//! when the queue is empty, so the mark can be tuned below the largest
//! strip without deadlocking). A reader thread feeds received envelopes
//! into the endpoint's ordinary channel.
//!
//! ## Failure mapping
//!
//! Socket errors collapse onto the existing [`NetError`] semantics: a
//! closed or errored connection makes every subsequent send to that peer
//! return [`NetError::Disconnected`] (which the runtime's fault
//! tolerance already treats as "peer unreachable"), receives simply stop
//! yielding messages from that peer (heartbeat silence), and
//! [`KillHandle`](crate::KillHandle) / timeouts behave exactly as over
//! channels.

use crate::fault::FaultPlan;
use crate::message::{Envelope, Rank, Tag};
use crate::transport::{Endpoint, NetError, TxLink};
use bytes::Bytes;
use crossbeam::channel::{unbounded, Sender};
use std::collections::VecDeque;
use std::fmt;
use std::io::{self, Read, Write};
use std::net::{Shutdown, TcpListener, TcpStream};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Handshake magic: `"EHPS"` little-endian.
const MAGIC: u32 = 0x5350_4845;
/// Wire protocol version; bumped on any incompatible frame change.
const VERSION: u8 = 1;
/// `want_rank` wildcard: let the master pick.
pub const ANY_RANK: u32 = u32::MAX;
/// Bytes of a frame header past the length prefix (src, dst, tag).
const FRAME_HEADER: usize = 12;

/// Knobs for the socket backend.
#[derive(Clone, Debug)]
pub struct SocketConfig {
    /// Maximum accepted frame length (header + payload). Oversized
    /// frames are a fatal connection error on both send and receive.
    pub max_frame: usize,
    /// Outbound queue high-water mark in bytes; sends block past it.
    pub outbound_hwm: usize,
    /// How long a slave keeps retrying its initial connect (the master
    /// may not be up yet).
    pub connect_timeout: Duration,
    /// How long the master waits for all slaves to join.
    pub accept_timeout: Duration,
    /// Disable Nagle's algorithm on TCP links (small protocol messages
    /// dominate; latency matters more than packet count).
    pub nodelay: bool,
}

impl Default for SocketConfig {
    fn default() -> Self {
        SocketConfig {
            max_frame: 64 << 20,
            outbound_hwm: 8 << 20,
            connect_timeout: Duration::from_secs(30),
            accept_timeout: Duration::from_secs(60),
            nodelay: true,
        }
    }
}

/// A transport address: `tcp:host:port` (or bare `host:port`) or
/// `uds:/path/to.sock`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum NetAddr {
    /// TCP endpoint, `host:port`.
    Tcp(String),
    /// Unix-domain socket path.
    Uds(PathBuf),
}

impl NetAddr {
    /// Parse an address spec. Accepted forms: `tcp:HOST:PORT`,
    /// `HOST:PORT`, `uds:PATH`, `unix:PATH`.
    pub fn parse(spec: &str) -> Result<NetAddr, String> {
        if let Some(rest) = spec.strip_prefix("tcp:") {
            return Ok(NetAddr::Tcp(rest.to_string()));
        }
        if let Some(rest) = spec
            .strip_prefix("uds:")
            .or_else(|| spec.strip_prefix("unix:"))
        {
            return Ok(NetAddr::Uds(PathBuf::from(rest)));
        }
        if spec.contains(':') {
            return Ok(NetAddr::Tcp(spec.to_string()));
        }
        Err(format!(
            "bad address {spec:?}: expected tcp:HOST:PORT, HOST:PORT or uds:PATH"
        ))
    }
}

impl fmt::Display for NetAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetAddr::Tcp(hp) => write!(f, "tcp:{hp}"),
            NetAddr::Uds(p) => write!(f, "uds:{}", p.display()),
        }
    }
}

/// Per-link socket counters, shared with the reader/writer threads and
/// exported by the runtime's observability layer.
#[derive(Debug, Default)]
pub struct LinkStats {
    /// Bytes currently sitting in the outbound queue (gauge).
    pub bytes_queued: AtomicU64,
    /// Frames handed to the writer thread.
    pub frames_sent: AtomicU64,
    /// Bytes written to the socket (including length prefixes).
    pub bytes_sent: AtomicU64,
    /// Frames received and forwarded to the endpoint.
    pub frames_recv: AtomicU64,
    /// Bytes read from the socket (including length prefixes).
    pub bytes_recv: AtomicU64,
    /// Frames rejected: oversized/undersized length prefix (fatal) or a
    /// destination mismatch (dropped).
    pub frames_rejected: AtomicU64,
    /// Connect attempts beyond the first (slave-side retry loop).
    pub reconnects: AtomicU64,
    /// Times the connection was observed closed or errored.
    pub disconnects: AtomicU64,
}

/// A point-in-time copy of [`LinkStats`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct LinkSnapshot {
    /// See [`LinkStats::bytes_queued`].
    pub bytes_queued: u64,
    /// See [`LinkStats::frames_sent`].
    pub frames_sent: u64,
    /// See [`LinkStats::bytes_sent`].
    pub bytes_sent: u64,
    /// See [`LinkStats::frames_recv`].
    pub frames_recv: u64,
    /// See [`LinkStats::bytes_recv`].
    pub bytes_recv: u64,
    /// See [`LinkStats::frames_rejected`].
    pub frames_rejected: u64,
    /// See [`LinkStats::reconnects`].
    pub reconnects: u64,
    /// See [`LinkStats::disconnects`].
    pub disconnects: u64,
}

impl LinkStats {
    /// Copy the counters.
    pub fn snapshot(&self) -> LinkSnapshot {
        LinkSnapshot {
            bytes_queued: self.bytes_queued.load(Ordering::Relaxed),
            frames_sent: self.frames_sent.load(Ordering::Relaxed),
            bytes_sent: self.bytes_sent.load(Ordering::Relaxed),
            frames_recv: self.frames_recv.load(Ordering::Relaxed),
            bytes_recv: self.bytes_recv.load(Ordering::Relaxed),
            frames_rejected: self.frames_rejected.load(Ordering::Relaxed),
            reconnects: self.reconnects.load(Ordering::Relaxed),
            disconnects: self.disconnects.load(Ordering::Relaxed),
        }
    }
}

/// What a socket endpoint knows about its links, returned alongside the
/// [`Endpoint`] so callers can export per-link counters.
#[derive(Clone, Debug)]
pub struct SocketInfo {
    /// This endpoint's assigned rank.
    pub rank: Rank,
    /// Total ranks in the job (slaves + master).
    pub n_ranks: usize,
    /// `(peer rank, counters)` for every socket link this endpoint owns.
    pub links: Vec<(Rank, Arc<LinkStats>)>,
}

impl SocketInfo {
    /// Counters for the link to `peer`, if one exists.
    pub fn link(&self, peer: Rank) -> Option<&Arc<LinkStats>> {
        self.links.iter().find(|(r, _)| *r == peer).map(|(_, s)| s)
    }
}

// ---------------------------------------------------------------------
// Streams
// ---------------------------------------------------------------------

/// A connected byte stream of either flavour.
#[derive(Debug)]
pub(crate) enum SocketStream {
    Tcp(TcpStream),
    Uds(UnixStream),
}

impl SocketStream {
    fn try_clone(&self) -> io::Result<SocketStream> {
        Ok(match self {
            SocketStream::Tcp(s) => SocketStream::Tcp(s.try_clone()?),
            SocketStream::Uds(s) => SocketStream::Uds(s.try_clone()?),
        })
    }

    fn shutdown(&self) {
        let _ = match self {
            SocketStream::Tcp(s) => s.shutdown(Shutdown::Both),
            SocketStream::Uds(s) => s.shutdown(Shutdown::Both),
        };
    }

    fn set_read_timeout(&self, t: Option<Duration>) -> io::Result<()> {
        match self {
            SocketStream::Tcp(s) => s.set_read_timeout(t),
            SocketStream::Uds(s) => s.set_read_timeout(t),
        }
    }
}

impl Read for SocketStream {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            SocketStream::Tcp(s) => s.read(buf),
            SocketStream::Uds(s) => s.read(buf),
        }
    }
}

impl Write for SocketStream {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self {
            SocketStream::Tcp(s) => s.write(buf),
            SocketStream::Uds(s) => s.write(buf),
        }
    }
    fn flush(&mut self) -> io::Result<()> {
        match self {
            SocketStream::Tcp(s) => s.flush(),
            SocketStream::Uds(s) => s.flush(),
        }
    }
}

// ---------------------------------------------------------------------
// Outbound queue + writer/reader threads
// ---------------------------------------------------------------------

/// Mutable half of a connection's outbound queue.
#[derive(Default)]
struct OutQueue {
    frames: VecDeque<Vec<u8>>,
    queued_bytes: usize,
    /// Connection observed broken (IO error or peer EOF): sends fail.
    closed: bool,
    /// Every `SocketTx` clone for this connection has been dropped:
    /// writer flushes and exits.
    tx_dropped: bool,
}

/// State shared between one connection's `SocketTx`, writer and reader.
struct Conn {
    q: Mutex<OutQueue>,
    cv: Condvar,
    hwm: usize,
    max_frame: usize,
    stats: Arc<LinkStats>,
}

impl Conn {
    fn mark_closed(&self) {
        let mut q = self.q.lock().unwrap();
        if !q.closed {
            q.closed = true;
            self.stats.disconnects.fetch_add(1, Ordering::Relaxed);
        }
        self.cv.notify_all();
    }
}

/// Sending half of a socket link, held inside an endpoint's `TxLink`.
/// Clones share the connection; the writer thread is told to flush and
/// exit only when the *last* clone drops (see [`TxGuard`]), so a
/// persistent fleet endpoint keeps the link open while per-job endpoint
/// forks are created and dropped freely.
#[derive(Clone)]
pub(crate) struct SocketTx {
    conn: Arc<Conn>,
    _guard: Arc<TxGuard>,
}

/// Drop token shared by every clone of one connection's `SocketTx`.
struct TxGuard {
    conn: Arc<Conn>,
}

impl Drop for TxGuard {
    fn drop(&mut self) {
        let mut q = self.conn.q.lock().unwrap();
        q.tx_dropped = true;
        self.conn.cv.notify_all();
    }
}

impl SocketTx {
    /// Encode and enqueue one envelope, blocking while the outbound
    /// queue sits above the high-water mark.
    pub(crate) fn send(&self, env: &Envelope) -> Result<(), NetError> {
        let frame = encode_frame(env);
        if frame.len() - 4 > self.conn.max_frame {
            self.conn
                .stats
                .frames_rejected
                .fetch_add(1, Ordering::Relaxed);
            return Err(NetError::Disconnected);
        }
        let mut q = self.conn.q.lock().unwrap();
        loop {
            if q.closed {
                return Err(NetError::Disconnected);
            }
            // Admit when under the mark, or unconditionally when the
            // queue is empty (a lone giant frame must not deadlock).
            if q.queued_bytes + frame.len() <= self.conn.hwm || q.frames.is_empty() {
                break;
            }
            q = self
                .conn
                .cv
                .wait_timeout(q, Duration::from_millis(50))
                .unwrap()
                .0;
        }
        q.queued_bytes += frame.len();
        self.conn
            .stats
            .bytes_queued
            .store(q.queued_bytes as u64, Ordering::Relaxed);
        self.conn.stats.frames_sent.fetch_add(1, Ordering::Relaxed);
        q.frames.push_back(frame);
        self.conn.cv.notify_all();
        Ok(())
    }
}

fn encode_frame(env: &Envelope) -> Vec<u8> {
    let len = (FRAME_HEADER + env.payload.len()) as u32;
    let mut v = Vec::with_capacity(4 + len as usize);
    v.extend_from_slice(&len.to_le_bytes());
    v.extend_from_slice(&env.src.0.to_le_bytes());
    v.extend_from_slice(&env.dst.0.to_le_bytes());
    v.extend_from_slice(&env.tag.0.to_le_bytes());
    v.extend_from_slice(&env.payload);
    v
}

/// Writer thread: drain the outbound queue onto the stream. Exits when
/// the connection breaks or when the endpoint is gone and the queue is
/// flushed (so teardown messages like END still reach the peer).
fn writer_loop(conn: Arc<Conn>, mut stream: SocketStream) {
    loop {
        let frame = {
            let mut q = conn.q.lock().unwrap();
            loop {
                if let Some(f) = q.frames.pop_front() {
                    q.queued_bytes -= f.len();
                    conn.stats
                        .bytes_queued
                        .store(q.queued_bytes as u64, Ordering::Relaxed);
                    conn.cv.notify_all();
                    break Some(f);
                }
                if q.closed || q.tx_dropped {
                    break None;
                }
                q = conn
                    .cv
                    .wait_timeout(q, Duration::from_millis(100))
                    .unwrap()
                    .0;
            }
        };
        let Some(frame) = frame else { break };
        if stream
            .write_all(&frame)
            .and_then(|()| stream.flush())
            .is_err()
        {
            conn.mark_closed();
            break;
        }
        conn.stats
            .bytes_sent
            .fetch_add(frame.len() as u64, Ordering::Relaxed);
    }
    stream.shutdown();
}

/// Reader thread: decode length-prefixed frames and forward them into
/// the endpoint's channel. On EOF or error the connection is marked
/// closed so subsequent sends fail with `Disconnected`.
fn reader_loop(
    conn: Arc<Conn>,
    mut stream: SocketStream,
    peer: Rank,
    me: Rank,
    out: Sender<Envelope>,
) {
    loop {
        let mut lenb = [0u8; 4];
        if stream.read_exact(&mut lenb).is_err() {
            break;
        }
        let len = u32::from_le_bytes(lenb) as usize;
        if len < FRAME_HEADER || len > conn.max_frame {
            // The stream is desynchronised; nothing after this length can
            // be trusted. Fatal for the connection.
            conn.stats.frames_rejected.fetch_add(1, Ordering::Relaxed);
            break;
        }
        let mut body = vec![0u8; len];
        if stream.read_exact(&mut body).is_err() {
            break;
        }
        conn.stats
            .bytes_recv
            .fetch_add(4 + len as u64, Ordering::Relaxed);
        let dst = Rank(u32::from_le_bytes(body[4..8].try_into().unwrap()));
        let tag = Tag(u32::from_le_bytes(body[8..12].try_into().unwrap()));
        if dst != me {
            // Mis-addressed frame; the boundary is intact so just drop it.
            conn.stats.frames_rejected.fetch_add(1, Ordering::Relaxed);
            continue;
        }
        let env = Envelope {
            // The connection, not the wire, is the source of truth for
            // the sender's identity.
            src: peer,
            dst,
            tag,
            payload: Bytes::from(body.split_off(FRAME_HEADER)),
        };
        conn.stats.frames_recv.fetch_add(1, Ordering::Relaxed);
        if out.send(env).is_err() {
            break; // endpoint dropped
        }
    }
    conn.mark_closed();
    stream.shutdown();
}

fn spawn_link(
    stream: SocketStream,
    peer: Rank,
    me: Rank,
    cfg: &SocketConfig,
    out: Sender<Envelope>,
    stats: Arc<LinkStats>,
) -> io::Result<SocketTx> {
    let conn = Arc::new(Conn {
        q: Mutex::new(OutQueue::default()),
        cv: Condvar::new(),
        hwm: cfg.outbound_hwm,
        max_frame: cfg.max_frame,
        stats,
    });
    let reader_stream = stream.try_clone()?;
    let wc = conn.clone();
    std::thread::Builder::new()
        .name(format!("sock-wr-{}", peer.0))
        .spawn(move || writer_loop(wc, stream))
        .expect("spawn socket writer");
    let rc = conn.clone();
    std::thread::Builder::new()
        .name(format!("sock-rd-{}", peer.0))
        .spawn(move || reader_loop(rc, reader_stream, peer, me, out))
        .expect("spawn socket reader");
    let guard = Arc::new(TxGuard { conn: conn.clone() });
    Ok(SocketTx {
        conn,
        _guard: guard,
    })
}

// ---------------------------------------------------------------------
// Handshake
// ---------------------------------------------------------------------

fn write_hello(s: &mut SocketStream, want_rank: u32) -> io::Result<()> {
    let mut buf = [0u8; 9];
    buf[..4].copy_from_slice(&MAGIC.to_le_bytes());
    buf[4] = VERSION;
    buf[5..9].copy_from_slice(&want_rank.to_le_bytes());
    s.write_all(&buf).and_then(|()| s.flush())
}

fn read_hello(s: &mut SocketStream) -> io::Result<u32> {
    let mut buf = [0u8; 9];
    s.read_exact(&mut buf)?;
    check_magic_version(&buf)?;
    Ok(u32::from_le_bytes(buf[5..9].try_into().unwrap()))
}

fn write_welcome(s: &mut SocketStream, rank: u32, n_ranks: u32) -> io::Result<()> {
    let mut buf = [0u8; 13];
    buf[..4].copy_from_slice(&MAGIC.to_le_bytes());
    buf[4] = VERSION;
    buf[5..9].copy_from_slice(&rank.to_le_bytes());
    buf[9..13].copy_from_slice(&n_ranks.to_le_bytes());
    s.write_all(&buf).and_then(|()| s.flush())
}

fn read_welcome(s: &mut SocketStream) -> io::Result<(u32, u32)> {
    let mut buf = [0u8; 13];
    s.read_exact(&mut buf)?;
    check_magic_version(&buf)?;
    Ok((
        u32::from_le_bytes(buf[5..9].try_into().unwrap()),
        u32::from_le_bytes(buf[9..13].try_into().unwrap()),
    ))
}

fn check_magic_version(buf: &[u8]) -> io::Result<()> {
    if u32::from_le_bytes(buf[..4].try_into().unwrap()) != MAGIC {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "not an easyhps peer (bad magic)",
        ));
    }
    if buf[4] != VERSION {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!(
                "protocol version mismatch: peer {}, ours {}",
                buf[4], VERSION
            ),
        ));
    }
    Ok(())
}

// ---------------------------------------------------------------------
// Master: listen + accept
// ---------------------------------------------------------------------

enum ListenerInner {
    Tcp(TcpListener),
    Uds(UnixListener, PathBuf),
}

/// A bound listener; call [`SocketListener::accept_ranks`] to gather the
/// slave connections and build the master endpoint. Binding is split
/// from accepting so callers can learn the actual address (ephemeral TCP
/// port) before starting slaves.
pub struct SocketListener {
    inner: ListenerInner,
    cfg: SocketConfig,
}

impl SocketListener {
    /// Bind to `addr`. For `tcp:host:0` the OS picks a port; read the
    /// result back with [`SocketListener::local_addr`].
    pub fn bind(addr: &NetAddr, cfg: SocketConfig) -> io::Result<SocketListener> {
        let inner = match addr {
            NetAddr::Tcp(hp) => ListenerInner::Tcp(TcpListener::bind(hp)?),
            NetAddr::Uds(path) => {
                // A stale socket file from a crashed run blocks bind.
                let _ = std::fs::remove_file(path);
                ListenerInner::Uds(UnixListener::bind(path)?, path.clone())
            }
        };
        Ok(SocketListener { inner, cfg })
    }

    /// The address actually bound (port resolved for TCP).
    pub fn local_addr(&self) -> NetAddr {
        match &self.inner {
            ListenerInner::Tcp(l) => NetAddr::Tcp(
                l.local_addr()
                    .map(|a| a.to_string())
                    .unwrap_or_else(|_| "?".into()),
            ),
            ListenerInner::Uds(_, path) => NetAddr::Uds(path.clone()),
        }
    }

    fn accept_one(&self, deadline: Instant) -> io::Result<SocketStream> {
        // Poll non-blocking accepts so a missing slave cannot park the
        // master past its accept timeout.
        match &self.inner {
            ListenerInner::Tcp(l) => l.set_nonblocking(true)?,
            ListenerInner::Uds(l, _) => l.set_nonblocking(true)?,
        }
        loop {
            let got = match &self.inner {
                ListenerInner::Tcp(l) => l.accept().map(|(s, _)| SocketStream::Tcp(s)),
                ListenerInner::Uds(l, _) => l.accept().map(|(s, _)| SocketStream::Uds(s)),
            };
            match got {
                Ok(s) => {
                    if let SocketStream::Tcp(t) = &s {
                        let _ = t.set_nodelay(self.cfg.nodelay);
                    }
                    return Ok(s);
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    if Instant::now() >= deadline {
                        return Err(io::Error::new(
                            io::ErrorKind::TimedOut,
                            "timed out waiting for slaves to connect",
                        ));
                    }
                    std::thread::sleep(Duration::from_millis(5));
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// Accept `n_slaves` connections, assign ranks `1..=n_slaves`
    /// (honouring a slave's `want_rank` when it is free) and return the
    /// master endpoint plus per-link counters.
    pub fn accept_ranks(
        self,
        n_slaves: usize,
        plan: Option<FaultPlan>,
    ) -> io::Result<(Endpoint, SocketInfo)> {
        assert!(n_slaves > 0, "a socket cluster needs at least one slave");
        let n_ranks = n_slaves + 1;
        let deadline = Instant::now() + self.cfg.accept_timeout;
        let (env_tx, env_rx) = unbounded();
        let mut links: Vec<TxLink> = (0..n_ranks).map(|_| TxLink::Unrouted).collect();
        links[0] = TxLink::Channel(env_tx.clone()); // loopback
        let mut taken = vec![false; n_ranks];
        taken[0] = true;
        let mut info_links = Vec::with_capacity(n_slaves);
        while info_links.len() < n_slaves {
            let mut stream = self.accept_one(deadline)?;
            stream.set_read_timeout(Some(Duration::from_secs(10)))?;
            let want = match read_hello(&mut stream) {
                Ok(w) => w,
                Err(_) => continue, // garbage peer: drop the connection
            };
            let rank = match (want as usize) < n_ranks && want != 0 && !taken[want as usize] {
                true => want as usize,
                false => match taken.iter().position(|t| !t) {
                    Some(r) => r,
                    None => break,
                },
            };
            write_welcome(&mut stream, rank as u32, n_ranks as u32)?;
            stream.set_read_timeout(None)?;
            taken[rank] = true;
            let stats = Arc::new(LinkStats::default());
            let tx = spawn_link(
                stream,
                Rank(rank as u32),
                Rank(0),
                &self.cfg,
                env_tx.clone(),
                stats.clone(),
            )?;
            links[rank] = TxLink::Socket(tx);
            info_links.push((Rank(rank as u32), stats));
        }
        info_links.sort_by_key(|(r, _)| r.0);
        let ep = Endpoint::from_parts(Rank(0), links, env_rx, plan);
        let info = SocketInfo {
            rank: Rank(0),
            n_ranks,
            links: info_links,
        };
        Ok((ep, info))
    }
}

impl Drop for SocketListener {
    fn drop(&mut self) {
        if let ListenerInner::Uds(_, path) = &self.inner {
            let _ = std::fs::remove_file(path);
        }
    }
}

// ---------------------------------------------------------------------
// Slave: connect
// ---------------------------------------------------------------------

fn connect_once(addr: &NetAddr, cfg: &SocketConfig) -> io::Result<SocketStream> {
    match addr {
        NetAddr::Tcp(hp) => {
            let s = TcpStream::connect(hp)?;
            let _ = s.set_nodelay(cfg.nodelay);
            Ok(SocketStream::Tcp(s))
        }
        NetAddr::Uds(path) => Ok(SocketStream::Uds(UnixStream::connect(path)?)),
    }
}

/// Connect to a listening master, handshake a rank, and return the slave
/// endpoint. Retries the connect with backoff until
/// [`SocketConfig::connect_timeout`] so slaves may start before the
/// master; retries are counted in [`LinkStats::reconnects`].
pub fn connect(
    addr: &NetAddr,
    want_rank: Option<u32>,
    cfg: SocketConfig,
    plan: Option<FaultPlan>,
) -> io::Result<(Endpoint, SocketInfo)> {
    let stats = Arc::new(LinkStats::default());
    let deadline = Instant::now() + cfg.connect_timeout;
    let mut backoff = Duration::from_millis(10);
    let mut stream = loop {
        match connect_once(addr, &cfg) {
            Ok(s) => break s,
            Err(e) => {
                if Instant::now() >= deadline {
                    return Err(e);
                }
                stats.reconnects.fetch_add(1, Ordering::Relaxed);
                std::thread::sleep(backoff);
                backoff = (backoff * 2).min(Duration::from_millis(500));
            }
        }
    };
    stream.set_read_timeout(Some(Duration::from_secs(10)))?;
    write_hello(&mut stream, want_rank.unwrap_or(ANY_RANK))?;
    let (rank, n_ranks) = read_welcome(&mut stream)?;
    stream.set_read_timeout(None)?;
    let (env_tx, env_rx) = unbounded();
    let mut links: Vec<TxLink> = (0..n_ranks as usize).map(|_| TxLink::Unrouted).collect();
    let tx = spawn_link(
        stream,
        Rank(0),
        Rank(rank),
        &cfg,
        env_tx.clone(),
        stats.clone(),
    )?;
    links[0] = TxLink::Socket(tx);
    links[rank as usize] = TxLink::Channel(env_tx); // loopback
    let ep = Endpoint::from_parts(Rank(rank), links, env_rx, plan);
    let info = SocketInfo {
        rank: Rank(rank),
        n_ranks: n_ranks as usize,
        links: vec![(Rank(0), stats)],
    };
    Ok((ep, info))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::Tag;

    fn b(s: &'static str) -> Bytes {
        Bytes::from_static(s.as_bytes())
    }

    fn tcp_pair(n_slaves: usize) -> (Endpoint, SocketInfo, Vec<(Endpoint, SocketInfo)>) {
        let listener = SocketListener::bind(
            &NetAddr::parse("127.0.0.1:0").unwrap(),
            SocketConfig::default(),
        )
        .unwrap();
        let addr = listener.local_addr();
        let handles: Vec<_> = (1..=n_slaves)
            .map(|r| {
                let addr = addr.clone();
                std::thread::spawn(move || {
                    connect(&addr, Some(r as u32), SocketConfig::default(), None).unwrap()
                })
            })
            .collect();
        let (master, minfo) = listener.accept_ranks(n_slaves, None).unwrap();
        let slaves = handles.into_iter().map(|h| h.join().unwrap()).collect();
        (master, minfo, slaves)
    }

    #[test]
    fn addr_parse_forms() {
        assert_eq!(
            NetAddr::parse("tcp:1.2.3.4:99").unwrap(),
            NetAddr::Tcp("1.2.3.4:99".into())
        );
        assert_eq!(
            NetAddr::parse("1.2.3.4:99").unwrap(),
            NetAddr::Tcp("1.2.3.4:99".into())
        );
        assert_eq!(
            NetAddr::parse("uds:/tmp/x.sock").unwrap(),
            NetAddr::Uds("/tmp/x.sock".into())
        );
        assert_eq!(
            NetAddr::parse("unix:/tmp/x.sock").unwrap(),
            NetAddr::Uds("/tmp/x.sock".into())
        );
        assert!(NetAddr::parse("nonsense").is_err());
    }

    #[test]
    fn tcp_ping_pong_with_rank_assignment() {
        let (mut master, minfo, mut slaves) = tcp_pair(2);
        assert_eq!(minfo.n_ranks, 3);
        for (ep, info) in &slaves {
            assert_eq!(ep.rank(), info.rank);
            assert_eq!(ep.n_ranks(), 3);
        }
        for (ref mut ep, _) in &mut slaves {
            ep.send(Rank(0), Tag(1), b("hello")).unwrap();
        }
        for _ in 0..2 {
            let env = master.recv().unwrap();
            assert_eq!(env.tag, Tag(1));
            assert_eq!(&env.payload[..], b"hello");
            master.send(env.src, Tag(2), b("world")).unwrap();
        }
        for (ref mut ep, _) in &mut slaves {
            let env = ep.recv().unwrap();
            assert_eq!(env.src, Rank(0));
            assert_eq!(&env.payload[..], b"world");
        }
    }

    #[test]
    fn uds_ping_pong() {
        let path = std::env::temp_dir().join(format!("easyhps-test-{}.sock", std::process::id()));
        let listener =
            SocketListener::bind(&NetAddr::Uds(path.clone()), SocketConfig::default()).unwrap();
        let addr = listener.local_addr();
        let h = std::thread::spawn(move || {
            connect(&addr, None, SocketConfig::default(), None).unwrap()
        });
        let (mut master, _info) = listener.accept_ranks(1, None).unwrap();
        let (mut slave, _sinfo) = h.join().unwrap();
        slave.send(Rank(0), Tag(7), b("ping")).unwrap();
        assert_eq!(&master.recv().unwrap().payload[..], b"ping");
        master.send(slave.rank(), Tag(8), b("pong")).unwrap();
        assert_eq!(&slave.recv().unwrap().payload[..], b"pong");
        drop(master);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn slave_to_slave_is_unrouted() {
        let (_master, _minfo, mut slaves) = tcp_pair(2);
        let (ref mut s1, _) = slaves[0];
        assert_eq!(
            s1.send(Rank(2), Tag(0), Bytes::new()).unwrap_err(),
            NetError::Disconnected
        );
    }

    #[test]
    fn peer_death_fails_sends_promptly() {
        let (mut master, _minfo, slaves) = tcp_pair(1);
        drop(slaves); // slave endpoints drop: connections close
        let deadline = Instant::now() + Duration::from_secs(10);
        loop {
            match master.send(Rank(1), Tag(0), b("x")) {
                Err(NetError::Disconnected) => break,
                Ok(()) => {
                    assert!(Instant::now() < deadline, "send must start failing");
                    std::thread::sleep(Duration::from_millis(10));
                }
                Err(e) => panic!("unexpected error {e:?}"),
            }
        }
    }

    #[test]
    fn per_pair_ordering_over_tcp() {
        let (mut master, _minfo, mut slaves) = tcp_pair(1);
        for i in 0..200u32 {
            master.send(Rank(1), Tag(i), Bytes::new()).unwrap();
        }
        let (ref mut slave, _) = slaves[0];
        for i in 0..200u32 {
            assert_eq!(slave.recv().unwrap().tag, Tag(i));
        }
    }

    #[test]
    fn oversized_send_is_rejected() {
        let cfg = SocketConfig {
            max_frame: 1024,
            ..SocketConfig::default()
        };
        let listener =
            SocketListener::bind(&NetAddr::parse("127.0.0.1:0").unwrap(), cfg.clone()).unwrap();
        let addr = listener.local_addr();
        let ccfg = cfg.clone();
        let h = std::thread::spawn(move || connect(&addr, None, ccfg, None).unwrap());
        let (mut master, minfo) = listener.accept_ranks(1, None).unwrap();
        let (_slave, _sinfo) = h.join().unwrap();
        let big = Bytes::from(vec![0u8; 4096]);
        assert_eq!(
            master.send(Rank(1), Tag(0), big).unwrap_err(),
            NetError::Disconnected
        );
        let snap = minfo.link(Rank(1)).unwrap().snapshot();
        assert_eq!(snap.frames_rejected, 1);
    }

    #[test]
    fn fault_plans_apply_over_sockets() {
        // A lossy master drops deterministically even over TCP: the
        // fault layer sits above the link.
        let listener = SocketListener::bind(
            &NetAddr::parse("127.0.0.1:0").unwrap(),
            SocketConfig::default(),
        )
        .unwrap();
        let addr = listener.local_addr();
        let h = std::thread::spawn(move || {
            connect(&addr, None, SocketConfig::default(), None).unwrap()
        });
        let plan = FaultPlan::lossy(0.5, 42);
        let (mut master, _minfo) = listener.accept_ranks(1, Some(plan)).unwrap();
        let (mut slave, _sinfo) = h.join().unwrap();
        for _ in 0..100 {
            master.send(Rank(1), Tag(3), Bytes::new()).unwrap();
        }
        let mut got = 0u64;
        while slave.recv_timeout(Duration::from_millis(500)).is_ok() {
            got += 1;
        }
        let dropped = master.stats().dropped_msgs;
        assert_eq!(got + dropped, 100);
        assert!(
            dropped > 20 && dropped < 80,
            "drop rate wildly off: {dropped}"
        );
    }
}
