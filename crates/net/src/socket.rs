//! Socket transport: master and slaves as separate OS processes.
//!
//! Replaces the in-process crossbeam links with real TCP or Unix-domain
//! connections while keeping the [`Endpoint`](crate::Endpoint) API,
//! fault injection and statistics identical — `ReliableEndpoint` and the
//! CRC frame layer run on top unchanged.
//!
//! ## Topology
//!
//! The runtime is a star: every message flows master (rank 0) ↔ slave.
//! The master listens, accepts one connection per slave and assigns
//! ranks; each slave holds exactly one connection (to the master) and
//! [`TxLink::Unrouted`](crate::transport::TxLink) stubs for its siblings.
//!
//! ## Wire format
//!
//! Every message is one length-prefixed frame:
//!
//! ```text
//! [len u32 LE] [src u32 LE] [dst u32 LE] [tag u32 LE] [payload …]
//! ```
//!
//! `len` counts everything after itself (12-byte header + payload) and
//! is bounded by [`SocketConfig::max_frame`]; an out-of-range length
//! desynchronises the stream and is treated as a fatal connection error.
//! Payload integrity is *not* this layer's job — the sealed CRC-32C
//! frames from [`crate::frame`] ride inside the payload exactly as they
//! do in-process.
//!
//! ## Backpressure
//!
//! Each connection owns a bounded outbound queue drained by a writer
//! thread. `send` blocks once [`SocketConfig::outbound_hwm`] bytes are
//! queued (a single frame larger than the high-water mark is admitted
//! when the queue is empty, so the mark can be tuned below the largest
//! strip without deadlocking). A reader thread feeds received envelopes
//! into the endpoint's ordinary channel.
//!
//! ## Failure mapping
//!
//! Socket errors collapse onto the existing [`NetError`] semantics: a
//! closed or errored connection makes every subsequent send to that peer
//! return [`NetError::Disconnected`] (which the runtime's fault
//! tolerance already treats as "peer unreachable"), receives simply stop
//! yielding messages from that peer (heartbeat silence), and
//! [`KillHandle`](crate::KillHandle) / timeouts behave exactly as over
//! channels.

use crate::fault::FaultPlan;
use crate::message::{Envelope, Rank, Tag};
use crate::transport::{Endpoint, NetError, TxLink};
use bytes::Bytes;
use crossbeam::channel::{unbounded, Sender};
use std::collections::VecDeque;
use std::fmt;
use std::io::{self, Read, Write};
use std::net::{Shutdown, TcpListener, TcpStream};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, RwLock};
use std::time::{Duration, Instant};

/// Handshake magic: `"EHPS"` little-endian.
const MAGIC: u32 = 0x5350_4845;
/// Wire protocol version; bumped on any incompatible frame change.
/// Version 2 added the per-incarnation session id to the hello and the
/// fleet epoch to the welcome.
const VERSION: u8 = 2;
/// `want_rank` wildcard: let the master pick.
pub const ANY_RANK: u32 = u32::MAX;
/// Bytes of a frame header past the length prefix (src, dst, tag).
const FRAME_HEADER: usize = 12;

/// A fresh per-incarnation session id: unique across processes and across
/// `connect` calls within one process, never zero. The id is what lets
/// the master tell a resumed link (same session — splice, no fencing)
/// from a restarted slave (new session — fence the old incarnation).
fn fresh_session() -> u64 {
    static CTR: AtomicU64 = AtomicU64::new(0);
    let t = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .unwrap_or_default()
        .as_nanos() as u64;
    let mut x = t
        ^ ((std::process::id() as u64) << 32)
        ^ CTR
            .fetch_add(1, Ordering::Relaxed)
            .wrapping_mul(0x9E37_79B9_7F4A_7C15);
    // splitmix64 finalizer: spreads the entropy over all 64 bits.
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    (x ^ (x >> 31)) | 1
}

/// Knobs for the socket backend.
#[derive(Clone, Debug)]
pub struct SocketConfig {
    /// Maximum accepted frame length (header + payload). Oversized
    /// frames are a fatal connection error on both send and receive.
    pub max_frame: usize,
    /// Outbound queue high-water mark in bytes; sends block past it.
    pub outbound_hwm: usize,
    /// How long a slave keeps retrying its initial connect (the master
    /// may not be up yet).
    pub connect_timeout: Duration,
    /// How long the master waits for all slaves to join.
    pub accept_timeout: Duration,
    /// Disable Nagle's algorithm on TCP links (small protocol messages
    /// dominate; latency matters more than packet count).
    pub nodelay: bool,
    /// When set, a broken link is not terminal: the slave side re-dials
    /// the master with exponential backoff (resuming its rank and session)
    /// for up to this window before giving up, and queued sends wait out
    /// the outage instead of failing. `None` (the default) keeps the v1
    /// semantics: the first link error makes every later send return
    /// [`NetError::Disconnected`].
    pub reconnect_window: Option<Duration>,
}

impl Default for SocketConfig {
    fn default() -> Self {
        SocketConfig {
            max_frame: 64 << 20,
            outbound_hwm: 8 << 20,
            connect_timeout: Duration::from_secs(30),
            accept_timeout: Duration::from_secs(60),
            nodelay: true,
            reconnect_window: None,
        }
    }
}

/// A transport address: `tcp:host:port` (or bare `host:port`) or
/// `uds:/path/to.sock`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum NetAddr {
    /// TCP endpoint, `host:port`.
    Tcp(String),
    /// Unix-domain socket path.
    Uds(PathBuf),
}

impl NetAddr {
    /// Parse an address spec. Accepted forms: `tcp:HOST:PORT`,
    /// `HOST:PORT`, `uds:PATH`, `unix:PATH`.
    pub fn parse(spec: &str) -> Result<NetAddr, String> {
        if let Some(rest) = spec.strip_prefix("tcp:") {
            return Ok(NetAddr::Tcp(rest.to_string()));
        }
        if let Some(rest) = spec
            .strip_prefix("uds:")
            .or_else(|| spec.strip_prefix("unix:"))
        {
            return Ok(NetAddr::Uds(PathBuf::from(rest)));
        }
        if spec.contains(':') {
            return Ok(NetAddr::Tcp(spec.to_string()));
        }
        Err(format!(
            "bad address {spec:?}: expected tcp:HOST:PORT, HOST:PORT or uds:PATH"
        ))
    }
}

impl fmt::Display for NetAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetAddr::Tcp(hp) => write!(f, "tcp:{hp}"),
            NetAddr::Uds(p) => write!(f, "uds:{}", p.display()),
        }
    }
}

/// Per-link socket counters, shared with the reader/writer threads and
/// exported by the runtime's observability layer.
#[derive(Debug, Default)]
pub struct LinkStats {
    /// Bytes currently sitting in the outbound queue (gauge).
    pub bytes_queued: AtomicU64,
    /// Frames handed to the writer thread.
    pub frames_sent: AtomicU64,
    /// Bytes written to the socket (including length prefixes).
    pub bytes_sent: AtomicU64,
    /// Frames received and forwarded to the endpoint.
    pub frames_recv: AtomicU64,
    /// Bytes read from the socket (including length prefixes).
    pub bytes_recv: AtomicU64,
    /// Frames rejected: oversized/undersized length prefix (fatal) or a
    /// destination mismatch (dropped).
    pub frames_rejected: AtomicU64,
    /// Connect attempts beyond the first (slave-side retry loop).
    pub reconnects: AtomicU64,
    /// Times the connection was observed closed or errored.
    pub disconnects: AtomicU64,
}

/// A point-in-time copy of [`LinkStats`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct LinkSnapshot {
    /// See [`LinkStats::bytes_queued`].
    pub bytes_queued: u64,
    /// See [`LinkStats::frames_sent`].
    pub frames_sent: u64,
    /// See [`LinkStats::bytes_sent`].
    pub bytes_sent: u64,
    /// See [`LinkStats::frames_recv`].
    pub frames_recv: u64,
    /// See [`LinkStats::bytes_recv`].
    pub bytes_recv: u64,
    /// See [`LinkStats::frames_rejected`].
    pub frames_rejected: u64,
    /// See [`LinkStats::reconnects`].
    pub reconnects: u64,
    /// See [`LinkStats::disconnects`].
    pub disconnects: u64,
}

impl LinkStats {
    /// Copy the counters.
    pub fn snapshot(&self) -> LinkSnapshot {
        LinkSnapshot {
            bytes_queued: self.bytes_queued.load(Ordering::Relaxed),
            frames_sent: self.frames_sent.load(Ordering::Relaxed),
            bytes_sent: self.bytes_sent.load(Ordering::Relaxed),
            frames_recv: self.frames_recv.load(Ordering::Relaxed),
            bytes_recv: self.bytes_recv.load(Ordering::Relaxed),
            frames_rejected: self.frames_rejected.load(Ordering::Relaxed),
            reconnects: self.reconnects.load(Ordering::Relaxed),
            disconnects: self.disconnects.load(Ordering::Relaxed),
        }
    }
}

/// What a socket endpoint knows about its links, returned alongside the
/// [`Endpoint`] so callers can export per-link counters.
#[derive(Clone, Debug)]
pub struct SocketInfo {
    /// This endpoint's assigned rank.
    pub rank: Rank,
    /// Total ranks in the job (slaves + master).
    pub n_ranks: usize,
    /// `(peer rank, counters)` for every socket link this endpoint owns.
    pub links: Vec<(Rank, Arc<LinkStats>)>,
    /// The fleet epoch the handshake reported. Fenced fleets
    /// ([`SocketListener::accept_fleet`]) start at 1; plain
    /// [`SocketListener::accept_ranks`] / [`connect`] clusters report 0,
    /// matching the in-process transport's epochless runs.
    pub epoch: u64,
}

impl SocketInfo {
    /// Counters for the link to `peer`, if one exists.
    pub fn link(&self, peer: Rank) -> Option<&Arc<LinkStats>> {
        self.links.iter().find(|(r, _)| *r == peer).map(|(_, s)| s)
    }
}

// ---------------------------------------------------------------------
// Streams
// ---------------------------------------------------------------------

/// A connected byte stream of either flavour.
#[derive(Debug)]
pub(crate) enum SocketStream {
    Tcp(TcpStream),
    Uds(UnixStream),
}

impl SocketStream {
    fn try_clone(&self) -> io::Result<SocketStream> {
        Ok(match self {
            SocketStream::Tcp(s) => SocketStream::Tcp(s.try_clone()?),
            SocketStream::Uds(s) => SocketStream::Uds(s.try_clone()?),
        })
    }

    fn shutdown(&self) {
        let _ = match self {
            SocketStream::Tcp(s) => s.shutdown(Shutdown::Both),
            SocketStream::Uds(s) => s.shutdown(Shutdown::Both),
        };
    }

    fn set_read_timeout(&self, t: Option<Duration>) -> io::Result<()> {
        match self {
            SocketStream::Tcp(s) => s.set_read_timeout(t),
            SocketStream::Uds(s) => s.set_read_timeout(t),
        }
    }
}

impl Read for SocketStream {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            SocketStream::Tcp(s) => s.read(buf),
            SocketStream::Uds(s) => s.read(buf),
        }
    }
}

impl Write for SocketStream {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self {
            SocketStream::Tcp(s) => s.write(buf),
            SocketStream::Uds(s) => s.write(buf),
        }
    }
    fn flush(&mut self) -> io::Result<()> {
        match self {
            SocketStream::Tcp(s) => s.flush(),
            SocketStream::Uds(s) => s.flush(),
        }
    }
}

// ---------------------------------------------------------------------
// Outbound queue + writer/reader threads
// ---------------------------------------------------------------------

/// Mutable half of a connection's outbound queue.
#[derive(Default)]
struct OutQueue {
    frames: VecDeque<Vec<u8>>,
    queued_bytes: usize,
    /// Connection observed broken (IO error or peer EOF): sends fail.
    closed: bool,
    /// Every `SocketTx` clone for this connection has been dropped:
    /// writer flushes and exits.
    tx_dropped: bool,
}

/// How a connection reacts to a broken stream.
enum RelinkMode {
    /// v1 semantics: the first link error closes the connection for good.
    Terminal,
    /// Slave side: re-dial the master with exponential backoff, resuming
    /// the same rank and session, for up to `window`.
    Dial {
        addr: NetAddr,
        rank: u32,
        session: u64,
        window: Duration,
        cfg: SocketConfig,
    },
    /// Master side: hold the link open and wait for the fleet acceptor to
    /// splice a replacement stream in when the slave reconnects.
    Await,
}

/// The mutable link half of a connection: the current stream (if any)
/// and a generation counter bumped on every splice, so reader and writer
/// threads can tell a healed link from the one they saw break.
#[derive(Default)]
struct LinkState {
    gen: u64,
    stream: Option<SocketStream>,
    /// Sever-imposed downtime: the dialer must not re-establish before
    /// this instant.
    hold_until: Option<Instant>,
}

/// State shared between one connection's `SocketTx`, writer and reader.
struct Conn {
    q: Mutex<OutQueue>,
    cv: Condvar,
    link: Mutex<LinkState>,
    link_cv: Condvar,
    mode: RelinkMode,
    hwm: usize,
    max_frame: usize,
    stats: Arc<LinkStats>,
}

impl Conn {
    fn mark_closed(&self) {
        let mut q = self.q.lock().unwrap();
        if !q.closed {
            q.closed = true;
            self.stats.disconnects.fetch_add(1, Ordering::Relaxed);
        }
        self.cv.notify_all();
        drop(q);
        // Wake anyone parked on the link state too (dialer, writer).
        let mut l = self.link.lock().unwrap();
        if let Some(s) = l.stream.take() {
            s.shutdown();
        }
        self.link_cv.notify_all();
    }

    fn is_closed(&self) -> bool {
        self.q.lock().unwrap().closed
    }

    /// Install `stream` as the link's current stream, waking the reader
    /// and writer. Counts a reconnect for every splice after the first
    /// installation.
    fn splice(&self, stream: SocketStream) {
        let mut l = self.link.lock().unwrap();
        if let Some(old) = l.stream.take() {
            old.shutdown();
        }
        if l.gen > 0 {
            self.stats.reconnects.fetch_add(1, Ordering::Relaxed);
        }
        l.gen += 1;
        l.stream = Some(stream);
        l.hold_until = None;
        self.link_cv.notify_all();
        self.cv.notify_all();
    }

    /// A reader or writer hit an IO error on generation `gen`: tear the
    /// stream down (once) and, in terminal mode, close the connection.
    fn link_broken(&self, gen: u64) {
        let terminal = {
            let mut l = self.link.lock().unwrap();
            if l.gen == gen && l.stream.is_some() {
                l.stream.take().unwrap().shutdown();
                self.stats.disconnects.fetch_add(1, Ordering::Relaxed);
                self.link_cv.notify_all();
                matches!(self.mode, RelinkMode::Terminal)
            } else {
                false
            }
        };
        if terminal {
            self.mark_closed();
        }
    }

    /// Hard-close the current stream (fault injection) and keep the link
    /// down for `down_for` before redial attempts may succeed. In
    /// terminal mode a severed link is gone for good.
    fn sever(&self, down_for: Duration) {
        {
            let mut l = self.link.lock().unwrap();
            if let Some(s) = l.stream.take() {
                s.shutdown();
                self.stats.disconnects.fetch_add(1, Ordering::Relaxed);
            }
            l.hold_until = Some(Instant::now() + down_for);
            self.link_cv.notify_all();
        }
        if matches!(self.mode, RelinkMode::Terminal) {
            self.mark_closed();
        }
    }

    /// Block until a stream is available, returning a clone of it plus
    /// its generation. `None` means the connection is closed (or the
    /// sender half is gone while the link is down) and the caller should
    /// give up.
    fn wait_stream(&self) -> Option<(SocketStream, u64)> {
        self.wait_stream_after(0)
    }

    /// Like [`Conn::wait_stream`], but only returns a stream of a
    /// generation strictly greater than `after` — the reader uses this to
    /// wait for a *new* stream after the one it was reading broke.
    fn wait_stream_after(&self, after: u64) -> Option<(SocketStream, u64)> {
        let mut l = self.link.lock().unwrap();
        loop {
            if l.gen > after {
                if let Some(s) = &l.stream {
                    if let Ok(c) = s.try_clone() {
                        return Some((c, l.gen));
                    }
                    // Un-clonable stream: treat as broken.
                    l.stream.take().unwrap().shutdown();
                    self.stats.disconnects.fetch_add(1, Ordering::Relaxed);
                }
            }
            {
                let q = self.q.lock().unwrap();
                if q.closed || (q.tx_dropped && l.stream.is_none()) {
                    return None;
                }
            }
            l = self
                .link_cv
                .wait_timeout(l, Duration::from_millis(100))
                .unwrap()
                .0;
        }
    }
}

/// Sending half of a socket link, held inside an endpoint's `TxLink`.
/// Clones share the connection; the writer thread is told to flush and
/// exit only when the *last* clone drops (see [`TxGuard`]), so a
/// persistent fleet endpoint keeps the link open while per-job endpoint
/// forks are created and dropped freely.
#[derive(Clone)]
pub(crate) struct SocketTx {
    conn: Arc<Conn>,
    _guard: Arc<TxGuard>,
}

/// Drop token shared by every clone of one connection's `SocketTx`.
struct TxGuard {
    conn: Arc<Conn>,
}

impl Drop for TxGuard {
    fn drop(&mut self) {
        let mut q = self.conn.q.lock().unwrap();
        q.tx_dropped = true;
        self.conn.cv.notify_all();
    }
}

impl SocketTx {
    /// Encode and enqueue one envelope, blocking while the outbound
    /// queue sits above the high-water mark.
    pub(crate) fn send(&self, env: &Envelope) -> Result<(), NetError> {
        let frame = encode_frame(env);
        if frame.len() - 4 > self.conn.max_frame {
            self.conn
                .stats
                .frames_rejected
                .fetch_add(1, Ordering::Relaxed);
            return Err(NetError::Disconnected);
        }
        let mut q = self.conn.q.lock().unwrap();
        loop {
            if q.closed {
                return Err(NetError::Disconnected);
            }
            // Admit when under the mark, or unconditionally when the
            // queue is empty (a lone giant frame must not deadlock).
            if q.queued_bytes + frame.len() <= self.conn.hwm || q.frames.is_empty() {
                break;
            }
            q = self
                .conn
                .cv
                .wait_timeout(q, Duration::from_millis(50))
                .unwrap()
                .0;
        }
        q.queued_bytes += frame.len();
        self.conn
            .stats
            .bytes_queued
            .store(q.queued_bytes as u64, Ordering::Relaxed);
        self.conn.stats.frames_sent.fetch_add(1, Ordering::Relaxed);
        q.frames.push_back(frame);
        self.conn.cv.notify_all();
        Ok(())
    }

    /// Hard-close the connection's stream (fault injection), keeping it
    /// down for `down_for` before the reconnect path may heal it.
    pub(crate) fn sever(&self, down_for: Duration) {
        self.conn.sever(down_for);
    }
}

fn encode_frame(env: &Envelope) -> Vec<u8> {
    let len = (FRAME_HEADER + env.payload.len()) as u32;
    let mut v = Vec::with_capacity(4 + len as usize);
    v.extend_from_slice(&len.to_le_bytes());
    v.extend_from_slice(&env.src.0.to_le_bytes());
    v.extend_from_slice(&env.dst.0.to_le_bytes());
    v.extend_from_slice(&env.tag.0.to_le_bytes());
    v.extend_from_slice(&env.payload);
    v
}

/// Writer thread: drain the outbound queue onto the current stream.
/// Exits when the connection breaks terminally or when the endpoint is
/// gone and the queue is flushed (so teardown messages like END still
/// reach the peer). Under a relinkable mode a write error re-targets the
/// same frame at the next spliced stream instead of giving up; the
/// reliable layer's dedup absorbs the rare frame written twice across a
/// break.
fn writer_loop(conn: Arc<Conn>) {
    'frames: loop {
        let frame = {
            let mut q = conn.q.lock().unwrap();
            loop {
                if let Some(f) = q.frames.pop_front() {
                    q.queued_bytes -= f.len();
                    conn.stats
                        .bytes_queued
                        .store(q.queued_bytes as u64, Ordering::Relaxed);
                    conn.cv.notify_all();
                    break Some(f);
                }
                if q.closed || q.tx_dropped {
                    break None;
                }
                q = conn
                    .cv
                    .wait_timeout(q, Duration::from_millis(100))
                    .unwrap()
                    .0;
            }
        };
        let Some(frame) = frame else { break };
        loop {
            let Some((mut stream, gen)) = conn.wait_stream() else {
                break 'frames;
            };
            if stream
                .write_all(&frame)
                .and_then(|()| stream.flush())
                .is_ok()
            {
                conn.stats
                    .bytes_sent
                    .fetch_add(frame.len() as u64, Ordering::Relaxed);
                continue 'frames;
            }
            conn.link_broken(gen);
            if conn.is_closed() {
                break 'frames;
            }
        }
    }
    let l = conn.link.lock().unwrap();
    if let Some(s) = &l.stream {
        s.shutdown();
    }
}

/// Reader thread: decode length-prefixed frames from the current stream
/// and forward them into the endpoint's channel. On EOF or error the
/// behaviour depends on the relink mode: terminal links are marked closed
/// (subsequent sends fail with `Disconnected`); relinkable links wait for
/// the next spliced stream and resume.
fn reader_loop(conn: Arc<Conn>, peer: Rank, me: Rank, out: Sender<Envelope>) {
    let mut seen_gen = 0;
    'link: loop {
        let Some((mut stream, gen)) = conn.wait_stream_after(seen_gen) else {
            break;
        };
        seen_gen = gen;
        loop {
            let mut lenb = [0u8; 4];
            if stream.read_exact(&mut lenb).is_err() {
                break;
            }
            let len = u32::from_le_bytes(lenb) as usize;
            if len < FRAME_HEADER || len > conn.max_frame {
                // The stream is desynchronised; nothing after this length
                // can be trusted. Fatal for this stream.
                conn.stats.frames_rejected.fetch_add(1, Ordering::Relaxed);
                break;
            }
            let mut body = vec![0u8; len];
            if stream.read_exact(&mut body).is_err() {
                break;
            }
            conn.stats
                .bytes_recv
                .fetch_add(4 + len as u64, Ordering::Relaxed);
            let dst = Rank(u32::from_le_bytes(body[4..8].try_into().unwrap()));
            let tag = Tag(u32::from_le_bytes(body[8..12].try_into().unwrap()));
            if dst != me {
                // Mis-addressed frame; the boundary is intact so just
                // drop it.
                conn.stats.frames_rejected.fetch_add(1, Ordering::Relaxed);
                continue;
            }
            let env = Envelope {
                // The connection, not the wire, is the source of truth
                // for the sender's identity.
                src: peer,
                dst,
                tag,
                payload: Bytes::from(body.split_off(FRAME_HEADER)),
            };
            conn.stats.frames_recv.fetch_add(1, Ordering::Relaxed);
            if out.send(env).is_err() {
                break 'link; // endpoint dropped
            }
        }
        conn.link_broken(gen);
        if conn.is_closed() {
            break;
        }
    }
    conn.mark_closed();
}

/// Supervisor thread for slave-side relinkable connections: whenever the
/// link drops (and the connection is still wanted), re-dial the master
/// with exponential backoff, resuming the same rank under the same
/// session, then splice the fresh stream in. Gives up — closing the
/// connection — when a whole reconnect window passes without success.
fn dial_loop(conn: Arc<Conn>) {
    let RelinkMode::Dial {
        addr,
        rank,
        session,
        window,
        cfg,
    } = &conn.mode
    else {
        return;
    };
    loop {
        // Park until the link is down.
        let hold = {
            let mut l = conn.link.lock().unwrap();
            while l.stream.is_some() {
                l = conn
                    .link_cv
                    .wait_timeout(l, Duration::from_millis(200))
                    .unwrap()
                    .0;
                if conn.is_closed() {
                    return;
                }
            }
            l.hold_until
        };
        if conn.is_closed() {
            return;
        }
        // Respect a sever's enforced downtime.
        if let Some(h) = hold {
            while Instant::now() < h {
                if conn.is_closed() {
                    return;
                }
                std::thread::sleep(Duration::from_millis(5));
            }
        }
        let deadline = Instant::now() + *window;
        let mut backoff = Duration::from_millis(10);
        loop {
            if conn.is_closed() {
                return;
            }
            match redial(addr, cfg, *rank, *session) {
                Ok(s) => {
                    conn.splice(s);
                    break;
                }
                Err(_) if Instant::now() < deadline => {
                    std::thread::sleep(backoff);
                    backoff = (backoff * 2).min(Duration::from_millis(500));
                }
                Err(_) => {
                    conn.mark_closed();
                    return;
                }
            }
        }
    }
}

/// One reconnect attempt: dial, handshake the same rank and session,
/// verify the master agreed.
fn redial(addr: &NetAddr, cfg: &SocketConfig, rank: u32, session: u64) -> io::Result<SocketStream> {
    let mut s = connect_once(addr, cfg)?;
    s.set_read_timeout(Some(Duration::from_secs(10)))?;
    write_hello(&mut s, rank, session)?;
    let (got, _n_ranks, _epoch) = read_welcome(&mut s)?;
    if got != rank {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("master re-assigned rank {got}, wanted {rank}"),
        ));
    }
    s.set_read_timeout(None)?;
    Ok(s)
}

fn spawn_link(
    stream: SocketStream,
    peer: Rank,
    me: Rank,
    cfg: &SocketConfig,
    out: Sender<Envelope>,
    stats: Arc<LinkStats>,
    mode: RelinkMode,
) -> io::Result<SocketTx> {
    let dial = matches!(mode, RelinkMode::Dial { .. });
    let conn = Arc::new(Conn {
        q: Mutex::new(OutQueue::default()),
        cv: Condvar::new(),
        link: Mutex::new(LinkState::default()),
        link_cv: Condvar::new(),
        mode,
        hwm: cfg.outbound_hwm,
        max_frame: cfg.max_frame,
        stats,
    });
    conn.splice(stream);
    let wc = conn.clone();
    std::thread::Builder::new()
        .name(format!("sock-wr-{}", peer.0))
        .spawn(move || writer_loop(wc))
        .expect("spawn socket writer");
    let rc = conn.clone();
    std::thread::Builder::new()
        .name(format!("sock-rd-{}", peer.0))
        .spawn(move || reader_loop(rc, peer, me, out))
        .expect("spawn socket reader");
    if dial {
        let dc = conn.clone();
        std::thread::Builder::new()
            .name(format!("sock-dial-{}", peer.0))
            .spawn(move || dial_loop(dc))
            .expect("spawn socket dialer");
    }
    let guard = Arc::new(TxGuard { conn: conn.clone() });
    Ok(SocketTx {
        conn,
        _guard: guard,
    })
}

// ---------------------------------------------------------------------
// Handshake
// ---------------------------------------------------------------------

/// Hello (slave → master), 17 bytes: magic, version, `want_rank`, and the
/// slave's per-incarnation session id.
fn write_hello(s: &mut SocketStream, want_rank: u32, session: u64) -> io::Result<()> {
    let mut buf = [0u8; 17];
    buf[..4].copy_from_slice(&MAGIC.to_le_bytes());
    buf[4] = VERSION;
    buf[5..9].copy_from_slice(&want_rank.to_le_bytes());
    buf[9..17].copy_from_slice(&session.to_le_bytes());
    s.write_all(&buf).and_then(|()| s.flush())
}

fn read_hello(s: &mut SocketStream) -> io::Result<(u32, u64)> {
    let mut buf = [0u8; 17];
    s.read_exact(&mut buf)?;
    check_magic_version(&buf)?;
    Ok((
        u32::from_le_bytes(buf[5..9].try_into().unwrap()),
        u64::from_le_bytes(buf[9..17].try_into().unwrap()),
    ))
}

/// Welcome (master → slave), 21 bytes: magic, version, assigned rank,
/// cluster size, and the fleet epoch this admission happened under.
fn write_welcome(s: &mut SocketStream, rank: u32, n_ranks: u32, epoch: u64) -> io::Result<()> {
    let mut buf = [0u8; 21];
    buf[..4].copy_from_slice(&MAGIC.to_le_bytes());
    buf[4] = VERSION;
    buf[5..9].copy_from_slice(&rank.to_le_bytes());
    buf[9..13].copy_from_slice(&n_ranks.to_le_bytes());
    buf[13..21].copy_from_slice(&epoch.to_le_bytes());
    s.write_all(&buf).and_then(|()| s.flush())
}

fn read_welcome(s: &mut SocketStream) -> io::Result<(u32, u32, u64)> {
    let mut buf = [0u8; 21];
    s.read_exact(&mut buf)?;
    check_magic_version(&buf)?;
    Ok((
        u32::from_le_bytes(buf[5..9].try_into().unwrap()),
        u32::from_le_bytes(buf[9..13].try_into().unwrap()),
        u64::from_le_bytes(buf[13..21].try_into().unwrap()),
    ))
}

fn check_magic_version(buf: &[u8]) -> io::Result<()> {
    if u32::from_le_bytes(buf[..4].try_into().unwrap()) != MAGIC {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "not an easyhps peer (bad magic)",
        ));
    }
    if buf[4] != VERSION {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!(
                "protocol version mismatch: peer {}, ours {}",
                buf[4], VERSION
            ),
        ));
    }
    Ok(())
}

// ---------------------------------------------------------------------
// Master: listen + accept
// ---------------------------------------------------------------------

enum ListenerInner {
    Tcp(TcpListener),
    Uds(UnixListener, PathBuf),
}

/// A bound listener; call [`SocketListener::accept_ranks`] to gather the
/// slave connections and build the master endpoint. Binding is split
/// from accepting so callers can learn the actual address (ephemeral TCP
/// port) before starting slaves.
pub struct SocketListener {
    inner: ListenerInner,
    cfg: SocketConfig,
}

impl SocketListener {
    /// Bind to `addr`. For `tcp:host:0` the OS picks a port; read the
    /// result back with [`SocketListener::local_addr`].
    pub fn bind(addr: &NetAddr, cfg: SocketConfig) -> io::Result<SocketListener> {
        let inner = match addr {
            NetAddr::Tcp(hp) => ListenerInner::Tcp(TcpListener::bind(hp)?),
            NetAddr::Uds(path) => {
                // A stale socket file from a crashed run blocks bind.
                let _ = std::fs::remove_file(path);
                ListenerInner::Uds(UnixListener::bind(path)?, path.clone())
            }
        };
        Ok(SocketListener { inner, cfg })
    }

    /// The address actually bound (port resolved for TCP).
    pub fn local_addr(&self) -> NetAddr {
        match &self.inner {
            ListenerInner::Tcp(l) => NetAddr::Tcp(
                l.local_addr()
                    .map(|a| a.to_string())
                    .unwrap_or_else(|_| "?".into()),
            ),
            ListenerInner::Uds(_, path) => NetAddr::Uds(path.clone()),
        }
    }

    fn accept_one(&self, deadline: Instant) -> io::Result<SocketStream> {
        // Poll non-blocking accepts so a missing slave cannot park the
        // master past its accept timeout.
        match &self.inner {
            ListenerInner::Tcp(l) => l.set_nonblocking(true)?,
            ListenerInner::Uds(l, _) => l.set_nonblocking(true)?,
        }
        loop {
            let got = match &self.inner {
                ListenerInner::Tcp(l) => l.accept().map(|(s, _)| SocketStream::Tcp(s)),
                ListenerInner::Uds(l, _) => l.accept().map(|(s, _)| SocketStream::Uds(s)),
            };
            match got {
                Ok(s) => {
                    if let SocketStream::Tcp(t) = &s {
                        let _ = t.set_nodelay(self.cfg.nodelay);
                    }
                    return Ok(s);
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    if Instant::now() >= deadline {
                        return Err(io::Error::new(
                            io::ErrorKind::TimedOut,
                            "timed out waiting for slaves to connect",
                        ));
                    }
                    std::thread::sleep(Duration::from_millis(5));
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// Accept `n_slaves` connections, assign ranks `1..=n_slaves`
    /// (honouring a slave's `want_rank` when it is free) and return the
    /// master endpoint plus per-link counters.
    pub fn accept_ranks(
        self,
        n_slaves: usize,
        plan: Option<FaultPlan>,
    ) -> io::Result<(Endpoint, SocketInfo)> {
        assert!(n_slaves > 0, "a socket cluster needs at least one slave");
        let n_ranks = n_slaves + 1;
        let deadline = Instant::now() + self.cfg.accept_timeout;
        let (env_tx, env_rx) = unbounded();
        let mut links: Vec<TxLink> = (0..n_ranks).map(|_| TxLink::Unrouted).collect();
        links[0] = TxLink::Channel(env_tx.clone()); // loopback
        let mut taken = vec![false; n_ranks];
        taken[0] = true;
        let mut info_links = Vec::with_capacity(n_slaves);
        while info_links.len() < n_slaves {
            let mut stream = self.accept_one(deadline)?;
            stream.set_read_timeout(Some(Duration::from_secs(10)))?;
            let (want, _session) = match read_hello(&mut stream) {
                Ok(w) => w,
                Err(_) => continue, // garbage peer: drop the connection
            };
            let rank = match (want as usize) < n_ranks && want != 0 && !taken[want as usize] {
                true => want as usize,
                false => match taken.iter().position(|t| !t) {
                    Some(r) => r,
                    None => break,
                },
            };
            write_welcome(&mut stream, rank as u32, n_ranks as u32, 0)?;
            stream.set_read_timeout(None)?;
            taken[rank] = true;
            let stats = Arc::new(LinkStats::default());
            let tx = spawn_link(
                stream,
                Rank(rank as u32),
                Rank(0),
                &self.cfg,
                env_tx.clone(),
                stats.clone(),
                RelinkMode::Terminal,
            )?;
            links[rank] = TxLink::Socket(tx);
            info_links.push((Rank(rank as u32), stats));
        }
        info_links.sort_by_key(|(r, _)| r.0);
        let ep = Endpoint::from_parts(Rank(0), links, env_rx, plan);
        let info = SocketInfo {
            rank: Rank(0),
            n_ranks,
            links: info_links,
            epoch: 0,
        };
        Ok((ep, info))
    }

    /// Like [`SocketListener::accept_ranks`], but for a long-lived,
    /// *elastic* fleet: after the initial `n_slaves` are admitted the
    /// listener stays alive on a background acceptor thread that
    ///
    /// - **splices** a reconnecting slave (same rank, same session id)
    ///   back onto its existing link without any membership change,
    /// - **fences** a restarted slave (same rank, new session id) by
    ///   bumping the fleet epoch and reporting
    ///   [`MembershipEvent::Rejoined`] so the scheduler can roll back the
    ///   old incarnation's in-flight work,
    /// - **admits** brand-new slaves mid-run ([`MembershipEvent::Joined`]),
    ///   assigning ranks from the released free-list or growing the
    ///   cluster, and shipping them the configured join payload (the
    ///   sealed job spec).
    ///
    /// The returned links are held open across slave outages
    /// (`RelinkMode::Await`): a send to a temporarily-dark slave queues
    /// instead of failing, and heartbeat silence — not link state — is
    /// what excludes it from scheduling.
    pub fn accept_fleet(
        self,
        n_slaves: usize,
        plan: Option<FaultPlan>,
    ) -> io::Result<(Endpoint, SocketInfo, FleetAcceptor)> {
        assert!(n_slaves > 0, "a socket cluster needs at least one slave");
        let n_ranks = n_slaves + 1;
        let deadline = Instant::now() + self.cfg.accept_timeout;
        let (env_tx, env_rx) = unbounded();
        let mut links: Vec<TxLink> = (0..n_ranks).map(|_| TxLink::Unrouted).collect();
        links[0] = TxLink::Channel(env_tx.clone()); // loopback
        let mut slots: Vec<Option<RankSlot>> = (0..n_ranks).map(|_| None).collect();
        let mut info_links = Vec::with_capacity(n_slaves);
        while info_links.len() < n_slaves {
            let mut stream = self.accept_one(deadline)?;
            stream.set_read_timeout(Some(Duration::from_secs(10)))?;
            let (want, session) = match read_hello(&mut stream) {
                Ok(w) => w,
                Err(_) => continue,
            };
            let free = |slots: &[Option<RankSlot>]| slots[1..].iter().position(|s| s.is_none());
            let rank =
                match (want as usize) < n_ranks && want != 0 && slots[want as usize].is_none() {
                    true => want as usize,
                    false => match free(&slots) {
                        Some(i) => i + 1,
                        None => break,
                    },
                };
            write_welcome(&mut stream, rank as u32, n_ranks as u32, INITIAL_EPOCH)?;
            stream.set_read_timeout(None)?;
            let stats = Arc::new(LinkStats::default());
            let tx = spawn_link(
                stream,
                Rank(rank as u32),
                Rank(0),
                &self.cfg,
                env_tx.clone(),
                stats.clone(),
                RelinkMode::Await,
            )?;
            slots[rank] = Some(RankSlot {
                conn: tx.conn.clone(),
                session,
                stats: stats.clone(),
            });
            links[rank] = TxLink::Socket(tx);
            info_links.push((Rank(rank as u32), stats));
        }
        info_links.sort_by_key(|(r, _)| r.0);
        let ep = Endpoint::from_parts(Rank(0), links, env_rx, plan);
        let info = SocketInfo {
            rank: Rank(0),
            n_ranks,
            links: info_links,
            epoch: INITIAL_EPOCH,
        };
        let shared = Arc::new(AcceptorShared {
            events: Mutex::new(VecDeque::new()),
            epoch: AtomicU64::new(INITIAL_EPOCH),
            stop: AtomicBool::new(false),
            join_payload: Mutex::new(None),
            slots: Mutex::new(slots),
            links: ep.shared_links(),
            env_tx,
            cfg: self.cfg.clone(),
        });
        let thread_shared = shared.clone();
        let handle = std::thread::Builder::new()
            .name("fleet-acceptor".into())
            .spawn(move || acceptor_loop(self, thread_shared))
            .expect("spawn fleet acceptor");
        let acceptor = FleetAcceptor {
            shared,
            handle: Some(handle),
        };
        Ok((ep, info, acceptor))
    }
}

/// The epoch every initial member of a fenced fleet is admitted under.
const INITIAL_EPOCH: u64 = 1;

/// A membership change observed by the fleet acceptor, to be drained
/// with [`FleetAcceptor::poll_events`] and fed to the master scheduler.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MembershipEvent {
    /// A slave's link dropped and the *same incarnation* reconnected: the
    /// stream was spliced, nothing was lost, no fencing is needed.
    Relinked {
        /// The resuming slave's rank.
        rank: u32,
    },
    /// A *new incarnation* of an existing rank connected: the fleet epoch
    /// was bumped and anything the old incarnation still held must be
    /// rolled back and its late DONEs fenced.
    Rejoined {
        /// The rank being taken over.
        rank: u32,
        /// The new fleet epoch the incarnation was admitted under.
        epoch: u64,
    },
    /// A brand-new slave was admitted mid-run (fresh rank from the
    /// free-list, or the cluster grew).
    Joined {
        /// The new slave's rank.
        rank: u32,
        /// The fleet epoch it was admitted under.
        epoch: u64,
    },
}

/// Per-rank admission record the acceptor keeps for splice/fence
/// decisions.
struct RankSlot {
    conn: Arc<Conn>,
    session: u64,
    stats: Arc<LinkStats>,
}

struct AcceptorShared {
    events: Mutex<VecDeque<MembershipEvent>>,
    epoch: AtomicU64,
    stop: AtomicBool,
    /// `(tag, pre-sealed payload)` shipped to every newly admitted or
    /// re-incarnated slave, so a joiner learns the job it walked into.
    join_payload: Mutex<Option<(u32, Vec<u8>)>>,
    slots: Mutex<Vec<Option<RankSlot>>>,
    links: Arc<RwLock<Vec<TxLink>>>,
    env_tx: Sender<Envelope>,
    cfg: SocketConfig,
}

/// Handle to the background acceptor keeping an elastic fleet's listener
/// alive. Dropping it stops the thread and closes every fleet link.
pub struct FleetAcceptor {
    shared: Arc<AcceptorShared>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl FleetAcceptor {
    /// Drain membership events observed since the last poll, in order.
    pub fn poll_events(&self) -> Vec<MembershipEvent> {
        self.shared.events.lock().unwrap().drain(..).collect()
    }

    /// The current fleet epoch.
    pub fn epoch(&self) -> u64 {
        self.shared.epoch.load(Ordering::SeqCst)
    }

    /// Current cluster size (master + highest admitted rank).
    pub fn n_ranks(&self) -> usize {
        self.shared.slots.lock().unwrap().len()
    }

    /// Set the payload shipped to every slave admitted from now on (a
    /// sealed JOB frame, so a mid-run joiner knows what to compute).
    pub fn set_join_payload(&self, tag: u32, payload: Vec<u8>) {
        *self.shared.join_payload.lock().unwrap() = Some((tag, payload));
    }

    /// Stop shipping a join payload (between jobs).
    pub fn clear_join_payload(&self) {
        *self.shared.join_payload.lock().unwrap() = None;
    }

    /// Per-link counters for `rank` (including links installed for
    /// mid-run joiners, which are not in the original `SocketInfo`).
    pub fn link_stats(&self, rank: u32) -> Option<Arc<LinkStats>> {
        let slots = self.shared.slots.lock().unwrap();
        slots
            .get(rank as usize)
            .and_then(|s| s.as_ref())
            .map(|s| s.stats.clone())
    }

    /// Ranks that are admitted *and* currently linked (stream up). A rank
    /// missing from this list is either released or dark — dark ranks may
    /// still come back within the run.
    pub fn live_ranks(&self) -> Vec<u32> {
        let slots = self.shared.slots.lock().unwrap();
        slots
            .iter()
            .enumerate()
            .skip(1)
            .filter_map(|(r, s)| {
                let s = s.as_ref()?;
                s.conn
                    .link
                    .lock()
                    .unwrap()
                    .stream
                    .is_some()
                    .then_some(r as u32)
            })
            .collect()
    }

    /// Release `rank`: close its link and return the rank to the
    /// free-list, so a future joiner can take it. The caller is expected
    /// to have drained the slave first (graceful drain) — anything still
    /// in flight is lost and will be redispatched by fault tolerance.
    pub fn release_rank(&self, rank: u32) {
        let slot = {
            let mut slots = self.shared.slots.lock().unwrap();
            slots.get_mut(rank as usize).and_then(|s| s.take())
        };
        if let Some(slot) = slot {
            slot.conn.mark_closed();
        }
    }

    /// Stop the acceptor thread (idempotent). New connections are no
    /// longer admitted; existing links stay up.
    pub fn stop(&self) {
        self.shared.stop.store(true, Ordering::SeqCst);
    }
}

impl Drop for FleetAcceptor {
    fn drop(&mut self) {
        self.stop();
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
        // Close every fleet link: Await-mode conns would otherwise wait
        // forever for a splice that can no longer happen.
        let mut slots = self.shared.slots.lock().unwrap();
        for slot in slots.iter_mut().filter_map(|s| s.take()) {
            slot.conn.mark_closed();
        }
    }
}

/// The background acceptor: admit reconnections, re-incarnations and
/// mid-run joiners until stopped.
fn acceptor_loop(listener: SocketListener, shared: Arc<AcceptorShared>) {
    while !shared.stop.load(Ordering::SeqCst) {
        let deadline = Instant::now() + Duration::from_millis(100);
        let mut stream = match listener.accept_one(deadline) {
            Ok(s) => s,
            Err(e) if e.kind() == io::ErrorKind::TimedOut => continue,
            Err(_) => break,
        };
        if stream
            .set_read_timeout(Some(Duration::from_secs(10)))
            .is_err()
        {
            continue;
        }
        let Ok((want, session)) = read_hello(&mut stream) else {
            continue; // garbage peer: drop the connection
        };
        let _ = admit(stream, want, session, &shared);
    }
}

/// Admit one handshaken connection per the fleet membership rules.
fn admit(
    mut stream: SocketStream,
    want: u32,
    session: u64,
    shared: &Arc<AcceptorShared>,
) -> io::Result<()> {
    let mut slots = shared.slots.lock().unwrap();
    let n_ranks = slots.len();
    let existing = (want as usize) < n_ranks && want != 0 && slots[want as usize].is_some();
    if existing {
        let rank = want as usize;
        let slot = slots[rank].as_mut().unwrap();
        if slot.session == session {
            // Same incarnation resuming after a link blip: splice, no
            // membership change, no fencing.
            write_welcome(
                &mut stream,
                rank as u32,
                n_ranks as u32,
                shared.epoch.load(Ordering::SeqCst),
            )?;
            stream.set_read_timeout(None)?;
            slot.conn.splice(stream);
            shared
                .events
                .lock()
                .unwrap()
                .push_back(MembershipEvent::Relinked { rank: rank as u32 });
            return Ok(());
        }
        // New incarnation of an existing rank: fence the old one. The
        // event is queued *before* the welcome goes out, so the master
        // shell processes the Rejoined before any frame of the new
        // incarnation can arrive.
        let epoch = shared.epoch.fetch_add(1, Ordering::SeqCst) + 1;
        shared
            .events
            .lock()
            .unwrap()
            .push_back(MembershipEvent::Rejoined {
                rank: rank as u32,
                epoch,
            });
        write_welcome(&mut stream, rank as u32, n_ranks as u32, epoch)?;
        stream.set_read_timeout(None)?;
        slot.session = session;
        slot.conn.splice(stream);
        let tx = {
            let links = shared.links.read().unwrap();
            match links.get(rank) {
                Some(TxLink::Socket(tx)) => Some(tx.clone()),
                _ => None,
            }
        };
        drop(slots);
        ship_join_payload(shared, tx, rank as u32);
        return Ok(());
    }
    // Brand-new admission: reuse a released rank or grow the cluster.
    let rank = match slots[1..].iter().position(|s| s.is_none()) {
        Some(i) => i + 1,
        None => {
            slots.push(None);
            shared.links.write().unwrap().push(TxLink::Unrouted);
            slots.len() - 1
        }
    };
    let n_ranks = slots.len();
    let epoch = shared.epoch.fetch_add(1, Ordering::SeqCst) + 1;
    shared
        .events
        .lock()
        .unwrap()
        .push_back(MembershipEvent::Joined {
            rank: rank as u32,
            epoch,
        });
    write_welcome(&mut stream, rank as u32, n_ranks as u32, epoch)?;
    stream.set_read_timeout(None)?;
    let stats = Arc::new(LinkStats::default());
    let tx = spawn_link(
        stream,
        Rank(rank as u32),
        Rank(0),
        &shared.cfg,
        shared.env_tx.clone(),
        stats.clone(),
        RelinkMode::Await,
    )?;
    slots[rank] = Some(RankSlot {
        conn: tx.conn.clone(),
        session,
        stats,
    });
    shared.links.write().unwrap()[rank] = TxLink::Socket(tx.clone());
    drop(slots);
    ship_join_payload(shared, Some(tx), rank as u32);
    Ok(())
}

/// Queue the configured join payload (sealed JOB spec) on a freshly
/// admitted slave's link.
fn ship_join_payload(shared: &Arc<AcceptorShared>, tx: Option<SocketTx>, rank: u32) {
    let payload = shared.join_payload.lock().unwrap().clone();
    if let (Some(tx), Some((tag, bytes))) = (tx, payload) {
        let _ = tx.send(&Envelope {
            src: Rank(0),
            dst: Rank(rank),
            tag: Tag(tag),
            payload: Bytes::from(bytes),
        });
    }
}

impl Drop for SocketListener {
    fn drop(&mut self) {
        if let ListenerInner::Uds(_, path) = &self.inner {
            let _ = std::fs::remove_file(path);
        }
    }
}

// ---------------------------------------------------------------------
// Slave: connect
// ---------------------------------------------------------------------

fn connect_once(addr: &NetAddr, cfg: &SocketConfig) -> io::Result<SocketStream> {
    match addr {
        NetAddr::Tcp(hp) => {
            let s = TcpStream::connect(hp)?;
            let _ = s.set_nodelay(cfg.nodelay);
            Ok(SocketStream::Tcp(s))
        }
        NetAddr::Uds(path) => Ok(SocketStream::Uds(UnixStream::connect(path)?)),
    }
}

/// Connect to a listening master, handshake a rank, and return the slave
/// endpoint. Retries the connect with backoff until
/// [`SocketConfig::connect_timeout`] so slaves may start before the
/// master; retries are counted in [`LinkStats::reconnects`].
pub fn connect(
    addr: &NetAddr,
    want_rank: Option<u32>,
    cfg: SocketConfig,
    plan: Option<FaultPlan>,
) -> io::Result<(Endpoint, SocketInfo)> {
    let stats = Arc::new(LinkStats::default());
    let deadline = Instant::now() + cfg.connect_timeout;
    let mut backoff = Duration::from_millis(10);
    let mut stream = loop {
        match connect_once(addr, &cfg) {
            Ok(s) => break s,
            Err(e) => {
                if Instant::now() >= deadline {
                    return Err(e);
                }
                stats.reconnects.fetch_add(1, Ordering::Relaxed);
                std::thread::sleep(backoff);
                backoff = (backoff * 2).min(Duration::from_millis(500));
            }
        }
    };
    stream.set_read_timeout(Some(Duration::from_secs(10)))?;
    let session = fresh_session();
    write_hello(&mut stream, want_rank.unwrap_or(ANY_RANK), session)?;
    let (rank, n_ranks, epoch) = read_welcome(&mut stream)?;
    stream.set_read_timeout(None)?;
    let (env_tx, env_rx) = unbounded();
    let mut links: Vec<TxLink> = (0..n_ranks as usize).map(|_| TxLink::Unrouted).collect();
    let mode = match cfg.reconnect_window {
        Some(window) => RelinkMode::Dial {
            addr: addr.clone(),
            rank,
            session,
            window,
            cfg: cfg.clone(),
        },
        None => RelinkMode::Terminal,
    };
    let tx = spawn_link(
        stream,
        Rank(0),
        Rank(rank),
        &cfg,
        env_tx.clone(),
        stats.clone(),
        mode,
    )?;
    links[0] = TxLink::Socket(tx);
    links[rank as usize] = TxLink::Channel(env_tx); // loopback
    let ep = Endpoint::from_parts(Rank(rank), links, env_rx, plan);
    let info = SocketInfo {
        rank: Rank(rank),
        n_ranks: n_ranks as usize,
        links: vec![(Rank(0), stats)],
        epoch,
    };
    Ok((ep, info))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::Tag;

    fn b(s: &'static str) -> Bytes {
        Bytes::from_static(s.as_bytes())
    }

    fn tcp_pair(n_slaves: usize) -> (Endpoint, SocketInfo, Vec<(Endpoint, SocketInfo)>) {
        let listener = SocketListener::bind(
            &NetAddr::parse("127.0.0.1:0").unwrap(),
            SocketConfig::default(),
        )
        .unwrap();
        let addr = listener.local_addr();
        let handles: Vec<_> = (1..=n_slaves)
            .map(|r| {
                let addr = addr.clone();
                std::thread::spawn(move || {
                    connect(&addr, Some(r as u32), SocketConfig::default(), None).unwrap()
                })
            })
            .collect();
        let (master, minfo) = listener.accept_ranks(n_slaves, None).unwrap();
        let slaves = handles.into_iter().map(|h| h.join().unwrap()).collect();
        (master, minfo, slaves)
    }

    #[test]
    fn addr_parse_forms() {
        assert_eq!(
            NetAddr::parse("tcp:1.2.3.4:99").unwrap(),
            NetAddr::Tcp("1.2.3.4:99".into())
        );
        assert_eq!(
            NetAddr::parse("1.2.3.4:99").unwrap(),
            NetAddr::Tcp("1.2.3.4:99".into())
        );
        assert_eq!(
            NetAddr::parse("uds:/tmp/x.sock").unwrap(),
            NetAddr::Uds("/tmp/x.sock".into())
        );
        assert_eq!(
            NetAddr::parse("unix:/tmp/x.sock").unwrap(),
            NetAddr::Uds("/tmp/x.sock".into())
        );
        assert!(NetAddr::parse("nonsense").is_err());
    }

    #[test]
    fn tcp_ping_pong_with_rank_assignment() {
        let (mut master, minfo, mut slaves) = tcp_pair(2);
        assert_eq!(minfo.n_ranks, 3);
        for (ep, info) in &slaves {
            assert_eq!(ep.rank(), info.rank);
            assert_eq!(ep.n_ranks(), 3);
        }
        for (ref mut ep, _) in &mut slaves {
            ep.send(Rank(0), Tag(1), b("hello")).unwrap();
        }
        for _ in 0..2 {
            let env = master.recv().unwrap();
            assert_eq!(env.tag, Tag(1));
            assert_eq!(&env.payload[..], b"hello");
            master.send(env.src, Tag(2), b("world")).unwrap();
        }
        for (ref mut ep, _) in &mut slaves {
            let env = ep.recv().unwrap();
            assert_eq!(env.src, Rank(0));
            assert_eq!(&env.payload[..], b"world");
        }
    }

    #[test]
    fn uds_ping_pong() {
        let path = std::env::temp_dir().join(format!("easyhps-test-{}.sock", std::process::id()));
        let listener =
            SocketListener::bind(&NetAddr::Uds(path.clone()), SocketConfig::default()).unwrap();
        let addr = listener.local_addr();
        let h = std::thread::spawn(move || {
            connect(&addr, None, SocketConfig::default(), None).unwrap()
        });
        let (mut master, _info) = listener.accept_ranks(1, None).unwrap();
        let (mut slave, _sinfo) = h.join().unwrap();
        slave.send(Rank(0), Tag(7), b("ping")).unwrap();
        assert_eq!(&master.recv().unwrap().payload[..], b"ping");
        master.send(slave.rank(), Tag(8), b("pong")).unwrap();
        assert_eq!(&slave.recv().unwrap().payload[..], b"pong");
        drop(master);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn slave_to_slave_is_unrouted() {
        let (_master, _minfo, mut slaves) = tcp_pair(2);
        let (ref mut s1, _) = slaves[0];
        assert_eq!(
            s1.send(Rank(2), Tag(0), Bytes::new()).unwrap_err(),
            NetError::Disconnected
        );
    }

    #[test]
    fn peer_death_fails_sends_promptly() {
        let (mut master, _minfo, slaves) = tcp_pair(1);
        drop(slaves); // slave endpoints drop: connections close
        let deadline = Instant::now() + Duration::from_secs(10);
        loop {
            match master.send(Rank(1), Tag(0), b("x")) {
                Err(NetError::Disconnected) => break,
                Ok(()) => {
                    assert!(Instant::now() < deadline, "send must start failing");
                    std::thread::sleep(Duration::from_millis(10));
                }
                Err(e) => panic!("unexpected error {e:?}"),
            }
        }
    }

    #[test]
    fn per_pair_ordering_over_tcp() {
        let (mut master, _minfo, mut slaves) = tcp_pair(1);
        for i in 0..200u32 {
            master.send(Rank(1), Tag(i), Bytes::new()).unwrap();
        }
        let (ref mut slave, _) = slaves[0];
        for i in 0..200u32 {
            assert_eq!(slave.recv().unwrap().tag, Tag(i));
        }
    }

    #[test]
    fn oversized_send_is_rejected() {
        let cfg = SocketConfig {
            max_frame: 1024,
            ..SocketConfig::default()
        };
        let listener =
            SocketListener::bind(&NetAddr::parse("127.0.0.1:0").unwrap(), cfg.clone()).unwrap();
        let addr = listener.local_addr();
        let ccfg = cfg.clone();
        let h = std::thread::spawn(move || connect(&addr, None, ccfg, None).unwrap());
        let (mut master, minfo) = listener.accept_ranks(1, None).unwrap();
        let (_slave, _sinfo) = h.join().unwrap();
        let big = Bytes::from(vec![0u8; 4096]);
        assert_eq!(
            master.send(Rank(1), Tag(0), big).unwrap_err(),
            NetError::Disconnected
        );
        let snap = minfo.link(Rank(1)).unwrap().snapshot();
        assert_eq!(snap.frames_rejected, 1);
    }

    #[test]
    fn fault_plans_apply_over_sockets() {
        // A lossy master drops deterministically even over TCP: the
        // fault layer sits above the link.
        let listener = SocketListener::bind(
            &NetAddr::parse("127.0.0.1:0").unwrap(),
            SocketConfig::default(),
        )
        .unwrap();
        let addr = listener.local_addr();
        let h = std::thread::spawn(move || {
            connect(&addr, None, SocketConfig::default(), None).unwrap()
        });
        let plan = FaultPlan::lossy(0.5, 42);
        let (mut master, _minfo) = listener.accept_ranks(1, Some(plan)).unwrap();
        let (mut slave, _sinfo) = h.join().unwrap();
        for _ in 0..100 {
            master.send(Rank(1), Tag(3), Bytes::new()).unwrap();
        }
        let mut got = 0u64;
        while slave.recv_timeout(Duration::from_millis(500)).is_ok() {
            got += 1;
        }
        let dropped = master.stats().dropped_msgs;
        assert_eq!(got + dropped, 100);
        assert!(
            dropped > 20 && dropped < 80,
            "drop rate wildly off: {dropped}"
        );
    }

    /// Fleet helper: elastic master with `n` initial slaves, each slave
    /// connecting with a reconnect window (so severed links re-dial).
    fn fleet_pair(
        n_slaves: usize,
        slave_plans: Vec<Option<FaultPlan>>,
    ) -> (
        Endpoint,
        SocketInfo,
        FleetAcceptor,
        NetAddr,
        Vec<(Endpoint, SocketInfo)>,
    ) {
        let listener = SocketListener::bind(
            &NetAddr::parse("127.0.0.1:0").unwrap(),
            SocketConfig::default(),
        )
        .unwrap();
        let addr = listener.local_addr();
        let handles: Vec<_> = slave_plans
            .into_iter()
            .enumerate()
            .map(|(i, plan)| {
                let addr = addr.clone();
                std::thread::spawn(move || {
                    let cfg = SocketConfig {
                        reconnect_window: Some(Duration::from_secs(10)),
                        ..SocketConfig::default()
                    };
                    connect(&addr, Some(i as u32 + 1), cfg, plan).unwrap()
                })
            })
            .collect();
        let (master, minfo, acceptor) = listener.accept_fleet(n_slaves, None).unwrap();
        let slaves = handles.into_iter().map(|h| h.join().unwrap()).collect();
        (master, minfo, acceptor, addr, slaves)
    }

    #[test]
    fn severed_link_heals_by_redial() {
        // The slave's 2nd send pulls the cable for 30ms; the dialer must
        // re-establish the same session and every queued frame must still
        // arrive, in order.
        let plan = FaultPlan::default().with_link_sever(2, Duration::from_millis(30));
        let (mut master, _minfo, acceptor, _addr, mut slaves) = fleet_pair(1, vec![Some(plan)]);
        let (ref mut slave, ref sinfo) = slaves[0];
        slave.send(Rank(0), Tag(1), b("warm")).unwrap();
        assert_eq!(&master.recv().unwrap().payload[..], b"warm");
        for i in 0..10u32 {
            slave.send(Rank(0), Tag(10 + i), b("x")).unwrap();
        }
        for i in 0..10u32 {
            let env = master
                .recv_timeout(Duration::from_secs(10))
                .expect("frame survives the sever");
            assert_eq!(env.tag, Tag(10 + i), "order preserved across splice");
        }
        let snap = sinfo.link(Rank(0)).unwrap().snapshot();
        assert!(snap.reconnects >= 1, "redial counted: {snap:?}");
        let deadline = Instant::now() + Duration::from_secs(5);
        loop {
            let evs = acceptor.poll_events();
            if evs.contains(&MembershipEvent::Relinked { rank: 1 }) {
                break;
            }
            assert!(
                evs.iter()
                    .all(|e| matches!(e, MembershipEvent::Relinked { .. })),
                "same session must splice, not fence: {evs:?}"
            );
            assert!(Instant::now() < deadline, "Relinked event never surfaced");
            std::thread::sleep(Duration::from_millis(5));
        }
        // Same incarnation: the epoch must not have moved.
        assert_eq!(acceptor.epoch(), 1);
    }

    #[test]
    fn new_incarnation_is_fenced_with_a_new_epoch() {
        let (mut master, minfo, acceptor, addr, mut slaves) = fleet_pair(1, vec![None]);
        assert_eq!(minfo.epoch, 1);
        let (mut slave, sinfo) = slaves.pop().unwrap();
        assert_eq!(sinfo.epoch, 1);
        slave.send(Rank(0), Tag(1), b("inc1")).unwrap();
        assert_eq!(&master.recv().unwrap().payload[..], b"inc1");
        drop(slave); // incarnation 1 dies; master's link goes dark, not dead
        let (mut slave2, sinfo2) = connect(&addr, Some(1), SocketConfig::default(), None).unwrap();
        assert_eq!(sinfo2.rank, Rank(1));
        assert_eq!(sinfo2.epoch, 2, "restart bumps the fleet epoch");
        assert_eq!(acceptor.epoch(), 2);
        let deadline = Instant::now() + Duration::from_secs(5);
        loop {
            let evs = acceptor.poll_events();
            if evs.contains(&MembershipEvent::Rejoined { rank: 1, epoch: 2 }) {
                break;
            }
            assert!(Instant::now() < deadline, "Rejoined event never surfaced");
            std::thread::sleep(Duration::from_millis(5));
        }
        // The resumed rank is fully usable in both directions.
        slave2.send(Rank(0), Tag(2), b("inc2")).unwrap();
        assert_eq!(&master.recv().unwrap().payload[..], b"inc2");
        master.send(Rank(1), Tag(3), b("hi")).unwrap();
        assert_eq!(&slave2.recv().unwrap().payload[..], b"hi");
    }

    #[test]
    fn mid_run_join_grows_cluster_and_ships_payload() {
        let (mut master, _minfo, acceptor, addr, _slaves) = fleet_pair(1, vec![None]);
        acceptor.set_join_payload(7, b"jobspec".to_vec());
        let (mut joiner, jinfo) = connect(&addr, None, SocketConfig::default(), None).unwrap();
        assert_eq!(jinfo.rank, Rank(2), "fresh rank past the initial fleet");
        assert_eq!(jinfo.n_ranks, 3);
        assert_eq!(jinfo.epoch, 2, "join bumps the epoch");
        let deadline = Instant::now() + Duration::from_secs(5);
        loop {
            let evs = acceptor.poll_events();
            if evs.contains(&MembershipEvent::Joined { rank: 2, epoch: 2 }) {
                break;
            }
            assert!(Instant::now() < deadline, "Joined event never surfaced");
            std::thread::sleep(Duration::from_millis(5));
        }
        // The joiner got the configured payload without asking.
        let env = joiner.recv_timeout(Duration::from_secs(5)).unwrap();
        assert_eq!(env.tag, Tag(7));
        assert_eq!(&env.payload[..], b"jobspec");
        // The master's route table grew: it can address the new rank.
        assert_eq!(master.n_ranks(), 3);
        master.send(Rank(2), Tag(9), b("task")).unwrap();
        assert_eq!(&joiner.recv().unwrap().payload[..], b"task");
        joiner.send(Rank(0), Tag(10), b("done")).unwrap();
        assert_eq!(&master.recv().unwrap().payload[..], b"done");
        assert!(acceptor.link_stats(2).is_some());
    }

    #[test]
    fn released_rank_is_reused_by_next_joiner() {
        let (_master, _minfo, acceptor, addr, _slaves) = fleet_pair(2, vec![None, None]);
        acceptor.release_rank(1);
        let (joiner, jinfo) = connect(&addr, None, SocketConfig::default(), None).unwrap();
        assert_eq!(jinfo.rank, Rank(1), "freed rank comes off the free-list");
        assert_eq!(jinfo.n_ranks, 3, "cluster did not grow");
        let deadline = Instant::now() + Duration::from_secs(5);
        loop {
            if acceptor
                .poll_events()
                .iter()
                .any(|e| matches!(e, MembershipEvent::Joined { rank: 1, .. }))
            {
                break;
            }
            assert!(Instant::now() < deadline, "Joined event never surfaced");
            std::thread::sleep(Duration::from_millis(5));
        }
        assert!(acceptor.live_ranks().contains(&1));
        drop(joiner);
    }
}
