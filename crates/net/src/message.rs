//! Message envelopes and addressing.

use bytes::Bytes;
use std::fmt;

/// A process rank in the virtual cluster, MPI-style. Rank 0 is the master
/// by convention of the runtime crate.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct Rank(pub u32);

impl Rank {
    /// The rank as a dense index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for Rank {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "rank{}", self.0)
    }
}

/// Message tag distinguishing protocol message kinds, MPI-style.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct Tag(pub u32);

impl fmt::Display for Tag {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "tag{}", self.0)
    }
}

/// One message in flight: source, destination, tag and opaque payload.
#[derive(Clone, Debug)]
pub struct Envelope {
    /// Sending rank.
    pub src: Rank,
    /// Destination rank.
    pub dst: Rank,
    /// Protocol tag.
    pub tag: Tag,
    /// Payload bytes (cheaply clonable).
    pub payload: Bytes,
}

impl Envelope {
    /// Total on-the-wire size in bytes (payload plus a fixed 16-byte
    /// header), used by communication cost models.
    pub fn wire_size(&self) -> u64 {
        self.payload.len() as u64 + 16
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wire_size_includes_header() {
        let e = Envelope {
            src: Rank(0),
            dst: Rank(1),
            tag: Tag(3),
            payload: Bytes::from_static(b"12345"),
        };
        assert_eq!(e.wire_size(), 21);
    }

    #[test]
    fn display_forms() {
        assert_eq!(Rank(3).to_string(), "rank3");
        assert_eq!(Tag(7).to_string(), "tag7");
    }
}
