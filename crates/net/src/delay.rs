//! Communication cost models.
//!
//! The transport itself delivers instantly (it is in-process); these models
//! quantify what the same traffic would cost on a real interconnect. The
//! discrete-event simulator consumes them to time message deliveries, and
//! the runtime's stats reports use them to estimate communication overhead.

/// Latency/bandwidth model of one link: transferring `b` bytes costs
/// `latency + b / bandwidth`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DelayModel {
    /// Per-message latency in nanoseconds.
    pub latency_ns: u64,
    /// Bandwidth in bytes per microsecond (1 byte/us = ~0.95 MB/s).
    pub bytes_per_us: u64,
}

impl DelayModel {
    /// Infiniband-QDR-like defaults (the Tianhe-1A interconnect): ~1.5 us
    /// latency, ~3.2 GB/s effective bandwidth.
    pub fn infiniband_qdr() -> Self {
        Self {
            latency_ns: 1_500,
            bytes_per_us: 3_200,
        }
    }

    /// Gigabit-Ethernet-like: ~50 us latency, ~110 MB/s.
    pub fn gigabit_ethernet() -> Self {
        Self {
            latency_ns: 50_000,
            bytes_per_us: 110,
        }
    }

    /// Zero-cost model (shared memory / disabled).
    pub fn free() -> Self {
        Self {
            latency_ns: 0,
            bytes_per_us: u64::MAX,
        }
    }

    /// Cost in nanoseconds of moving `bytes` over this link.
    pub fn transfer_ns(&self, bytes: u64) -> u64 {
        let bw = if self.bytes_per_us == 0 {
            1
        } else {
            self.bytes_per_us
        };
        self.latency_ns + bytes.saturating_mul(1_000) / bw
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transfer_cost_scales_with_bytes() {
        let m = DelayModel {
            latency_ns: 1_000,
            bytes_per_us: 1_000,
        };
        assert_eq!(m.transfer_ns(0), 1_000);
        // 1000 bytes at 1000 B/us = 1 us = 1000 ns on top of latency.
        assert_eq!(m.transfer_ns(1_000), 2_000);
        assert_eq!(m.transfer_ns(10_000), 11_000);
    }

    #[test]
    fn free_model_costs_nothing_measurable() {
        let m = DelayModel::free();
        assert_eq!(m.transfer_ns(0), 0);
        assert_eq!(m.transfer_ns(1 << 30), 0);
    }

    #[test]
    fn qdr_beats_ethernet() {
        let bytes = 1 << 20;
        assert!(
            DelayModel::infiniband_qdr().transfer_ns(bytes)
                < DelayModel::gigabit_ethernet().transfer_ns(bytes)
        );
    }

    #[test]
    fn zero_bandwidth_does_not_divide_by_zero() {
        let m = DelayModel {
            latency_ns: 5,
            bytes_per_us: 0,
        };
        assert!(m.transfer_ns(100) >= 5);
    }
}
