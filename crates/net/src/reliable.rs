//! Reliable delivery over the (possibly lossy) transport.
//!
//! [`Endpoint::send`] is fire-and-forget: under fault injection a message
//! can vanish without the sender learning about it. [`ReliableEndpoint`]
//! wraps an endpoint with an acknowledged-delivery protocol so the
//! runtime's control messages survive loss:
//!
//! - every reliable send is framed with a per-destination sequence number
//!   and kept in a retransmit buffer until the peer's ACK arrives;
//! - unacked messages are retransmitted with exponential backoff, up to
//!   [`RetryPolicy::max_attempts`]; exhausting the budget (or the peer's
//!   channel closing) surfaces a [`SendFailure`] instead of silently
//!   losing the message;
//! - the receive path ACKs every DATA frame (duplicates re-ACK, because
//!   the first ACK may itself have been dropped) and suppresses duplicate
//!   deliveries with a per-peer sequence window, so the application sees
//!   at-least-once sends as exactly-once deliveries;
//! - every valid frame from a peer (data, duplicate, ack) refreshes
//!   [`ReliableEndpoint::last_heard`], giving schedulers a liveness signal
//!   that distinguishes a *slow* peer from a *dead* one;
//! - every frame is sealed with a CRC-32C header (see [`crate::frame`])
//!   and verified before any field is decoded: a corrupted frame is
//!   counted ([`ReliStats::corrupt_frames`]), dropped whole, and
//!   recovered by the same retransmission path as a lost one.
//!
//! Unreliable sends (e.g. periodic heartbeats, where the next one
//! supersedes a lost one) share the same framing so both kinds can be
//! mixed on one endpoint.
//!
//! Retransmission is driven by the receive calls (`recv_timeout` /
//! `pump`), not a background thread: every user of this layer already sits
//! in a receive loop, and keeping the state single-threaded avoids locking
//! on the hot path.

use crate::frame::{self, Frame, FrameError};
use crate::message::{Envelope, Rank, Tag};
use crate::transport::{Endpoint, NetError, NetStats};
use bytes::Bytes;
use easyhps_obs::LaneBuf;
use std::collections::BTreeSet;
use std::time::{Duration, Instant};

/// Retransmission policy for reliable sends.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total send attempts per message (first send included) before the
    /// sender gives up and reports a [`SendFailure`].
    pub max_attempts: u32,
    /// Backoff after the first attempt; doubles per attempt.
    pub initial_backoff: Duration,
    /// Upper bound on the per-attempt backoff.
    pub max_backoff: Duration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self {
            max_attempts: 10,
            initial_backoff: Duration::from_millis(5),
            max_backoff: Duration::from_millis(80),
        }
    }
}

impl RetryPolicy {
    /// Backoff to wait after the `attempts`-th send of a message.
    fn backoff(&self, attempts: u32) -> Duration {
        let shift = attempts.saturating_sub(1).min(16);
        self.initial_backoff
            .saturating_mul(1u32 << shift)
            .min(self.max_backoff)
    }

    /// Worst-case time a message can sit in the retransmit cycle before
    /// the sender gives up: the sum of every scheduled backoff. After
    /// this long, every pending send has either been acked or abandoned —
    /// the right deadline scale for shutdown drains (a fixed constant
    /// silently truncates slow retry schedules).
    pub fn drain_budget(&self) -> Duration {
        (1..=self.max_attempts).map(|a| self.backoff(a)).sum()
    }
}

/// Counters of the reliability layer.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ReliStats {
    /// Reliable (acknowledged) messages first-sent.
    pub data_sent: u64,
    /// Retransmissions of unacked messages.
    pub retransmits: u64,
    /// Reliable sends abandoned (retry budget exhausted or peer gone).
    pub give_ups: u64,
    /// ACK frames sent (including re-ACKs of duplicates).
    pub acks_sent: u64,
    /// ACK frames received.
    pub acks_recv: u64,
    /// Duplicate data deliveries suppressed.
    pub duplicates: u64,
    /// Frames that failed to parse and were dropped.
    pub malformed: u64,
    /// Frames whose CRC-32C check failed: dropped before any field was
    /// decoded, recovered by retransmission (reliable traffic) or
    /// superseded by the next send (unreliable traffic).
    pub corrupt_frames: u64,
    /// Total backoff scheduled across retransmissions, in nanoseconds —
    /// how long reliable deliveries sat waiting on retry timers.
    pub backoff_wait_ns: u64,
}

/// Per-peer slice of the reliability counters, snapshotted by
/// [`ReliableEndpoint::peer_stats`] — the supported way to read these
/// numbers (no field peeking, no aggregation guesswork).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PeerReliStats {
    /// Retransmissions of unacked messages to this peer.
    pub retransmits: u64,
    /// Duplicate data deliveries from this peer that were suppressed.
    pub duplicates: u64,
    /// Reliable sends to this peer that were abandoned (retry budget
    /// exhausted or peer unreachable).
    pub send_failures: u64,
}

/// A reliable send that was abandoned: the peer never acknowledged it
/// within the retry budget, or its channel closed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SendFailure {
    /// Destination of the failed message.
    pub dst: Rank,
    /// Protocol tag of the failed message.
    pub tag: Tag,
    /// Sequence number assigned at [`ReliableEndpoint::send_reliable`].
    pub seq: u64,
    /// Why the send was abandoned.
    pub reason: FailReason,
}

/// Why a reliable send was abandoned.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FailReason {
    /// The peer's channel is closed (endpoint dropped): it can never
    /// receive anything again.
    Unreachable,
    /// The retry budget ran out without an ACK. The peer may still be
    /// alive (e.g. an unlucky run of drops, or it is stalled).
    NoAck,
}

/// One unacknowledged reliable message.
struct Pending {
    dst: Rank,
    tag: Tag,
    seq: u64,
    framed: Bytes,
    attempts: u32,
    next_retry: Instant,
}

/// Receive-side dedup window for one peer: `contig` is the highest
/// sequence number below which everything was delivered; `ahead` holds
/// delivered numbers above it (out-of-order arrivals via retransmits).
#[derive(Default)]
struct PeerRecv {
    contig: u64,
    ahead: BTreeSet<u64>,
}

impl PeerRecv {
    /// Record `seq` as delivered; false if it already was.
    fn fresh(&mut self, seq: u64) -> bool {
        if seq <= self.contig || self.ahead.contains(&seq) {
            return false;
        }
        self.ahead.insert(seq);
        while self.ahead.remove(&(self.contig + 1)) {
            self.contig += 1;
        }
        true
    }
}

/// An [`Endpoint`] with acknowledged delivery, bounded retransmission and
/// per-peer liveness tracking. See the module docs for the protocol.
pub struct ReliableEndpoint {
    ep: Endpoint,
    policy: RetryPolicy,
    /// Last assigned outgoing sequence number, per destination rank.
    next_seq: Vec<u64>,
    pending: Vec<Pending>,
    recv_state: Vec<PeerRecv>,
    /// When each peer was last heard from (any valid frame).
    last_heard: Vec<Option<Instant>>,
    failures: Vec<SendFailure>,
    stats: ReliStats,
    per_peer: Vec<PeerReliStats>,
    /// Event lane for retransmit/abandon instants (tracing; disabled by
    /// default).
    lane: LaneBuf,
}

impl ReliableEndpoint {
    /// Wrap `ep` with reliability state for every rank in its network.
    pub fn new(ep: Endpoint, policy: RetryPolicy) -> Self {
        let n = ep.n_ranks();
        Self {
            ep,
            policy,
            next_seq: vec![0; n],
            pending: Vec::new(),
            recv_state: (0..n).map(|_| PeerRecv::default()).collect(),
            last_heard: vec![None; n],
            failures: Vec::new(),
            stats: ReliStats::default(),
            per_peer: vec![PeerReliStats::default(); n],
            lane: LaneBuf::disabled(),
        }
    }

    /// Attach a tracing lane: retransmissions and abandoned sends are
    /// recorded as instant events (name `retransmit` / `send-abandoned`,
    /// category `net`, the peer rank as argument).
    pub fn set_event_lane(&mut self, lane: LaneBuf) {
        self.lane = lane;
    }

    /// Grow the per-rank reliability state to cover `n` ranks — called
    /// when a mid-run joiner extends the cluster. Existing state is
    /// untouched; new slots start fresh.
    pub fn ensure_ranks(&mut self, n: usize) {
        while self.next_seq.len() < n {
            self.next_seq.push(0);
            self.recv_state.push(PeerRecv::default());
            self.last_heard.push(None);
            self.per_peer.push(PeerReliStats::default());
        }
    }

    /// Reset all reliability state for `peer`: a *new incarnation* of the
    /// rank restarts its sequence numbers at 1, so the old dedup window
    /// would silently swallow everything it sends, and retransmits aimed
    /// at the dead incarnation are meaningless. Liveness is reset to
    /// "just heard" so the fresh incarnation gets its startup grace.
    pub fn reset_peer(&mut self, peer: Rank) {
        let i = peer.index();
        if let Some(s) = self.next_seq.get_mut(i) {
            *s = 0;
        }
        if let Some(r) = self.recv_state.get_mut(i) {
            *r = PeerRecv::default();
        }
        if let Some(h) = self.last_heard.get_mut(i) {
            *h = Some(Instant::now());
        }
        self.pending.retain(|p| p.dst != peer);
    }

    /// This endpoint's rank.
    pub fn rank(&self) -> Rank {
        self.ep.rank()
    }

    /// Number of ranks in the network.
    pub fn n_ranks(&self) -> usize {
        self.ep.n_ranks()
    }

    /// Reliability-layer counters (endpoint-wide).
    pub fn stats(&self) -> ReliStats {
        self.stats
    }

    /// Cheap per-peer snapshot of retransmits, duplicate drops and
    /// abandoned sends for `peer` (zeros for an out-of-range rank).
    pub fn peer_stats(&self, peer: Rank) -> PeerReliStats {
        self.per_peer.get(peer.index()).copied().unwrap_or_default()
    }

    /// Per-peer reliability counters, indexed by rank.
    pub fn all_peer_stats(&self) -> &[PeerReliStats] {
        &self.per_peer
    }

    /// Raw transport counters of the wrapped endpoint.
    pub fn net_stats(&self) -> NetStats {
        self.ep.stats()
    }

    /// When `peer` was last heard from (any valid frame: data, duplicate
    /// or ack). `None` until the first frame arrives.
    pub fn last_heard(&self, peer: Rank) -> Option<Instant> {
        self.last_heard.get(peer.index()).copied().flatten()
    }

    /// Whether any reliable send is still awaiting its ACK.
    pub fn has_pending(&self) -> bool {
        !self.pending.is_empty()
    }

    /// Abandoned reliable sends accumulated since the last call.
    pub fn take_failures(&mut self) -> Vec<SendFailure> {
        std::mem::take(&mut self.failures)
    }

    /// Fire-and-forget send (framed, but never retransmitted). For
    /// messages where the next one supersedes a lost one, e.g. heartbeats.
    pub fn send_unreliable(&mut self, dst: Rank, tag: Tag, payload: Bytes) -> Result<(), NetError> {
        self.ep.send(dst, tag, frame::seal_raw(&payload))
    }

    /// Acknowledged send: the message is retransmitted with backoff until
    /// the peer ACKs it or the retry budget runs out (then reported via
    /// [`Self::take_failures`]). Returns the assigned sequence number.
    ///
    /// An immediate `Err` means the message was never queued (the peer's
    /// channel is closed or this endpoint is dead) — there will be no
    /// retries and no [`SendFailure`] for it.
    pub fn send_reliable(&mut self, dst: Rank, tag: Tag, payload: Bytes) -> Result<u64, NetError> {
        let slot = dst.index();
        let seq = self.next_seq[slot] + 1;
        let framed = frame::seal_data(seq, &payload);
        self.ep.send(dst, tag, framed.clone())?;
        self.next_seq[slot] = seq;
        self.stats.data_sent += 1;
        self.pending.push(Pending {
            dst,
            tag,
            seq,
            framed,
            attempts: 1,
            next_retry: Instant::now() + self.policy.backoff(1),
        });
        Ok(seq)
    }

    /// Retransmit every overdue unacked message; abandon those whose
    /// retry budget is exhausted or whose peer is unreachable. Called
    /// automatically by the receive methods.
    pub fn pump(&mut self) {
        let now = Instant::now();
        let mut i = 0;
        while i < self.pending.len() {
            if self.pending[i].next_retry > now {
                i += 1;
                continue;
            }
            if self.pending[i].attempts >= self.policy.max_attempts {
                let p = self.pending.swap_remove(i);
                self.abandon(p, FailReason::NoAck);
                continue;
            }
            let (dst, tag) = (self.pending[i].dst, self.pending[i].tag);
            let framed = self.pending[i].framed.clone();
            match self.ep.send(dst, tag, framed) {
                Ok(()) => {
                    self.stats.retransmits += 1;
                    if let Some(pp) = self.per_peer.get_mut(dst.index()) {
                        pp.retransmits += 1;
                    }
                    self.lane
                        .instant("retransmit", "net", Some(("peer", u64::from(dst.0))));
                    let p = &mut self.pending[i];
                    p.attempts += 1;
                    let backoff = self.policy.backoff(p.attempts);
                    self.stats.backoff_wait_ns += backoff.as_nanos() as u64;
                    p.next_retry = now + backoff;
                    i += 1;
                }
                Err(_) => {
                    let p = self.pending.swap_remove(i);
                    self.abandon(p, FailReason::Unreachable);
                }
            }
        }
    }

    /// Record an abandoned reliable send: aggregate + per-peer counters,
    /// a `SendFailure` for [`Self::take_failures`], and a trace instant.
    fn abandon(&mut self, p: Pending, reason: FailReason) {
        self.stats.give_ups += 1;
        if let Some(pp) = self.per_peer.get_mut(p.dst.index()) {
            pp.send_failures += 1;
        }
        self.lane
            .instant("send-abandoned", "net", Some(("peer", u64::from(p.dst.0))));
        self.failures.push(SendFailure {
            dst: p.dst,
            tag: p.tag,
            seq: p.seq,
            reason,
        });
    }

    /// Process one incoming frame. The CRC is verified before anything is
    /// decoded; corrupt frames are counted and dropped (retransmission
    /// recovers reliable traffic). ACKs are absorbed, DATA frames are
    /// acknowledged and deduplicated; returns the unwrapped envelope for
    /// fresh application messages.
    fn accept(&mut self, env: Envelope) -> Option<Envelope> {
        let src = env.src.index();
        match frame::check(&env.payload) {
            Err(FrameError::Corrupt) => {
                // No field of a corrupt frame is trustworthy — not even
                // liveness (`last_heard` stays untouched). Drop it whole.
                self.stats.corrupt_frames += 1;
                self.lane
                    .instant("frame-corrupt", "net", Some(("peer", src as u64)));
                None
            }
            Err(_) => {
                self.stats.malformed += 1;
                None
            }
            Ok(Frame::Raw) => {
                self.note_heard(src);
                Some(Envelope {
                    payload: env.payload.slice(frame::RAW_BODY..),
                    ..env
                })
            }
            Ok(Frame::Data { seq }) => {
                self.note_heard(src);
                // Always (re-)ACK: the previous ACK may have been dropped.
                let _ = self.ep.send(env.src, env.tag, frame::seal_ack(seq));
                self.stats.acks_sent += 1;
                if self.recv_state[src].fresh(seq) {
                    Some(Envelope {
                        payload: env.payload.slice(frame::DATA_BODY..),
                        ..env
                    })
                } else {
                    self.stats.duplicates += 1;
                    if let Some(pp) = self.per_peer.get_mut(src) {
                        pp.duplicates += 1;
                    }
                    None
                }
            }
            Ok(Frame::Ack { seq }) => {
                self.note_heard(src);
                self.stats.acks_recv += 1;
                if let Some(i) = self
                    .pending
                    .iter()
                    .position(|p| p.dst == env.src && p.seq == seq)
                {
                    self.pending.swap_remove(i);
                }
                None
            }
        }
    }

    fn note_heard(&mut self, src: usize) {
        if let Some(slot) = self.last_heard.get_mut(src) {
            *slot = Some(Instant::now());
        }
    }

    /// Receive the next application message, driving retransmissions
    /// while waiting. ACKs and duplicates are handled internally and do
    /// not count against the caller's patience: the timeout bounds the
    /// total wall-clock wait for an *application* message.
    pub fn recv_timeout(&mut self, timeout: Duration) -> Result<Envelope, NetError> {
        let deadline = Instant::now() + timeout;
        loop {
            self.pump();
            let now = Instant::now();
            let mut wait = deadline.saturating_duration_since(now);
            if let Some(next) = self.pending.iter().map(|p| p.next_retry).min() {
                // Wake early to retransmit, but never spin hotter than 1ms.
                let until_retry = next
                    .saturating_duration_since(now)
                    .max(Duration::from_millis(1));
                wait = wait.min(until_retry);
            }
            match self.ep.recv_timeout(wait) {
                Ok(env) => {
                    if let Some(env) = self.accept(env) {
                        return Ok(env);
                    }
                }
                Err(NetError::Timeout) => {}
                Err(e) => return Err(e),
            }
            if Instant::now() >= deadline {
                return Err(NetError::Timeout);
            }
        }
    }

    /// Drive retransmissions until every reliable send is ACKed, abandoned
    /// or `max_wait` elapses; true when nothing is left pending. Incoming
    /// application messages received meanwhile are ACKed (so the peer
    /// stops retransmitting) but discarded — this is a shutdown linger,
    /// not a receive path.
    pub fn drain_pending(&mut self, max_wait: Duration) -> bool {
        let deadline = Instant::now() + max_wait;
        while self.has_pending() && Instant::now() < deadline {
            match self.recv_timeout(Duration::from_millis(5)) {
                Ok(_) | Err(NetError::Timeout) => {}
                Err(_) => break,
            }
        }
        self.pump();
        !self.has_pending()
    }
}

impl std::fmt::Debug for ReliableEndpoint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ReliableEndpoint")
            .field("rank", &self.ep.rank())
            .field("pending", &self.pending.len())
            .field("stats", &self.stats)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::FaultPlan;
    use crate::transport::Network;

    fn pair(plans: &[Option<FaultPlan>]) -> (ReliableEndpoint, ReliableEndpoint) {
        let mut eps = Network::with_faults(2, plans);
        let e1 = eps.pop().unwrap();
        let e0 = eps.pop().unwrap();
        (
            ReliableEndpoint::new(e0, RetryPolicy::default()),
            ReliableEndpoint::new(e1, RetryPolicy::default()),
        )
    }

    #[test]
    fn reliable_roundtrip_no_faults() {
        let (mut a, mut b) = pair(&[]);
        let seq = a
            .send_reliable(Rank(1), Tag(7), Bytes::from(vec![1, 2, 3]))
            .unwrap();
        assert_eq!(seq, 1);
        let env = b.recv_timeout(Duration::from_millis(100)).unwrap();
        assert_eq!(env.tag, Tag(7));
        assert_eq!(&env.payload[..], &[1, 2, 3]);
        // The ACK clears the sender's pending buffer on its next pump.
        assert!(a.recv_timeout(Duration::from_millis(20)).is_err());
        assert!(!a.has_pending());
        assert_eq!(a.stats().retransmits, 0);
        assert!(a.last_heard(Rank(1)).is_some(), "ack refreshes liveness");
    }

    #[test]
    fn lossy_sender_retransmits_until_delivered() {
        // 60% drop on the sender side: first attempts mostly vanish, but
        // retransmission pushes everything through exactly once.
        let plans = vec![Some(FaultPlan::lossy(0.6, 7)), None];
        let (mut a, mut b) = pair(&plans);
        let n = 20u8;
        for i in 0..n {
            a.send_reliable(Rank(1), Tag(0), Bytes::from(vec![i]))
                .unwrap();
        }
        let mut got = Vec::new();
        let deadline = Instant::now() + Duration::from_secs(10);
        while got.len() < n as usize && Instant::now() < deadline {
            // Alternate: b receives (and ACKs), a pumps retransmits.
            if let Ok(env) = b.recv_timeout(Duration::from_millis(5)) {
                got.push(env.payload[0]);
            }
            let _ = a.recv_timeout(Duration::from_millis(5));
        }
        got.sort_unstable();
        assert_eq!(got, (0..n).collect::<Vec<_>>(), "all delivered, no dups");
        assert!(a.stats().retransmits > 0, "drops forced retransmits");
        assert!(a.take_failures().is_empty());
        // Per-peer and endpoint-wide counters agree (single peer here).
        let per = a.peer_stats(Rank(1));
        assert_eq!(per.retransmits, a.stats().retransmits);
        assert_eq!(per.send_failures, 0);
        assert!(
            a.stats().backoff_wait_ns > 0,
            "retransmits schedule backoff waits"
        );
        assert_eq!(a.peer_stats(Rank(99)), PeerReliStats::default());
    }

    #[test]
    fn lossy_receiver_acks_survive_via_reack() {
        // Drops on the *receiver's* outgoing side lose ACKs; the sender
        // retransmits, the receiver suppresses the duplicate and re-ACKs.
        let plans = vec![None, Some(FaultPlan::lossy(0.5, 11))];
        let (mut a, mut b) = pair(&plans);
        for i in 0..10u8 {
            a.send_reliable(Rank(1), Tag(0), Bytes::from(vec![i]))
                .unwrap();
        }
        let mut got = Vec::new();
        let deadline = Instant::now() + Duration::from_secs(10);
        while (a.has_pending() || got.len() < 10) && Instant::now() < deadline {
            if let Ok(env) = b.recv_timeout(Duration::from_millis(5)) {
                got.push(env.payload[0]);
            }
            let _ = a.recv_timeout(Duration::from_millis(5));
        }
        got.sort_unstable();
        assert_eq!(got, (0..10).collect::<Vec<_>>());
        assert!(!a.has_pending(), "every message eventually acked");
        assert!(b.stats().duplicates > 0, "lost acks forced duplicates");
        assert_eq!(
            b.peer_stats(Rank(0)).duplicates,
            b.stats().duplicates,
            "all duplicates came from rank 0"
        );
    }

    #[test]
    fn corrupting_link_is_survived_by_retransmission() {
        // 40% of outgoing frames get one bit flipped. The receiver's CRC
        // check drops them before any field is decoded, and retransmission
        // pushes every message through exactly once — a corrupting link
        // degrades into a lossy one.
        let plan = FaultPlan {
            seed: 13,
            ..FaultPlan::default()
        }
        .with_bitflips(0.4);
        let (mut a, mut b) = pair(&[Some(plan), None]);
        let n = 20u8;
        for i in 0..n {
            a.send_reliable(Rank(1), Tag(0), Bytes::from(vec![i]))
                .unwrap();
        }
        let mut got = Vec::new();
        let deadline = Instant::now() + Duration::from_secs(10);
        while got.len() < n as usize && Instant::now() < deadline {
            if let Ok(env) = b.recv_timeout(Duration::from_millis(5)) {
                got.push(env.payload[0]);
            }
            let _ = a.recv_timeout(Duration::from_millis(5));
        }
        got.sort_unstable();
        assert_eq!(got, (0..n).collect::<Vec<_>>(), "all delivered intact");
        assert!(a.net_stats().corrupted_msgs > 0, "flips were injected");
        assert!(b.stats().corrupt_frames > 0, "flips were detected by CRC");
        assert_eq!(b.stats().malformed, 0, "nothing reached the decoder");
        assert!(a.stats().retransmits > 0, "recovery came from retransmits");
        assert!(a.take_failures().is_empty());
    }

    #[test]
    fn unreachable_peer_reports_failure() {
        let (mut a, b) = pair(&[]);
        drop(b);
        // The channel to rank 1 is closed: the first send errors out.
        assert!(a.send_reliable(Rank(1), Tag(0), Bytes::new()).is_err());
        assert!(!a.has_pending());
    }

    #[test]
    fn silent_peer_exhausts_retries_and_fails() {
        let policy = RetryPolicy {
            max_attempts: 3,
            initial_backoff: Duration::from_millis(1),
            max_backoff: Duration::from_millis(2),
        };
        // Drop everything the sender emits: the peer never sees it, the
        // channel stays open, so the sender must give up on its own.
        let plans = vec![Some(FaultPlan::lossy(1.0, 1)), None];
        let mut eps = Network::with_faults(2, &plans);
        let _b = eps.pop().unwrap();
        let mut a = ReliableEndpoint::new(eps.pop().unwrap(), policy);
        let seq = a.send_reliable(Rank(1), Tag(3), Bytes::new()).unwrap();
        let deadline = Instant::now() + Duration::from_secs(2);
        while a.has_pending() && Instant::now() < deadline {
            let _ = a.recv_timeout(Duration::from_millis(2));
        }
        let failures = a.take_failures();
        assert_eq!(failures.len(), 1);
        assert_eq!(failures[0].seq, seq);
        assert_eq!(failures[0].tag, Tag(3));
        assert_eq!(failures[0].reason, FailReason::NoAck);
        assert_eq!(a.stats().give_ups, 1);
        assert_eq!(a.peer_stats(Rank(1)).send_failures, 1);
        assert_eq!(a.all_peer_stats().len(), 2);
    }

    #[test]
    fn event_lane_records_retransmit_and_abandon_instants() {
        use easyhps_obs::EventRecorder;
        use std::sync::Arc;
        let rec = Arc::new(EventRecorder::new());
        let policy = RetryPolicy {
            max_attempts: 3,
            initial_backoff: Duration::from_millis(1),
            max_backoff: Duration::from_millis(2),
        };
        let plans = vec![Some(FaultPlan::lossy(1.0, 1)), None];
        let mut eps = Network::with_faults(2, &plans);
        let _b = eps.pop().unwrap();
        let mut a = ReliableEndpoint::new(eps.pop().unwrap(), policy);
        a.set_event_lane(rec.lane(0, 99));
        a.send_reliable(Rank(1), Tag(3), Bytes::new()).unwrap();
        let deadline = Instant::now() + Duration::from_secs(2);
        while a.has_pending() && Instant::now() < deadline {
            let _ = a.recv_timeout(Duration::from_millis(2));
        }
        drop(a); // flush the lane buffer into the recorder
        let json = rec.chrome_trace_json();
        let summary = easyhps_obs::validate_chrome_trace(&json).expect("valid trace");
        assert!(summary.count("retransmit") >= 1, "{json}");
        assert_eq!(summary.count("send-abandoned"), 1, "{json}");
    }

    #[test]
    fn unreliable_sends_are_unwrapped_but_not_tracked() {
        let (mut a, mut b) = pair(&[]);
        a.send_unreliable(Rank(1), Tag(9), Bytes::from(vec![42]))
            .unwrap();
        assert!(!a.has_pending());
        let env = b.recv_timeout(Duration::from_millis(100)).unwrap();
        assert_eq!(env.tag, Tag(9));
        assert_eq!(&env.payload[..], &[42]);
        assert_eq!(b.stats().acks_sent, 0, "raw frames are not acked");
    }

    #[test]
    fn dedup_window_is_per_peer() {
        let mut eps = Network::new(3);
        let e2 = eps.pop().unwrap();
        let e1 = eps.pop().unwrap();
        let mut c = ReliableEndpoint::new(eps.pop().unwrap(), RetryPolicy::default());
        let mut a = ReliableEndpoint::new(e1, RetryPolicy::default());
        let mut b = ReliableEndpoint::new(e2, RetryPolicy::default());
        // Both peers send their own seq 1 to rank 0: both must surface.
        a.send_reliable(Rank(0), Tag(1), Bytes::from(vec![1]))
            .unwrap();
        b.send_reliable(Rank(0), Tag(1), Bytes::from(vec![2]))
            .unwrap();
        let mut got = vec![
            c.recv_timeout(Duration::from_millis(100)).unwrap().payload[0],
            c.recv_timeout(Duration::from_millis(100)).unwrap().payload[0],
        ];
        got.sort_unstable();
        assert_eq!(got, vec![1, 2]);
    }

    #[test]
    fn drain_pending_waits_for_acks() {
        let plans = vec![Some(FaultPlan::lossy(0.5, 3)), None];
        let (mut a, mut b) = pair(&plans);
        for _ in 0..5 {
            a.send_reliable(Rank(1), Tag(0), Bytes::from(vec![0]))
                .unwrap();
        }
        // Peer thread consumes (and acks) everything.
        let h = std::thread::spawn(move || {
            let deadline = Instant::now() + Duration::from_secs(5);
            let mut seen = 0;
            while seen < 5 && Instant::now() < deadline {
                if b.recv_timeout(Duration::from_millis(10)).is_ok() {
                    seen += 1;
                }
            }
            seen
        });
        assert!(a.drain_pending(Duration::from_secs(5)), "all acked");
        assert_eq!(h.join().unwrap(), 5);
    }

    #[test]
    fn drain_budget_sums_the_whole_backoff_schedule() {
        let p = RetryPolicy {
            max_attempts: 5,
            initial_backoff: Duration::from_millis(4),
            max_backoff: Duration::from_millis(20),
        };
        // 4 + 8 + 16 + 20 + 20
        assert_eq!(p.drain_budget(), Duration::from_millis(68));
        // Default policy: 5+10+20+40+80*6 = 555 ms.
        assert_eq!(
            RetryPolicy::default().drain_budget(),
            Duration::from_millis(555)
        );
    }

    #[test]
    fn backoff_doubles_and_saturates() {
        let p = RetryPolicy {
            max_attempts: 10,
            initial_backoff: Duration::from_millis(4),
            max_backoff: Duration::from_millis(20),
        };
        assert_eq!(p.backoff(1), Duration::from_millis(4));
        assert_eq!(p.backoff(2), Duration::from_millis(8));
        assert_eq!(p.backoff(3), Duration::from_millis(16));
        assert_eq!(p.backoff(4), Duration::from_millis(20));
        assert_eq!(p.backoff(40), Duration::from_millis(20));
    }
}
