//! CRC-guarded wire frames.
//!
//! Every message [`crate::ReliableEndpoint`] puts on the wire — raw
//! (unreliable) sends, sequenced DATA frames and ACKs — is *sealed* into
//! a frame whose header carries a CRC-32C over everything after it:
//!
//! ```text
//! [crc32c u32 LE | kind u8 | seq u64 LE (DATA/ACK only) | payload ...]
//! ```
//!
//! [`check`] verifies the checksum *before* any field is parsed, so a
//! corrupted frame can never reach the protocol decoder: it is reported
//! as [`FrameError::Corrupt`], dropped, and (for reliable traffic)
//! recovered by the ack/retransmit machinery exactly as if the link had
//! dropped it. Truncation is equally harmless — a cut anywhere inside a
//! sealed frame fails the CRC (or the minimum-length check) and surfaces
//! as a clean error, never a panic.

use crate::crc::crc32c;
use bytes::Bytes;

/// Frame kind byte: unreliable (never retransmitted) application frame.
pub const KIND_RAW: u8 = 0;
/// Frame kind byte: sequenced, acknowledged application frame.
pub const KIND_DATA: u8 = 1;
/// Frame kind byte: acknowledgement of a DATA frame's sequence number.
pub const KIND_ACK: u8 = 2;

const CRC_LEN: usize = 4;
/// Offset of the application payload inside a sealed RAW frame.
pub const RAW_BODY: usize = CRC_LEN + 1;
/// Offset of the application payload inside a sealed DATA frame.
pub const DATA_BODY: usize = CRC_LEN + 1 + 8;

/// A frame that passed the CRC check, classified by kind. Payload bytes
/// are not copied — slice the original buffer at [`RAW_BODY`] /
/// [`DATA_BODY`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Frame {
    /// Unreliable application frame; payload at [`RAW_BODY`].
    Raw,
    /// Sequenced application frame; payload at [`DATA_BODY`].
    Data {
        /// Per-(sender, destination) sequence number.
        seq: u64,
    },
    /// Acknowledgement of the DATA frame carrying `seq`.
    Ack {
        /// Sequence number being acknowledged.
        seq: u64,
    },
}

/// Why a buffer was rejected as a frame.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FrameError {
    /// Shorter than the smallest sealed frame, or the kind demands fields
    /// the buffer does not have.
    Truncated,
    /// The CRC-32C in the header does not match the frame contents.
    Corrupt,
    /// CRC valid but the kind byte is not one this protocol version
    /// knows.
    UnknownKind,
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Truncated => write!(f, "frame truncated"),
            FrameError::Corrupt => write!(f, "frame checksum mismatch"),
            FrameError::UnknownKind => write!(f, "unknown frame kind"),
        }
    }
}

impl std::error::Error for FrameError {}

/// Seal `body` (kind byte + optional seq + payload, CRC slot reserved)
/// by writing the checksum into the header.
fn seal(mut buf: Vec<u8>) -> Bytes {
    let crc = crc32c(&buf[CRC_LEN..]);
    buf[..CRC_LEN].copy_from_slice(&crc.to_le_bytes());
    Bytes::from(buf)
}

/// Seal an unreliable application frame.
pub fn seal_raw(payload: &[u8]) -> Bytes {
    let mut buf = Vec::with_capacity(RAW_BODY + payload.len());
    buf.extend_from_slice(&[0; CRC_LEN]);
    buf.push(KIND_RAW);
    buf.extend_from_slice(payload);
    seal(buf)
}

/// Seal a sequenced DATA frame.
pub fn seal_data(seq: u64, payload: &[u8]) -> Bytes {
    let mut buf = Vec::with_capacity(DATA_BODY + payload.len());
    buf.extend_from_slice(&[0; CRC_LEN]);
    buf.push(KIND_DATA);
    buf.extend_from_slice(&seq.to_le_bytes());
    buf.extend_from_slice(payload);
    seal(buf)
}

/// Seal an ACK for sequence number `seq`.
pub fn seal_ack(seq: u64) -> Bytes {
    let mut buf = Vec::with_capacity(DATA_BODY);
    buf.extend_from_slice(&[0; CRC_LEN]);
    buf.push(KIND_ACK);
    buf.extend_from_slice(&seq.to_le_bytes());
    seal(buf)
}

/// Verify and classify a sealed frame. The CRC is checked before any
/// field is interpreted; on any error the buffer must be discarded.
pub fn check(buf: &[u8]) -> Result<Frame, FrameError> {
    if buf.len() < RAW_BODY {
        return Err(FrameError::Truncated);
    }
    let stored = u32::from_le_bytes(buf[..CRC_LEN].try_into().expect("4 bytes"));
    if crc32c(&buf[CRC_LEN..]) != stored {
        return Err(FrameError::Corrupt);
    }
    match buf[CRC_LEN] {
        KIND_RAW => Ok(Frame::Raw),
        kind @ (KIND_DATA | KIND_ACK) => {
            let seq_bytes = buf
                .get(CRC_LEN + 1..DATA_BODY)
                .ok_or(FrameError::Truncated)?;
            let seq = u64::from_le_bytes(seq_bytes.try_into().expect("8 bytes"));
            if kind == KIND_DATA {
                Ok(Frame::Data { seq })
            } else {
                Ok(Frame::Ack { seq })
            }
        }
        _ => Err(FrameError::UnknownKind),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seal_and_check_roundtrip() {
        assert_eq!(check(&seal_raw(b"hello")), Ok(Frame::Raw));
        assert_eq!(check(&seal_data(42, b"x")), Ok(Frame::Data { seq: 42 }));
        assert_eq!(check(&seal_ack(7)), Ok(Frame::Ack { seq: 7 }));
        let sealed = seal_data(9, b"payload");
        assert_eq!(&sealed[DATA_BODY..], b"payload");
        assert_eq!(&seal_raw(b"p")[RAW_BODY..], b"p");
    }

    #[test]
    fn every_single_bit_flip_is_caught() {
        let sealed = seal_data(1234, b"some payload bytes");
        for bit in 0..sealed.len() * 8 {
            let mut buf = sealed.to_vec();
            buf[bit / 8] ^= 1 << (bit % 8);
            let got = check(&buf);
            assert!(
                matches!(got, Err(FrameError::Corrupt)),
                "bit {bit}: {got:?}"
            );
        }
    }

    #[test]
    fn every_truncation_is_a_clean_error() {
        for sealed in [seal_raw(b"abcdef"), seal_data(5, b"abcdef"), seal_ack(5)] {
            for cut in 0..sealed.len() {
                assert!(check(&sealed[..cut]).is_err(), "prefix of {cut} bytes");
            }
        }
    }

    #[test]
    fn unknown_kind_is_rejected_even_with_valid_crc() {
        let mut buf = vec![0u8; 5];
        buf[4] = 9; // bogus kind
        let crc = crate::crc::crc32c(&buf[4..]);
        buf[..4].copy_from_slice(&crc.to_le_bytes());
        assert_eq!(check(&buf), Err(FrameError::UnknownKind));
    }
}
