//! Client-facing RPC framing for the serve daemon.
//!
//! The daemon's client protocol (submit / status / stats / cancel) rides
//! on a plain byte stream — TCP or Unix-domain — separate from the
//! rank-to-rank transport. Each direction carries a sequence of
//! length-prefixed, CRC-sealed messages:
//!
//! ```text
//! [len u32 LE] [sealed frame: crc32c | kind=RAW | message bytes …]
//! ```
//!
//! `len` counts the sealed frame only. The seal is the same CRC-32C raw
//! frame used on every transport message ([`crate::frame`]), so a
//! truncated or bit-flipped message is rejected before any field is
//! interpreted — the serve protocol inherits the wire-integrity standard
//! of the runtime protocol for free.
//!
//! A connection opens with a fixed hello (`"EHPC"` magic + version) so
//! the daemon can drop stray peers — mirroring the `"EHPS"` handshake of
//! the rank transport — and then speaks request/response: the client
//! writes one message, the daemon answers with one or more.

use crate::frame;
use std::io::{self, Read, Write};

/// Client-protocol magic: `"EHPC"` little-endian.
pub const RPC_MAGIC: u32 = 0x4350_4845;
/// Client protocol version; bumped on any incompatible message change.
pub const RPC_VERSION: u8 = 1;
/// Default bound on one message's sealed length — a defence against a
/// desynchronised or hostile stream, not a protocol limit.
pub const MAX_MSG: usize = 64 << 20;

/// Write the client hello. Sent once, client → daemon, on connect.
pub fn write_hello(w: &mut impl Write) -> io::Result<()> {
    let mut buf = [0u8; 5];
    buf[..4].copy_from_slice(&RPC_MAGIC.to_le_bytes());
    buf[4] = RPC_VERSION;
    w.write_all(&buf).and_then(|()| w.flush())
}

/// Read and validate the client hello. Any mismatch is fatal for the
/// connection: the peer is not speaking this protocol.
pub fn read_hello(r: &mut impl Read) -> io::Result<()> {
    let mut buf = [0u8; 5];
    r.read_exact(&mut buf)?;
    if u32::from_le_bytes(buf[..4].try_into().expect("4 bytes")) != RPC_MAGIC {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "not an easyhps client (bad magic)",
        ));
    }
    if buf[4] != RPC_VERSION {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!(
                "client protocol version mismatch: peer {}, ours {}",
                buf[4], RPC_VERSION
            ),
        ));
    }
    Ok(())
}

/// Seal `payload` and write it as one length-prefixed message.
pub fn write_msg(w: &mut impl Write, payload: &[u8]) -> io::Result<()> {
    let sealed = frame::seal_raw(payload);
    let len = sealed.len() as u32;
    w.write_all(&len.to_le_bytes())?;
    w.write_all(&sealed)?;
    w.flush()
}

/// Read one message, verify its seal, and return the payload bytes.
/// Errors on EOF, an out-of-range length, or a failed CRC — after any of
/// which the stream must be abandoned (the frame boundary is lost).
pub fn read_msg(r: &mut impl Read, max: usize) -> io::Result<Vec<u8>> {
    let mut lenb = [0u8; 4];
    r.read_exact(&mut lenb)?;
    let len = u32::from_le_bytes(lenb) as usize;
    if len < frame::RAW_BODY || len > max {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("message length {len} out of range"),
        ));
    }
    let mut body = vec![0u8; len];
    r.read_exact(&mut body)?;
    match frame::check(&body) {
        Ok(frame::Frame::Raw) => Ok(body.split_off(frame::RAW_BODY)),
        Ok(_) => Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "unexpected sequenced frame on the client stream",
        )),
        Err(e) => Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("corrupt client message: {e}"),
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hello_roundtrips_and_rejects_garbage() {
        let mut buf = Vec::new();
        write_hello(&mut buf).unwrap();
        read_hello(&mut &buf[..]).unwrap();
        let mut bad = buf.clone();
        bad[1] ^= 0xff;
        assert!(read_hello(&mut &bad[..]).is_err());
        let mut wrong_version = buf.clone();
        wrong_version[4] = RPC_VERSION + 1;
        assert!(read_hello(&mut &wrong_version[..]).is_err());
    }

    #[test]
    fn msg_roundtrips() {
        let mut buf = Vec::new();
        write_msg(&mut buf, b"hello daemon").unwrap();
        write_msg(&mut buf, b"").unwrap();
        let mut r = &buf[..];
        assert_eq!(read_msg(&mut r, MAX_MSG).unwrap(), b"hello daemon");
        assert_eq!(read_msg(&mut r, MAX_MSG).unwrap(), b"");
        assert!(read_msg(&mut r, MAX_MSG).is_err(), "EOF after last message");
    }

    #[test]
    fn truncation_and_corruption_fail_cleanly() {
        let mut buf = Vec::new();
        write_msg(&mut buf, b"an important request").unwrap();
        for cut in 0..buf.len() {
            assert!(
                read_msg(&mut &buf[..cut], MAX_MSG).is_err(),
                "prefix {cut}/{} must not decode",
                buf.len()
            );
        }
        // A flipped bit anywhere past the length prefix fails the CRC;
        // a flipped length bit fails the range check or the read.
        for byte in 0..buf.len() {
            let mut bad = buf.clone();
            bad[byte] ^= 0x10;
            assert!(
                read_msg(&mut &bad[..], MAX_MSG).is_err(),
                "corrupt byte {byte} must not decode"
            );
        }
    }

    #[test]
    fn oversized_length_is_rejected() {
        let mut buf = Vec::new();
        write_msg(&mut buf, b"x").unwrap();
        assert!(read_msg(&mut &buf[..], 4).is_err());
    }
}
