//! Property-based tests for the transport and the wire codec.

use bytes::Bytes;
use easyhps_net::{frame, FaultPlan, Network, Rank, Tag, WireReader, WireWriter};
use proptest::prelude::*;

/// Operations for codec round-trip testing.
#[derive(Clone, Debug)]
enum Item {
    U8(u8),
    U32(u32),
    U64(u64),
    I64(i64),
    Bytes(Vec<u8>),
}

fn arb_item() -> impl Strategy<Value = Item> {
    prop_oneof![
        any::<u8>().prop_map(Item::U8),
        any::<u32>().prop_map(Item::U32),
        any::<u64>().prop_map(Item::U64),
        any::<i64>().prop_map(Item::I64),
        proptest::collection::vec(any::<u8>(), 0..200).prop_map(Item::Bytes),
    ]
}

proptest! {
    /// Any sequence of typed writes reads back exactly, and the reader
    /// ends precisely at the end.
    #[test]
    fn codec_roundtrip(items in proptest::collection::vec(arb_item(), 0..50)) {
        let mut w = WireWriter::new();
        for item in &items {
            match item {
                Item::U8(v) => { w.put_u8(*v); }
                Item::U32(v) => { w.put_u32(*v); }
                Item::U64(v) => { w.put_u64(*v); }
                Item::I64(v) => { w.put_i64(*v); }
                Item::Bytes(v) => { w.put_bytes(v); }
            }
        }
        let buf = w.finish();
        let mut r = WireReader::new(&buf);
        for item in &items {
            match item {
                Item::U8(v) => prop_assert_eq!(r.get_u8().unwrap(), *v),
                Item::U32(v) => prop_assert_eq!(r.get_u32().unwrap(), *v),
                Item::U64(v) => prop_assert_eq!(r.get_u64().unwrap(), *v),
                Item::I64(v) => prop_assert_eq!(r.get_i64().unwrap(), *v),
                Item::Bytes(v) => prop_assert_eq!(&r.get_bytes().unwrap(), v),
            }
        }
        prop_assert!(r.expect_end().is_ok());
    }

    /// Truncating an encoded buffer anywhere strictly inside always makes
    /// *some* read in the sequence fail (no silent garbage).
    #[test]
    fn truncation_never_reads_clean(
        items in proptest::collection::vec(arb_item(), 1..20),
        cut_frac in 0.0f64..1.0,
    ) {
        let mut w = WireWriter::new();
        for item in &items {
            match item {
                Item::U8(v) => { w.put_u8(*v); }
                Item::U32(v) => { w.put_u32(*v); }
                Item::U64(v) => { w.put_u64(*v); }
                Item::I64(v) => { w.put_i64(*v); }
                Item::Bytes(v) => { w.put_bytes(v); }
            }
        }
        let buf = w.finish();
        prop_assume!(!buf.is_empty());
        let cut = ((buf.len() - 1) as f64 * cut_frac) as usize;
        let mut r = WireReader::new(&buf[..cut]);
        let mut failed = false;
        for item in &items {
            let ok = match item {
                Item::U8(_) => r.get_u8().is_ok(),
                Item::U32(_) => r.get_u32().is_ok(),
                Item::U64(_) => r.get_u64().is_ok(),
                Item::I64(_) => r.get_i64().is_ok(),
                Item::Bytes(_) => r.get_bytes().is_ok(),
            };
            if !ok {
                failed = true;
                break;
            }
        }
        // Either a read failed or the tail-end check catches the cut.
        prop_assert!(failed || r.expect_end().is_err() || cut == buf.len());
    }

    /// Messages between a pair arrive in order regardless of interleaving
    /// with other peers.
    #[test]
    fn per_pair_fifo_under_interleaving(
        sends in proptest::collection::vec((0u32..3, 0u32..100), 1..60),
    ) {
        // 3 senders (ranks 1..=3) -> rank 0; each sender's sequence must
        // arrive in its own order.
        let mut eps = Network::new(4);
        let mut receiver = eps.remove(0);
        let mut senders = eps;
        let mut expected: Vec<Vec<u32>> = vec![Vec::new(); 3];
        for (who, tag) in &sends {
            senders[*who as usize].send(Rank(0), Tag(*tag), Bytes::new()).unwrap();
            expected[*who as usize].push(*tag);
        }
        let mut got: Vec<Vec<u32>> = vec![Vec::new(); 3];
        for _ in 0..sends.len() {
            let env = receiver.recv().unwrap();
            got[env.src.0 as usize - 1].push(env.tag.0);
        }
        prop_assert_eq!(got, expected);
    }

    /// A lossy endpoint delivers a deterministic subset: the received
    /// sequence is a prefix-order-preserving subsequence of what was sent.
    #[test]
    fn lossy_delivery_is_an_ordered_subsequence(
        tags in proptest::collection::vec(0u32..1000, 1..80),
        seed in 0u64..500,
    ) {
        let plans = vec![Some(FaultPlan::lossy(0.4, seed)), None];
        let mut eps = Network::with_faults(2, &plans);
        let mut rx = eps.remove(1);
        let mut tx = eps.remove(0);
        for t in &tags {
            tx.send(Rank(1), Tag(*t), Bytes::new()).unwrap();
        }
        let mut got = Vec::new();
        while let Some(env) = rx.try_recv().unwrap() {
            got.push(env.tag.0);
        }
        // Subsequence check.
        let mut it = tags.iter();
        for g in &got {
            prop_assert!(it.any(|t| t == g), "received {g} out of order or never sent");
        }
        prop_assert_eq!(got.len() as u64 + tx.stats().dropped_msgs, tags.len() as u64);
    }

    /// Every byte-length prefix of a sealed frame — any kind, any payload
    /// — fails the CRC/size check cleanly. A truncated frame must never
    /// decode, panic, or allocate from a hostile length.
    #[test]
    fn every_frame_prefix_is_rejected(
        payload in proptest::collection::vec(any::<u8>(), 0..300),
        seq in any::<u64>(),
        kind in 0usize..3,
    ) {
        let sealed = match kind {
            0 => frame::seal_raw(&payload),
            1 => frame::seal_data(seq, &payload),
            _ => frame::seal_ack(seq),
        };
        prop_assert!(frame::check(&sealed).is_ok(), "the full frame is valid");
        for cut in 0..sealed.len() {
            prop_assert!(
                frame::check(&sealed[..cut]).is_err(),
                "prefix of {cut}/{} bytes must not verify",
                sealed.len()
            );
        }
    }

    /// Any single corrupted byte in a sealed frame is caught by the CRC.
    #[test]
    fn any_corrupted_byte_is_caught(
        payload in proptest::collection::vec(any::<u8>(), 0..300),
        seq in any::<u64>(),
        kind in 0usize..3,
        pos_frac in 0.0f64..1.0,
        xor in 1u8..=255,
    ) {
        let sealed = match kind {
            0 => frame::seal_raw(&payload),
            1 => frame::seal_data(seq, &payload),
            _ => frame::seal_ack(seq),
        };
        let mut buf = sealed.to_vec();
        let pos = ((buf.len() - 1) as f64 * pos_frac) as usize;
        buf[pos] ^= xor;
        prop_assert!(frame::check(&buf).is_err(), "flip at byte {pos} must not verify");
    }
}
