//! Socket-transport integration tests: the CRC frame layer over real
//! sockets (truncation, partial writes, corruption) and backpressure.
//!
//! The sealed-frame proptests mirror the in-memory ones in
//! `proptests.rs`, but every byte here actually crosses a kernel socket
//! buffer — partial writes, short reads and torn prefixes are produced
//! by a real `socketpair(2)`, not by slicing a `Vec`.

use bytes::Bytes;
use easyhps_net::socket::{connect, ANY_RANK};
use easyhps_net::{frame, NetAddr, Rank, SocketConfig, SocketListener, Tag};
use proptest::prelude::*;
use std::io::{Read, Write};
use std::net::Shutdown;
use std::os::unix::net::UnixStream;
use std::sync::atomic::Ordering;
use std::time::Duration;

/// Push `bytes` through a real socketpair in `chunk`-byte writes and
/// return what the far end read.
fn through_socketpair(bytes: &[u8], chunk: usize) -> Vec<u8> {
    let (mut a, mut b) = UnixStream::pair().expect("socketpair");
    let data = bytes.to_vec();
    let writer = std::thread::spawn(move || {
        for piece in data.chunks(chunk.max(1)) {
            a.write_all(piece).unwrap();
            a.flush().unwrap();
        }
        a.shutdown(Shutdown::Write).unwrap();
    });
    let mut got = Vec::new();
    b.read_to_end(&mut got).unwrap();
    writer.join().unwrap();
    got
}

fn seal(kind: usize, seq: u64, payload: &[u8]) -> Bytes {
    match kind {
        0 => frame::seal_raw(payload),
        1 => frame::seal_data(seq, payload),
        _ => frame::seal_ack(seq),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// A sealed frame split into arbitrarily small socket writes arrives
    /// intact and still verifies.
    #[test]
    fn sealed_frame_survives_partial_writes(
        payload in proptest::collection::vec(any::<u8>(), 0..200),
        seq in any::<u64>(),
        kind in 0usize..3,
        chunk in 1usize..7,
    ) {
        let sealed = seal(kind, seq, &payload);
        let got = through_socketpair(&sealed, chunk);
        prop_assert_eq!(&got[..], &sealed[..]);
        prop_assert!(frame::check(&got).is_ok());
    }

    /// Every strict byte-prefix of a sealed frame, delivered over a real
    /// socket and terminated by EOF, fails the CRC/size check cleanly.
    #[test]
    fn every_truncated_prefix_is_rejected(
        payload in proptest::collection::vec(any::<u8>(), 0..120),
        seq in any::<u64>(),
        kind in 0usize..3,
    ) {
        let sealed = seal(kind, seq, &payload);
        for cut in 0..sealed.len() {
            let got = through_socketpair(&sealed[..cut], 3);
            prop_assert_eq!(got.len(), cut, "socket must deliver the prefix verbatim");
            prop_assert!(
                frame::check(&got).is_err(),
                "prefix of {}/{} bytes must not verify after socket transit",
                cut,
                sealed.len()
            );
        }
    }

    /// A single corrupted byte anywhere in a sealed frame is still caught
    /// after the frame crosses a real socket.
    #[test]
    fn any_corrupted_byte_is_caught(
        payload in proptest::collection::vec(any::<u8>(), 0..200),
        seq in any::<u64>(),
        kind in 0usize..3,
        pos_frac in 0.0f64..1.0,
        xor in 1u8..=255,
    ) {
        let sealed = seal(kind, seq, &payload);
        let mut buf = sealed.to_vec();
        let pos = ((buf.len() - 1) as f64 * pos_frac) as usize;
        buf[pos] ^= xor;
        let got = through_socketpair(&buf, 5);
        prop_assert!(frame::check(&got).is_err(), "flip at byte {} must not verify", pos);
    }
}

/// A slow reader must not let the sender queue unbounded memory: once
/// the kernel socket buffers fill, the writer thread blocks and the
/// outbound queue is pinned at the high-water mark, throttling `send`.
/// The peer here is a *raw* TCP client that handshakes and then refuses
/// to read, so backpressure genuinely propagates from the wire.
#[test]
fn slow_reader_backpressure_bounds_memory() {
    const HWM: usize = 256 << 10;
    const MSG: usize = 64 << 10;
    const N_MSGS: usize = 512; // 32 MiB total: far beyond kernel buffering
    let cfg = SocketConfig {
        outbound_hwm: HWM,
        ..SocketConfig::default()
    };
    let listener =
        SocketListener::bind(&NetAddr::parse("127.0.0.1:0").unwrap(), cfg.clone()).unwrap();
    let NetAddr::Tcp(hostport) = listener.local_addr() else {
        panic!("tcp listener")
    };

    // Raw peer: speak just enough handshake to be admitted as rank 1.
    let mut peer = std::net::TcpStream::connect(&hostport).unwrap();
    let magic = u32::from_le_bytes(*b"EHPS");
    let mut hello = Vec::new();
    hello.extend_from_slice(&magic.to_le_bytes());
    hello.push(2u8); // protocol version
    hello.extend_from_slice(&1u32.to_le_bytes()); // want rank 1
    hello.extend_from_slice(&0xDEAD_BEEFu64.to_le_bytes()); // session id
    peer.write_all(&hello).unwrap();
    let (mut master, minfo) = listener.accept_ranks(1, None).unwrap();
    let mut welcome = [0u8; 21]; // magic + version + rank + n_ranks + epoch
    peer.read_exact(&mut welcome).unwrap();

    let stats = minfo.link(Rank(1)).unwrap().clone();
    let sender = std::thread::spawn(move || {
        let payload = Bytes::from(vec![0xABu8; MSG]);
        for i in 0..N_MSGS as u32 {
            master.send(Rank(1), Tag(i), payload.clone()).unwrap();
        }
        master
    });

    // Sample the queue gauge while the peer refuses to read: the queue
    // must stay bounded by the high-water mark (plus at most the one
    // frame admitted into an empty queue), not grow towards 32 MiB.
    let mut max_queued = 0u64;
    for _ in 0..60 {
        max_queued = max_queued.max(stats.bytes_queued.load(Ordering::Relaxed));
        std::thread::sleep(Duration::from_millis(5));
    }
    assert!(
        max_queued <= (HWM + MSG + 64) as u64,
        "outbound queue exceeded the high-water mark: {max_queued} bytes"
    );
    assert!(
        !sender.is_finished(),
        "sender must be throttled while the peer reads nothing"
    );

    // Now drain the raw frames: every message arrives, in order, intact.
    for i in 0..N_MSGS as u32 {
        let mut lenb = [0u8; 4];
        peer.read_exact(&mut lenb).unwrap();
        let len = u32::from_le_bytes(lenb) as usize;
        assert_eq!(len, 12 + MSG);
        let mut body = vec![0u8; len];
        peer.read_exact(&mut body).unwrap();
        let tag = u32::from_le_bytes(body[8..12].try_into().unwrap());
        assert_eq!(tag, i);
        assert!(body[12..].iter().all(|b| *b == 0xAB));
    }
    let master = sender.join().unwrap();
    assert_eq!(master.stats().sent_msgs, N_MSGS as u64);
    assert_eq!(stats.frames_sent.load(Ordering::Relaxed), N_MSGS as u64);
}

/// Rank-assignment sanity over TCP: wildcard requests get the free ranks.
#[test]
fn wildcard_rank_requests_fill_free_slots() {
    let listener = SocketListener::bind(
        &NetAddr::parse("127.0.0.1:0").unwrap(),
        SocketConfig::default(),
    )
    .unwrap();
    let addr = listener.local_addr();
    let handles: Vec<_> = (0..3)
        .map(|_| {
            let addr = addr.clone();
            std::thread::spawn(move || {
                connect(&addr, Some(ANY_RANK), SocketConfig::default(), None).unwrap()
            })
        })
        .collect();
    let (_master, minfo) = listener.accept_ranks(3, None).unwrap();
    let mut ranks: Vec<u32> = handles
        .into_iter()
        .map(|h| h.join().unwrap().0.rank().0)
        .collect();
    ranks.sort_unstable();
    assert_eq!(ranks, vec![1, 2, 3]);
    assert_eq!(minfo.links.len(), 3);
}
