//! Deployment configuration and run statistics.

use crate::durable::CheckpointPolicy;
use crate::protocol::SlaveStatsMsg;
use easyhps_core::sched::SchedParams;
use easyhps_core::ScheduleMode;
use easyhps_net::RetryPolicy;
use easyhps_obs::{EventRecorder, Registry};
use std::sync::Arc;
use std::time::Duration;

/// Observability wiring shared by the master and every slave of a run.
///
/// Both handles are optional and independent: `metrics` turns on counter /
/// gauge / histogram collection into a shared [`Registry`] (snapshot it
/// after the run for Prometheus-style text or JSON export); `recorder`
/// turns on structured event tracing for Chrome trace-event (Perfetto)
/// export. In the in-process virtual cluster every rank shares the same
/// registry and recorder — slave series are distinguished by metric
/// labels, slave events by Chrome process ids. Defaults to everything
/// off, which costs one untaken branch per instrumentation site.
#[derive(Clone, Debug, Default)]
pub struct ObsConfig {
    /// Shared metrics registry (`None` = metrics off).
    pub metrics: Option<Arc<Registry>>,
    /// Shared structured-event recorder (`None` = tracing off).
    pub recorder: Option<Arc<EventRecorder>>,
}

/// How the runtime is deployed on the (virtual) cluster: the paper's
/// `Experiment_X_Y` knobs plus scheduling and fault-tolerance policy.
#[derive(Clone, Debug)]
pub struct Deployment {
    /// Number of slave computing nodes (the paper's `X - 1`).
    pub slaves: usize,
    /// Computing threads per slave node (the paper's `ct`, at most 11 on
    /// their 12-core nodes: one core is the slave scheduling thread).
    pub threads_per_slave: usize,
    /// Process-level scheduling policy.
    pub process_mode: ScheduleMode,
    /// Thread-level scheduling policy.
    pub thread_mode: ScheduleMode,
    /// How long a dispatched sub-task may run before the master's fault
    /// tolerance presumes its slave failed and redistributes it.
    pub task_timeout: Duration,
    /// Poll interval of the fault-tolerance thread.
    pub ft_poll: Duration,
    /// Retransmission policy for reliable control messages
    /// (ASSIGN/DONE/END/...): attempts and backoff before a send is
    /// abandoned and reported.
    pub retry: RetryPolicy,
    /// How often slaves emit a HEARTBEAT (also while computing a tile).
    pub heartbeat_interval: Duration,
    /// How long the master tolerates silence from a slave before treating
    /// it as dead rather than slow. Should be several multiples of
    /// `heartbeat_interval`.
    pub heartbeat_timeout: Duration,
    /// Metrics and structured-event tracing (defaults to off); see
    /// [`ObsConfig`]. The [`crate::EasyHps`] builder wires this through
    /// its `.metrics(..)` / `.trace_out(..)` knobs.
    pub obs: ObsConfig,
    /// Durable incremental checkpointing (defaults to off). When set, the
    /// master appends finished tiles to CRC-guarded segment files in
    /// [`CheckpointPolicy::dir`] at the policy's cadence, and a later run
    /// can recover them with [`crate::Checkpoint::load_dir`] even after a
    /// hard master kill.
    pub checkpoint: Option<CheckpointPolicy>,
}

impl Deployment {
    /// A small local deployment: `slaves` nodes x `threads` computing
    /// threads, fully dynamic scheduling, generous timeouts.
    pub fn local(slaves: usize, threads: usize) -> Self {
        // The canonical policy durations live in [`SchedParams`]; the
        // deployment defaults are that one source of truth, not a second
        // set of literals that could drift from the simulator's.
        let p = SchedParams::default();
        Self {
            slaves,
            threads_per_slave: threads,
            process_mode: ScheduleMode::Dynamic,
            thread_mode: ScheduleMode::Dynamic,
            task_timeout: p.task_timeout,
            ft_poll: p.ft_poll,
            retry: RetryPolicy::default(),
            heartbeat_interval: p.heartbeat_interval,
            heartbeat_timeout: p.heartbeat_timeout,
            obs: ObsConfig::default(),
            checkpoint: None,
        }
    }

    /// This deployment's scheduling-policy constants as the shared
    /// [`SchedParams`] every scheduler driver consumes — the four knobs a
    /// deployment can override, over the shared defaults for the rest.
    pub fn sched_params(&self) -> SchedParams {
        SchedParams {
            task_timeout: self.task_timeout,
            ft_poll: self.ft_poll,
            heartbeat_interval: self.heartbeat_interval,
            heartbeat_timeout: self.heartbeat_timeout,
            ..SchedParams::default()
        }
    }

    /// Total cores this deployment would occupy on the paper's accounting
    /// (`N + (N-1) + ct*(N-1)` for `N` nodes): the master scheduling core,
    /// plus per slave node one process-level core, one thread-level
    /// scheduling core and `ct` computing cores —
    /// `1 + slaves * (2 + ct)`.
    pub fn total_cores(&self) -> usize {
        1 + self.slaves * (2 + self.threads_per_slave)
    }
}

/// Master-side counters for one run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MasterStats {
    /// Sub-tasks dispatched (including re-dispatches).
    pub dispatched: u64,
    /// Sub-tasks re-dispatched after a timeout.
    pub redispatched: u64,
    /// Completions accepted (folds in resumed tiles so budget/DAG
    /// accounting stays whole-run).
    pub completed: u64,
    /// Sub-tasks restored from a checkpoint instead of being dispatched
    /// (also counted in `completed`). Lets conservation be checked on
    /// full runs: `dispatched == completed + redispatched - resumed`.
    pub resumed: u64,
    /// Stale completions ignored (duplicate results after redistribution).
    pub stale_completions: u64,
    /// Slaves declared dead by fault tolerance.
    pub dead_slaves: u64,
    /// Dead-marked slaves re-admitted after a fresh heartbeat proved them
    /// alive (wrong exclusions undone).
    pub readmitted: u64,
    /// Slave incarnations re-admitted under a new fleet epoch (reconnect
    /// with a fresh session, or a mid-run joiner growing the fleet).
    pub rejoins: u64,
    /// Completions rejected because their echoed epoch predated the
    /// slave's current incarnation (zombie DONEs fenced out).
    pub stale_epoch_rejected: u64,
    /// Control-message retransmissions by the master's reliable endpoint.
    pub retransmits: u64,
    /// Duplicate deliveries suppressed by the master's reliable endpoint.
    pub duplicates: u64,
    /// Reliable sends the master abandoned (retry budget exhausted or
    /// peer unreachable).
    pub send_failures: u64,
    /// Messages sent by the master endpoint.
    pub msgs_sent: u64,
    /// Bytes sent by the master endpoint.
    pub bytes_sent: u64,
    /// Messages received by the master endpoint.
    pub msgs_recv: u64,
    /// Bytes received by the master endpoint.
    pub bytes_recv: u64,
}

/// Full report of one runtime execution.
#[derive(Clone, Debug, Default)]
pub struct RunReport {
    /// Wall-clock duration of the run (master side).
    pub elapsed: Duration,
    /// Master counters.
    pub master: MasterStats,
    /// Per-slave stats (indexed by slave; dead slaves report `None`).
    pub slaves: Vec<Option<SlaveStatsMsg>>,
    /// Master-observed schedule (one span per tile execution, lane per
    /// slave); render with [`easyhps_core::Trace::gantt`].
    pub trace: easyhps_core::Trace,
}

impl RunReport {
    /// Total thread-level sub-sub-tasks completed across surviving slaves.
    pub fn total_subtasks(&self) -> u64 {
        self.slaves.iter().flatten().map(|s| s.subtasks_done).sum()
    }

    /// Total compute-busy nanoseconds across surviving slaves.
    pub fn total_busy_ns(&self) -> u64 {
        self.slaves.iter().flatten().map(|s| s.busy_ns).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn core_accounting_matches_paper_formula() {
        // Paper: N nodes deployed => N + (N-1) + ct*(N-1) cores, where the
        // first N are process-level schedulers (one of which is the
        // master). With slaves = N-1 this is 1 + slaves*(1 + ct).
        let d = Deployment::local(4, 11);
        assert_eq!(d.total_cores(), 53); // N=5 nodes: 5 + 4 + 44
        let d = Deployment::local(1, 1);
        assert_eq!(d.total_cores(), 4); // N=2 nodes: 2 + 1 + 1 (Experiment_2_4)
    }

    #[test]
    fn report_aggregates() {
        let r = RunReport {
            slaves: vec![
                Some(SlaveStatsMsg {
                    tasks_done: 2,
                    subtasks_done: 10,
                    busy_ns: 100,
                    ..Default::default()
                }),
                None,
                Some(SlaveStatsMsg {
                    tasks_done: 1,
                    subtasks_done: 5,
                    busy_ns: 50,
                    thread_failures: 1,
                    ..Default::default()
                }),
            ],
            ..RunReport::default()
        };
        assert_eq!(r.total_subtasks(), 15);
        assert_eq!(r.total_busy_ns(), 150);
    }
}
