//! The scheduler core, re-exported from `easyhps_core::sched`.
//!
//! The state machines live in the core crate because `easyhps-runtime`
//! depends on `easyhps-sim` (autotuner pricing), so the simulator cannot
//! depend on the runtime — the core is the one crate below both
//! executors. This module is the runtime's view of them, plus the glue
//! that maps transport types into the machine's transport-free
//! vocabulary.

pub use easyhps_core::sched::*;

use easyhps_net::FailReason;

/// Map a transport failure reason onto the machine's vocabulary.
pub fn fail_kind(reason: FailReason) -> SendFailKind {
    match reason {
        FailReason::Unreachable => SendFailKind::Unreachable,
        FailReason::NoAck => SendFailKind::NoAck,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fail_reasons_map_onto_machine_vocabulary() {
        assert_eq!(
            fail_kind(FailReason::Unreachable),
            SendFailKind::Unreachable
        );
        assert_eq!(fail_kind(FailReason::NoAck), SendFailKind::NoAck);
    }
}
