//! Durable incremental checkpointing.
//!
//! The in-memory [`Checkpoint`](crate::Checkpoint) survives a *graceful*
//! stop (tile budget, caller-driven restart) but dies with the master
//! process. This module puts the checkpoint on disk, incrementally, so a
//! hard master kill loses at most the tiles accepted since the last
//! capture:
//!
//! * The master appends **segment files** (`seg-00000000.bin`,
//!   `seg-00000001.bin`, …) to a checkpoint directory. Each segment
//!   carries only the tiles finished since the previous capture, so
//!   capture cost is proportional to recent progress, not to the whole
//!   matrix, and stays off the DONE hot path (capture cadence is set by
//!   [`CheckpointPolicy`], not by message arrival).
//! * Every segment is covered by a CRC-32C in its header; a torn or
//!   bit-rotted tail (the segment being written when the master died) is
//!   detected on load and discarded together with everything after it —
//!   prefix-consistency, the standard write-ahead-log rule.
//! * A small **manifest** (`MANIFEST`) names the live segments and the
//!   matrix extent. It is replaced atomically (write `MANIFEST.tmp`,
//!   fsync, rename) so a crash mid-update leaves either the old or the
//!   new manifest, never a half-written one. Loading works even with no
//!   manifest at all by probing consecutive segment indices from zero.
//! * When the directory accumulates more than
//!   [`CheckpointPolicy::compact_after`] live segments, the store merges
//!   them into one fresh segment and deletes the originals, bounding both
//!   file count and replay time.
//!
//! On restart, [`Checkpoint::load_dir`] replays the segments (manifest
//! order first, then any appended tail), merges entries first-wins by
//! vertex id, validates the merged set with the same structural checks as
//! [`Checkpoint::from_bytes`], and hands the result to the existing
//! resume path.

use crate::checkpoint::validate_entries;
use crate::error::RuntimeError;
use crate::Checkpoint;
use easyhps_core::TileRegion;
use easyhps_net::{crc32c, WireReader, WireWriter};
use std::collections::HashSet;
use std::fs;
use std::io::Write;
use std::path::{Path, PathBuf};
use std::time::Duration;

/// Magic header of a segment file.
const MAGIC_SEG: u32 = 0x4853_4547; // "GESH"
/// Magic header of the manifest.
const MAGIC_MAN: u32 = 0x484E_414D; // "MANH"
/// Manifest file name inside the checkpoint directory.
const MANIFEST: &str = "MANIFEST";

/// When and where the master captures durable checkpoints.
///
/// Both triggers are evaluated *between* scheduler iterations, never while
/// a DONE message is being accepted: a capture flushes the tiles accepted
/// since the previous one, so raising the thresholds trades re-computed
/// work after a crash against capture overhead during the run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CheckpointPolicy {
    /// Directory holding segments and manifest. Created if missing.
    pub dir: PathBuf,
    /// Capture after this many newly accepted tiles (0 disables the
    /// tile-count trigger).
    pub every_tiles: u64,
    /// Also capture when this much time passed since the last capture and
    /// at least one new tile was accepted (`None` disables).
    pub every: Option<Duration>,
    /// Merge live segments into one once more than this many accumulate.
    pub compact_after: usize,
}

impl CheckpointPolicy {
    /// Policy writing to `dir` with the defaults: capture every 32 tiles,
    /// no time trigger, compact beyond 8 live segments.
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        Self {
            dir: dir.into(),
            every_tiles: 32,
            every: None,
            compact_after: 8,
        }
    }

    /// Capture after `n` newly accepted tiles (0 disables this trigger).
    pub fn with_every_tiles(mut self, n: u64) -> Self {
        self.every_tiles = n;
        self
    }

    /// Also capture whenever `d` elapsed since the last capture.
    pub fn with_interval(mut self, d: Duration) -> Self {
        self.every = Some(d);
        self
    }

    /// Compact once more than `n` live segments accumulate.
    pub fn with_compact_after(mut self, n: usize) -> Self {
        self.compact_after = n;
        self
    }
}

/// Entries recorded in a segment: `(dense id, region, cells)`.
type Entries = Vec<(u32, TileRegion, Vec<u8>)>;

/// What a directory scan recovered.
struct ScannedDir {
    rows: u32,
    cols: u32,
    /// Merged entries, first-wins by vertex id, torn tail discarded.
    entries: Entries,
    /// Segments that replayed cleanly, in logical order.
    live_segs: Vec<u64>,
    /// One past the highest segment index *seen* (valid or torn), so new
    /// appends never collide with a leftover file.
    next_seg: u64,
}

fn seg_path(dir: &Path, idx: u64) -> PathBuf {
    dir.join(format!("seg-{idx:08}.bin"))
}

fn io_err(what: &str, path: &Path, e: std::io::Error) -> RuntimeError {
    RuntimeError::Checkpoint(format!("{what} {}: {e}", path.display()))
}

/// Frame a body as `[magic][crc32c(body)][len][body]` — shared by
/// segments and the manifest.
fn frame_file(magic: u32, body: &[u8]) -> Vec<u8> {
    let mut w = WireWriter::with_capacity(12 + body.len());
    w.put_u32(magic).put_u32(crc32c(body)).put_bytes(body);
    w.finish().to_vec()
}

/// Open a framed file; `Err(())` means missing, torn or corrupt —
/// indistinguishable on purpose, the caller treats all three as "not
/// there".
fn read_framed(path: &Path, magic: u32) -> Result<Vec<u8>, ()> {
    let buf = fs::read(path).map_err(|_| ())?;
    let mut r = WireReader::new(&buf);
    if r.get_u32().map_err(|_| ())? != magic {
        return Err(());
    }
    let crc = r.get_u32().map_err(|_| ())?;
    let body = r.get_bytes().map_err(|_| ())?;
    r.expect_end().map_err(|_| ())?;
    if crc32c(&body) != crc {
        return Err(());
    }
    Ok(body)
}

/// Write `bytes` to `path` via a temp file + atomic rename, fsyncing the
/// data before the rename so the final name never points at a torn file.
pub(crate) fn write_atomic(path: &Path, bytes: &[u8]) -> Result<(), RuntimeError> {
    let tmp = path.with_extension("tmp");
    let mut f = fs::File::create(&tmp).map_err(|e| io_err("create", &tmp, e))?;
    f.write_all(bytes).map_err(|e| io_err("write", &tmp, e))?;
    f.sync_all().map_err(|e| io_err("sync", &tmp, e))?;
    drop(f);
    fs::rename(&tmp, path).map_err(|e| io_err("rename", &tmp, e))
}

fn encode_entries_body(rows: u32, cols: u32, entries: &[(u32, TileRegion, Vec<u8>)]) -> Vec<u8> {
    let payload: usize = entries.iter().map(|(_, _, b)| b.len() + 24).sum();
    let mut w = WireWriter::with_capacity(12 + payload);
    w.put_u32(rows).put_u32(cols);
    w.put_u32(entries.len() as u32);
    for (id, region, bytes) in entries {
        w.put_u32(*id)
            .put_u32(region.row_start)
            .put_u32(region.row_end)
            .put_u32(region.col_start)
            .put_u32(region.col_end)
            .put_bytes(bytes);
    }
    w.finish().to_vec()
}

/// Decode a segment body (dims + entries). Per-entry structural
/// validation happens later on the *merged* set; here only the shape and
/// a sane entry count are enforced.
fn decode_entries_body(body: &[u8]) -> Result<(u32, u32, Entries), ()> {
    let mut r = WireReader::new(body);
    let rows = r.get_u32().map_err(|_| ())?;
    let cols = r.get_u32().map_err(|_| ())?;
    let n = r.get_u32().map_err(|_| ())?;
    if n as u64 * 24 > r.remaining() as u64 {
        return Err(());
    }
    let mut entries = Vec::with_capacity(n as usize);
    for _ in 0..n {
        let id = r.get_u32().map_err(|_| ())?;
        let region = TileRegion::new(
            r.get_u32().map_err(|_| ())?,
            r.get_u32().map_err(|_| ())?,
            r.get_u32().map_err(|_| ())?,
            r.get_u32().map_err(|_| ())?,
        );
        let bytes = r.get_bytes().map_err(|_| ())?;
        entries.push((id, region, bytes));
    }
    r.expect_end().map_err(|_| ())?;
    Ok((rows, cols, entries))
}

fn read_segment(path: &Path) -> Result<(u32, u32, Entries), ()> {
    decode_entries_body(&read_framed(path, MAGIC_SEG)?)
}

/// Manifest body: dims + the live segment indices in logical order.
fn read_manifest(dir: &Path) -> Option<(u32, u32, Vec<u64>)> {
    let body = read_framed(&dir.join(MANIFEST), MAGIC_MAN).ok()?;
    let mut r = WireReader::new(&body);
    let rows = r.get_u32().ok()?;
    let cols = r.get_u32().ok()?;
    let n = r.get_u32().ok()?;
    if n as u64 * 8 > r.remaining() as u64 {
        return None;
    }
    let mut segs = Vec::with_capacity(n as usize);
    for _ in 0..n {
        segs.push(r.get_u64().ok()?);
    }
    r.expect_end().ok()?;
    Some((rows, cols, segs))
}

/// Replay a checkpoint directory. `Ok(None)` means "no store here" (the
/// directory is missing or holds neither manifest nor segments). A torn
/// or corrupt segment discards itself and every later segment; it is
/// *not* an error — that is the expected state after a mid-write crash.
fn scan_dir(dir: &Path) -> Result<Option<ScannedDir>, RuntimeError> {
    if !dir.exists() {
        return Ok(None);
    }
    let manifest = read_manifest(dir);
    let (mut dims, listed) = match &manifest {
        Some((r, c, segs)) => (Some((*r, *c)), segs.clone()),
        None => (None, Vec::new()),
    };
    // Logical order: manifest-listed segments first, then any segments
    // appended after the manifest was last written (tail probe).
    let mut order = listed;
    let mut probe = order.iter().copied().max().map_or(0, |m| m + 1);
    while seg_path(dir, probe).exists() {
        order.push(probe);
        probe += 1;
    }
    if manifest.is_none() && order.is_empty() {
        return Ok(None);
    }
    let next_seg = order.iter().copied().max().map_or(0, |m| m + 1);

    let mut entries: Entries = Vec::new();
    let mut seen: HashSet<u32> = HashSet::new();
    let mut live_segs = Vec::new();
    for idx in &order {
        match read_segment(&seg_path(dir, *idx)) {
            Ok((rows, cols, segs)) => {
                if dims.is_some_and(|d| d != (rows, cols)) {
                    // A segment for a different matrix cannot belong to
                    // this run's tail — stop replaying here.
                    break;
                }
                dims = Some((rows, cols));
                live_segs.push(*idx);
                for e in segs {
                    // First-wins: a tile can be re-flushed after a
                    // compaction race, the earliest copy is authoritative.
                    if seen.insert(e.0) {
                        entries.push(e);
                    }
                }
            }
            Err(()) => break, // torn tail: discard this and all later
        }
    }
    let Some((rows, cols)) = dims else {
        // Segments existed but none replayed cleanly and there was no
        // manifest to recover dims from: nothing usable.
        return Ok(None);
    };
    Ok(Some(ScannedDir {
        rows,
        cols,
        entries,
        live_segs,
        next_seg,
    }))
}

impl Checkpoint {
    /// Load a durable checkpoint directory written by a previous run.
    ///
    /// Returns `Ok(None)` when the directory does not exist or holds no
    /// store. Torn or corrupt trailing segments are silently discarded
    /// (that is the normal post-crash state); an *internally
    /// inconsistent* surviving prefix — duplicate ids across segments
    /// resolve first-wins, but overlapping regions or out-of-matrix data
    /// do not — is an error.
    pub fn load_dir(dir: impl AsRef<Path>) -> Result<Option<Self>, RuntimeError> {
        let dir = dir.as_ref();
        match scan_dir(dir)? {
            None => Ok(None),
            Some(s) => Checkpoint::from_parts(s.rows, s.cols, s.entries)
                .map(Some)
                .map_err(|e| {
                    RuntimeError::Checkpoint(format!("checkpoint dir {}: {e}", dir.display()))
                }),
        }
    }
}

/// The master's handle on an open checkpoint directory.
#[derive(Debug)]
pub(crate) struct CheckpointStore {
    dir: PathBuf,
    rows: u32,
    cols: u32,
    next_seg: u64,
    live_segs: Vec<u64>,
    /// Ids already durable on disk — appends filter against this so a
    /// resumed run never re-writes tiles the directory already holds.
    durable: HashSet<u32>,
    compact_after: usize,
}

impl CheckpointStore {
    /// Open (creating if needed) the store at `policy.dir` for a matrix
    /// of `rows x cols`. `resuming` says whether the caller is feeding a
    /// resume checkpoint to the master: a directory holding prior
    /// progress is an error otherwise, so a typo'd `--checkpoint-dir`
    /// cannot silently interleave two different runs.
    pub(crate) fn open(
        policy: &CheckpointPolicy,
        rows: u32,
        cols: u32,
        resuming: bool,
    ) -> Result<Self, RuntimeError> {
        let dir = policy.dir.clone();
        fs::create_dir_all(&dir).map_err(|e| io_err("create dir", &dir, e))?;
        let scanned = scan_dir(&dir)?;
        let mut store = Self {
            dir: dir.clone(),
            rows,
            cols,
            next_seg: 0,
            live_segs: Vec::new(),
            durable: HashSet::new(),
            compact_after: policy.compact_after.max(1),
        };
        if let Some(s) = scanned {
            if (s.rows, s.cols) != (rows, cols) {
                return Err(RuntimeError::Checkpoint(format!(
                    "checkpoint dir {} was written for a {}x{} matrix, this run is {}x{}",
                    dir.display(),
                    s.rows,
                    s.cols,
                    rows,
                    cols
                )));
            }
            if !resuming && !s.entries.is_empty() {
                return Err(RuntimeError::Checkpoint(format!(
                    "checkpoint dir {} already holds {} finished tile(s) from a previous run; \
                     pass --resume to continue that run, or point --checkpoint-dir at a fresh \
                     (empty) directory to start over",
                    dir.display(),
                    s.entries.len()
                )));
            }
            validate_entries(rows, cols, &s.entries).map_err(|e| {
                RuntimeError::Checkpoint(format!("checkpoint dir {}: {e}", dir.display()))
            })?;
            store.next_seg = s.next_seg;
            store.live_segs = s.live_segs;
            store.durable = s.entries.iter().map(|(id, _, _)| *id).collect();
            store.cleanup_stale();
        }
        Ok(store)
    }

    /// Whether `id` is already durable on disk.
    pub(crate) fn is_durable(&self, id: u32) -> bool {
        self.durable.contains(&id)
    }

    /// Append `entries` as one new segment, then update the manifest and
    /// compact if the policy says so. Entries already durable are skipped.
    /// Returns the number of segment bytes written (0 = nothing new).
    pub(crate) fn append(
        &mut self,
        entries: &[(u32, TileRegion, Vec<u8>)],
    ) -> Result<u64, RuntimeError> {
        let fresh: Vec<_> = entries
            .iter()
            .filter(|(id, _, _)| !self.durable.contains(id))
            .cloned()
            .collect();
        if fresh.is_empty() {
            return Ok(0);
        }
        let body = encode_entries_body(self.rows, self.cols, &fresh);
        let file = frame_file(MAGIC_SEG, &body);
        let idx = self.next_seg;
        let path = seg_path(&self.dir, idx);
        // The segment itself goes through the same fsync'd temp-file
        // rename as the manifest: the WAL rule only needs the *tail* to
        // be detectably torn, but atomic publication means a crash
        // mid-capture leaves no file at all rather than a torn one, so
        // the next append never has to skip an index.
        write_atomic(&path, &file)?;
        self.next_seg += 1;
        self.live_segs.push(idx);
        self.durable.extend(fresh.iter().map(|(id, _, _)| *id));
        self.write_manifest()?;
        if self.live_segs.len() > self.compact_after {
            self.compact()?;
        }
        Ok(file.len() as u64)
    }

    /// Merge every live segment into one and delete the originals.
    fn compact(&mut self) -> Result<(), RuntimeError> {
        let mut entries: Entries = Vec::new();
        let mut seen: HashSet<u32> = HashSet::new();
        for idx in &self.live_segs {
            let path = seg_path(&self.dir, *idx);
            let (_, _, segs) = read_segment(&path).map_err(|()| {
                RuntimeError::Checkpoint(format!(
                    "compaction re-read failed for {}",
                    path.display()
                ))
            })?;
            for e in segs {
                if seen.insert(e.0) {
                    entries.push(e);
                }
            }
        }
        let body = encode_entries_body(self.rows, self.cols, &entries);
        let idx = self.next_seg;
        write_atomic(&seg_path(&self.dir, idx), &frame_file(MAGIC_SEG, &body))?;
        self.next_seg += 1;
        let old = std::mem::replace(&mut self.live_segs, vec![idx]);
        // Publish the new manifest before deleting the merged inputs: a
        // crash between the two steps leaves extra files, never data loss.
        self.write_manifest()?;
        for i in old {
            let _ = fs::remove_file(seg_path(&self.dir, i));
        }
        Ok(())
    }

    fn write_manifest(&self) -> Result<(), RuntimeError> {
        let mut w = WireWriter::with_capacity(12 + self.live_segs.len() * 8);
        w.put_u32(self.rows).put_u32(self.cols);
        w.put_u32(self.live_segs.len() as u32);
        for idx in &self.live_segs {
            w.put_u64(*idx);
        }
        let body = w.finish().to_vec();
        write_atomic(&self.dir.join(MANIFEST), &frame_file(MAGIC_MAN, &body))
    }

    /// Delete segment files the scan discarded (torn tails from a
    /// previous crash, leftovers of an interrupted compaction). Only
    /// called from the write path — `load_dir` never mutates the
    /// directory.
    fn cleanup_stale(&self) {
        let live: HashSet<u64> = self.live_segs.iter().copied().collect();
        for idx in 0..self.next_seg {
            if !live.contains(&idx) {
                let _ = fs::remove_file(seg_path(&self.dir, idx));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn tmp_dir(tag: &str) -> PathBuf {
        static NONCE: AtomicU64 = AtomicU64::new(0);
        let n = NONCE.fetch_add(1, Ordering::Relaxed);
        std::env::temp_dir().join(format!("easyhps-durable-{tag}-{}-{n}", std::process::id()))
    }

    fn entry(id: u32, r0: u32, r1: u32, c0: u32, c1: u32) -> (u32, TileRegion, Vec<u8>) {
        let region = TileRegion::new(r0, r1, c0, c1);
        let area = ((r1 - r0) * (c1 - c0)) as usize;
        (id, region, vec![id as u8; area * 4])
    }

    #[test]
    fn append_load_roundtrip_and_incremental_merge() {
        let dir = tmp_dir("roundtrip");
        let pol = CheckpointPolicy::new(&dir);
        let mut st = CheckpointStore::open(&pol, 8, 8, false).unwrap();
        assert!(
            st.append(&[entry(0, 0, 2, 0, 2), entry(1, 0, 2, 2, 4)])
                .unwrap()
                > 0
        );
        assert!(st.append(&[entry(2, 2, 4, 0, 2)]).unwrap() > 0);
        // Already-durable ids are filtered out.
        assert_eq!(st.append(&[entry(1, 0, 2, 2, 4)]).unwrap(), 0);
        drop(st);

        let cp = Checkpoint::load_dir(&dir).unwrap().unwrap();
        assert_eq!(cp.extent(), (8, 8));
        assert_eq!(cp.finished_len(), 3);
        let ids: Vec<u32> = cp.finished_tasks().map(|v| v.0).collect();
        assert_eq!(ids, vec![0, 1, 2]);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn missing_dir_is_none() {
        assert_eq!(Checkpoint::load_dir(tmp_dir("missing")).unwrap(), None);
    }

    #[test]
    fn torn_tail_is_discarded_but_prefix_survives() {
        let dir = tmp_dir("torn");
        let pol = CheckpointPolicy::new(&dir);
        let mut st = CheckpointStore::open(&pol, 8, 8, false).unwrap();
        st.append(&[entry(0, 0, 2, 0, 2)]).unwrap();
        st.append(&[entry(1, 0, 2, 2, 4)]).unwrap();
        drop(st);
        // Tear the last segment: truncate it to half length.
        let last = seg_path(&dir, 1);
        let bytes = fs::read(&last).unwrap();
        fs::write(&last, &bytes[..bytes.len() / 2]).unwrap();

        let cp = Checkpoint::load_dir(&dir).unwrap().unwrap();
        assert_eq!(cp.finished_len(), 1);
        assert_eq!(cp.finished_tasks().next().unwrap().0, 0);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_middle_segment_discards_it_and_everything_after() {
        let dir = tmp_dir("midcorrupt");
        let pol = CheckpointPolicy::new(&dir);
        let mut st = CheckpointStore::open(&pol, 8, 8, false).unwrap();
        st.append(&[entry(0, 0, 2, 0, 2)]).unwrap();
        st.append(&[entry(1, 0, 2, 2, 4)]).unwrap();
        st.append(&[entry(2, 2, 4, 0, 2)]).unwrap();
        drop(st);
        // Flip a payload bit in the middle segment.
        let mid = seg_path(&dir, 1);
        let mut bytes = fs::read(&mid).unwrap();
        let n = bytes.len();
        bytes[n - 1] ^= 0x01;
        fs::write(&mid, &bytes).unwrap();

        let cp = Checkpoint::load_dir(&dir).unwrap().unwrap();
        assert_eq!(
            cp.finished_len(),
            1,
            "prefix before the corruption survives"
        );
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn loads_without_manifest_by_probing_indices() {
        let dir = tmp_dir("noman");
        let pol = CheckpointPolicy::new(&dir);
        let mut st = CheckpointStore::open(&pol, 8, 8, false).unwrap();
        st.append(&[entry(0, 0, 2, 0, 2)]).unwrap();
        st.append(&[entry(1, 0, 2, 2, 4)]).unwrap();
        drop(st);
        fs::remove_file(dir.join(MANIFEST)).unwrap();

        let cp = Checkpoint::load_dir(&dir).unwrap().unwrap();
        assert_eq!(cp.finished_len(), 2);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn compaction_merges_segments_and_keeps_data() {
        let dir = tmp_dir("compact");
        let pol = CheckpointPolicy::new(&dir).with_compact_after(2);
        let mut st = CheckpointStore::open(&pol, 8, 8, false).unwrap();
        st.append(&[entry(0, 0, 2, 0, 2)]).unwrap();
        st.append(&[entry(1, 0, 2, 2, 4)]).unwrap();
        st.append(&[entry(2, 2, 4, 0, 2)]).unwrap(); // triggers compaction
        assert_eq!(st.live_segs.len(), 1, "three segments merged into one");
        st.append(&[entry(3, 2, 4, 2, 4)]).unwrap();
        drop(st);

        let files: Vec<_> = fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.file_name().to_string_lossy().starts_with("seg-"))
            .collect();
        assert_eq!(files.len(), 2, "compacted segment + one fresh append");

        let cp = Checkpoint::load_dir(&dir).unwrap().unwrap();
        assert_eq!(cp.finished_len(), 4);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn dirty_dir_requires_resume() {
        let dir = tmp_dir("dirty");
        let pol = CheckpointPolicy::new(&dir);
        let mut st = CheckpointStore::open(&pol, 8, 8, false).unwrap();
        st.append(&[entry(0, 0, 2, 0, 2)]).unwrap();
        drop(st);
        let err = CheckpointStore::open(&pol, 8, 8, false).unwrap_err();
        assert!(matches!(err, RuntimeError::Checkpoint(_)), "{err}");
        // With resuming=true the same directory opens fine and knows its
        // durable ids.
        let st = CheckpointStore::open(&pol, 8, 8, true).unwrap();
        assert!(st.is_durable(0));
        assert!(!st.is_durable(1));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn dims_mismatch_is_rejected() {
        let dir = tmp_dir("dims");
        let pol = CheckpointPolicy::new(&dir);
        let mut st = CheckpointStore::open(&pol, 8, 8, false).unwrap();
        st.append(&[entry(0, 0, 2, 0, 2)]).unwrap();
        drop(st);
        let err = CheckpointStore::open(&pol, 9, 9, true).unwrap_err();
        assert!(matches!(err, RuntimeError::Checkpoint(_)), "{err}");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_tail_index_is_never_reused() {
        let dir = tmp_dir("reuse");
        let pol = CheckpointPolicy::new(&dir);
        let mut st = CheckpointStore::open(&pol, 8, 8, false).unwrap();
        st.append(&[entry(0, 0, 2, 0, 2)]).unwrap();
        st.append(&[entry(1, 0, 2, 2, 4)]).unwrap();
        drop(st);
        let last = seg_path(&dir, 1);
        let bytes = fs::read(&last).unwrap();
        fs::write(&last, &bytes[..10]).unwrap();

        // Reopen for resume: torn seg 1 is discarded AND deleted; the
        // next append must land on index 2, not overwrite history ranges.
        let mut st = CheckpointStore::open(&pol, 8, 8, true).unwrap();
        assert!(!st.is_durable(1));
        st.append(&[entry(1, 0, 2, 2, 4)]).unwrap();
        assert!(!seg_path(&dir, 1).exists(), "stale torn file cleaned up");
        assert!(seg_path(&dir, 2).exists(), "append skipped the torn index");

        let cp = Checkpoint::load_dir(&dir).unwrap().unwrap();
        assert_eq!(cp.finished_len(), 2);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn overlapping_segments_are_an_error_not_a_panic() {
        let dir = tmp_dir("overlap");
        fs::create_dir_all(&dir).unwrap();
        // Hand-craft two valid segments whose regions overlap.
        let s0 = frame_file(
            MAGIC_SEG,
            &encode_entries_body(8, 8, &[entry(0, 0, 2, 0, 2)]),
        );
        let s1 = frame_file(
            MAGIC_SEG,
            &encode_entries_body(8, 8, &[entry(1, 1, 3, 1, 3)]),
        );
        fs::write(seg_path(&dir, 0), s0).unwrap();
        fs::write(seg_path(&dir, 1), s1).unwrap();
        let err = Checkpoint::load_dir(&dir).unwrap_err();
        assert!(matches!(err, RuntimeError::Checkpoint(_)), "{err}");
        fs::remove_dir_all(&dir).unwrap();
    }
}
