//! Test utilities: deterministic failure injection at the kernel level.

use easyhps_core::{DagPattern, GridDims, GridPos, TileRegion};
use easyhps_dp::{DpGrid, DpProblem};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Wraps a problem so that a chosen number of `compute_region` calls panic
/// before succeeding — simulating computing-thread crashes that the
/// thread-level fault tolerance must absorb.
///
/// Panics are injected on the first `failures` kernel invocations
/// (globally, across threads), after which everything succeeds; since the
/// runtime re-queues failed sub-sub-tasks, the final matrix must still be
/// correct.
pub struct FaultyProblem<P> {
    inner: P,
    remaining: Arc<AtomicU64>,
}

impl<P: DpProblem> FaultyProblem<P> {
    /// Make the first `failures` kernel calls panic.
    pub fn new(inner: P, failures: u64) -> Self {
        Self {
            inner,
            remaining: Arc::new(AtomicU64::new(failures)),
        }
    }

    /// How many injected failures have not fired yet.
    pub fn failures_left(&self) -> u64 {
        self.remaining.load(Ordering::Relaxed)
    }

    /// The wrapped problem.
    pub fn inner(&self) -> &P {
        &self.inner
    }
}

impl<P: DpProblem> DpProblem for FaultyProblem<P> {
    type Cell = P::Cell;

    fn name(&self) -> String {
        format!("faulty({})", self.inner.name())
    }

    fn dims(&self) -> GridDims {
        self.inner.dims()
    }

    fn pattern(&self) -> Arc<dyn DagPattern> {
        self.inner.pattern()
    }

    fn compute_region<G: DpGrid<Self::Cell>>(&self, m: &mut G, region: TileRegion) {
        let prev = self
            .remaining
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| v.checked_sub(1))
            .unwrap_or(0);
        if prev > 0 {
            panic!("injected kernel failure ({} remaining)", prev - 1);
        }
        self.inner.compute_region(m, region);
    }

    fn cell_work(&self, p: GridPos) -> u64 {
        self.inner.cell_work(p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use easyhps_dp::{DpMatrix, EditDistance};

    #[test]
    fn injected_failures_then_success() {
        let p = FaultyProblem::new(EditDistance::new(b"ab".to_vec(), b"ab".to_vec()), 2);
        let dims = p.dims();
        let mut m = DpMatrix::new(dims);
        let region = TileRegion::new(0, dims.rows, 0, dims.cols);
        for _ in 0..2 {
            let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                p.compute_region(&mut m, region);
            }));
            assert!(r.is_err());
        }
        assert_eq!(p.failures_left(), 0);
        p.compute_region(&mut m, region);
        assert_eq!(m.get(2, 2), 0);
    }
}
