//! Test utilities: deterministic failure injection at the kernel level.

use easyhps_core::{DagPattern, GridDims, GridPos, TileRegion};
use easyhps_dp::{DpGrid, DpProblem};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Wraps a problem so that a chosen number of `compute_region` calls panic
/// before succeeding — simulating computing-thread crashes that the
/// thread-level fault tolerance must absorb.
///
/// Panics are injected on the first `failures` kernel invocations
/// (globally, across threads), after which everything succeeds; since the
/// runtime re-queues failed sub-sub-tasks, the final matrix must still be
/// correct.
pub struct FaultyProblem<P> {
    inner: P,
    remaining: Arc<AtomicU64>,
}

impl<P: DpProblem> FaultyProblem<P> {
    /// Make the first `failures` kernel calls panic.
    pub fn new(inner: P, failures: u64) -> Self {
        Self {
            inner,
            remaining: Arc::new(AtomicU64::new(failures)),
        }
    }

    /// How many injected failures have not fired yet.
    pub fn failures_left(&self) -> u64 {
        self.remaining.load(Ordering::Relaxed)
    }

    /// The wrapped problem.
    pub fn inner(&self) -> &P {
        &self.inner
    }
}

impl<P: DpProblem> DpProblem for FaultyProblem<P> {
    type Cell = P::Cell;

    fn name(&self) -> String {
        format!("faulty({})", self.inner.name())
    }

    fn dims(&self) -> GridDims {
        self.inner.dims()
    }

    fn pattern(&self) -> Arc<dyn DagPattern> {
        self.inner.pattern()
    }

    fn compute_region<G: DpGrid<Self::Cell>>(&self, m: &mut G, region: TileRegion) {
        let prev = self
            .remaining
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| v.checked_sub(1))
            .unwrap_or(0);
        if prev > 0 {
            panic!("injected kernel failure ({} remaining)", prev - 1);
        }
        self.inner.compute_region(m, region);
    }

    fn cell_work(&self, p: GridPos) -> u64 {
        self.inner.cell_work(p)
    }
}

/// Wraps a problem so that a seeded subset of `compute_region` calls
/// stalls (sleeps) before computing — simulating slow kernels, GC pauses
/// or a frozen node without touching the result.
///
/// Each kernel invocation gets a global call index; whether that call
/// stalls is a pure hash of `(seed, index)`, so the *set* of stalled call
/// indices is deterministic even though threads race for indices. Pair a
/// stall longer than `task_timeout` with heartbeat starvation (see
/// `FaultPlan::with_tag_drop`) to drive the exclusion/re-admission paths.
pub struct StallProblem<P> {
    inner: P,
    calls: Arc<AtomicU64>,
    fired: Arc<AtomicU64>,
    seed: u64,
    /// Per-call stall probability in permille (0..=1000).
    stall_permille: u32,
    stall: std::time::Duration,
}

/// SplitMix64 finalizer: a cheap, well-mixed pure hash.
fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e3779b97f4a7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d049bb133111eb);
    x ^ (x >> 31)
}

impl<P: DpProblem> StallProblem<P> {
    /// Stall each kernel call with probability `stall_permille`/1000 for
    /// `stall`; decisions derive from `seed`.
    pub fn new(inner: P, seed: u64, stall_permille: u32, stall: std::time::Duration) -> Self {
        assert!(stall_permille <= 1000, "permille out of range");
        Self {
            inner,
            calls: Arc::new(AtomicU64::new(0)),
            fired: Arc::new(AtomicU64::new(0)),
            seed,
            stall_permille,
            stall,
        }
    }

    /// How many stalls actually fired.
    pub fn stalls_fired(&self) -> u64 {
        self.fired.load(Ordering::Relaxed)
    }

    /// The wrapped problem.
    pub fn inner(&self) -> &P {
        &self.inner
    }
}

impl<P: DpProblem> DpProblem for StallProblem<P> {
    type Cell = P::Cell;

    fn name(&self) -> String {
        format!("stall({})", self.inner.name())
    }

    fn dims(&self) -> GridDims {
        self.inner.dims()
    }

    fn pattern(&self) -> Arc<dyn DagPattern> {
        self.inner.pattern()
    }

    fn compute_region<G: DpGrid<Self::Cell>>(&self, m: &mut G, region: TileRegion) {
        let idx = self.calls.fetch_add(1, Ordering::Relaxed);
        if mix64(self.seed ^ idx) % 1000 < self.stall_permille as u64 {
            self.fired.fetch_add(1, Ordering::Relaxed);
            std::thread::sleep(self.stall);
        }
        self.inner.compute_region(m, region);
    }

    fn cell_work(&self, p: GridPos) -> u64 {
        self.inner.cell_work(p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use easyhps_dp::{DpMatrix, EditDistance};

    #[test]
    fn injected_failures_then_success() {
        let p = FaultyProblem::new(EditDistance::new(b"ab".to_vec(), b"ab".to_vec()), 2);
        let dims = p.dims();
        let mut m = DpMatrix::new(dims);
        let region = TileRegion::new(0, dims.rows, 0, dims.cols);
        for _ in 0..2 {
            let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                p.compute_region(&mut m, region);
            }));
            assert!(r.is_err());
        }
        assert_eq!(p.failures_left(), 0);
        p.compute_region(&mut m, region);
        assert_eq!(m.get(2, 2), 0);
    }

    #[test]
    fn stall_decisions_are_a_pure_function_of_seed_and_index() {
        let decide = |seed: u64, idx: u64| mix64(seed ^ idx) % 1000 < 300;
        let a: Vec<bool> = (0..100).map(|i| decide(7, i)).collect();
        let b: Vec<bool> = (0..100).map(|i| decide(7, i)).collect();
        let c: Vec<bool> = (0..100).map(|i| decide(8, i)).collect();
        assert_eq!(a, b, "same seed, same stall set");
        assert_ne!(a, c, "different seed, different stall set");
        let rate = a.iter().filter(|x| **x).count();
        assert!((15..=45).contains(&rate), "~30% expected, got {rate}%");
    }

    #[test]
    fn stall_problem_computes_the_same_matrix() {
        let p = EditDistance::new(b"abcd".to_vec(), b"axcd".to_vec());
        let reference = p.solve_sequential();
        let stalled = StallProblem::new(
            EditDistance::new(b"abcd".to_vec(), b"axcd".to_vec()),
            3,
            1000,
            std::time::Duration::from_millis(1),
        );
        let got = stalled.solve_sequential();
        assert_eq!(got, reference);
        assert!(stalled.stalls_fired() > 0);
    }
}
