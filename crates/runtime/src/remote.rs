//! Multi-process deployment: master and slaves as separate OS processes
//! over the socket transport.
//!
//! In-process runs hand every rank an [`Arc`] of the same problem; a
//! remote slave has nothing, so the master ships a [`JobSpec`] — the
//! problem's defining data plus the partition sizes and deployment knobs
//! both sides must agree on — as the first message after the socket
//! handshake (tag [`tags::JOB`], sealed with the CRC frame layer). The
//! slave reconstructs the problem and model locally and then runs the
//! ordinary [`run_slave_with_storage`] loop; the master runs the
//! ordinary [`run_master_with`]. Everything above the transport —
//! reliable control messages, heartbeats, fault tolerance, durable
//! checkpoints — is byte-identical to the in-process path.
//!
//! The remote problem repertoire is the closed set of workloads the CLI
//! can name ([`RemoteProblem`]); all of them share `Cell = i32`, which
//! keeps the wire format and the master's output monomorphic.

use crate::checkpoint::Checkpoint;
use crate::config::{Deployment, ObsConfig, RunReport};
use crate::durable::CheckpointPolicy;
use crate::protocol::{tags, SlaveStatsMsg};
use crate::shared_grid::SharedGrid;
use crate::slave::run_slave_with_storage;
use crate::storage::SparseGrid;
use crate::{MemoryMode, RuntimeError};
use easyhps_core::{DagDataDrivenModel, GridDims, ScheduleMode};
use easyhps_dp::{
    DpMatrix, DpProblem, EditDistance, GapPenalty, Lcs, NeedlemanWunsch, Nussinov,
    SmithWatermanGeneralGap, Substitution,
};
use easyhps_net::socket::{connect, SocketConfig, SocketInfo, SocketListener};
use easyhps_net::{frame, NetAddr, Rank, RetryPolicy, WireError, WireReader, WireWriter};
use easyhps_obs::{labeled, Registry};
use std::time::Duration;

fn io_err(what: &str, e: std::io::Error) -> RuntimeError {
    RuntimeError::InvalidConfig(format!("{what}: {e}"))
}

/// Substitution scheme a job can carry: the simple match/mismatch form.
/// (Table substitutions would ship fine but nothing in the CLI produces
/// them remotely yet.)
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SubSpec {
    /// Score for identical symbols.
    pub match_score: i32,
    /// Score for differing symbols.
    pub mismatch: i32,
}

impl SubSpec {
    /// The DNA default (+2 match, −1 mismatch).
    pub fn dna() -> Self {
        SubSpec {
            match_score: 2,
            mismatch: -1,
        }
    }

    pub(crate) fn to_substitution(self) -> Substitution {
        Substitution::Simple {
            match_score: self.match_score,
            mismatch: self.mismatch,
        }
    }
}

/// Gap penalty a job can carry — every [`GapPenalty`] form except
/// `Custom` closures, which cannot cross a process boundary.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum GapSpec {
    /// `w(k) = per_gap * k`.
    Linear(i32),
    /// `w(k) = open + extend * (k - 1)`.
    Affine(i32, i32),
    /// `w(k) = a + b * floor(log2 k)`.
    Logarithmic(i32, i32),
}

impl GapSpec {
    /// Convert a runtime [`GapPenalty`] into its wire form; `None` for
    /// `Custom` closures.
    pub fn from_penalty(gap: &GapPenalty) -> Option<GapSpec> {
        match gap {
            GapPenalty::Linear { per_gap } => Some(GapSpec::Linear(*per_gap)),
            GapPenalty::Affine { open, extend } => Some(GapSpec::Affine(*open, *extend)),
            GapPenalty::Logarithmic { a, b } => Some(GapSpec::Logarithmic(*a, *b)),
            GapPenalty::Custom(_) => None,
        }
    }

    pub(crate) fn to_penalty(self) -> GapPenalty {
        match self {
            GapSpec::Linear(per_gap) => GapPenalty::Linear { per_gap },
            GapSpec::Affine(open, extend) => GapPenalty::Affine { open, extend },
            GapSpec::Logarithmic(a, b) => GapPenalty::Logarithmic { a, b },
        }
    }
}

/// The problems a remote job can describe. All share `Cell = i32`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RemoteProblem {
    /// Levenshtein distance between two byte strings.
    EditDistance {
        /// First string.
        a: Vec<u8>,
        /// Second string.
        b: Vec<u8>,
    },
    /// Longest common subsequence.
    Lcs {
        /// First string.
        a: Vec<u8>,
        /// Second string.
        b: Vec<u8>,
    },
    /// Global alignment with linear gaps.
    NeedlemanWunsch {
        /// First sequence.
        a: Vec<u8>,
        /// Second sequence.
        b: Vec<u8>,
        /// Substitution scores.
        sub: SubSpec,
        /// Per-symbol gap cost.
        gap: i32,
    },
    /// Local alignment with a general gap function (the paper's SWGG).
    Swgg {
        /// First sequence.
        a: Vec<u8>,
        /// Second sequence.
        b: Vec<u8>,
        /// Substitution scores.
        sub: SubSpec,
        /// Gap penalty function.
        gap: GapSpec,
    },
    /// RNA secondary structure (Nussinov).
    Nussinov {
        /// RNA sequence.
        seq: Vec<u8>,
        /// Minimum hairpin loop length.
        min_loop: u32,
    },
}

/// Run the same code for whichever concrete problem the spec describes.
/// (A macro because the arms need different monomorphic types but
/// identical bodies, and Rust has no generic closures.)
macro_rules! with_problem {
    ($problem:expr, $p:ident => $body:expr) => {
        match $problem {
            RemoteProblem::EditDistance { a, b } => {
                let $p = EditDistance::new(a.clone(), b.clone());
                $body
            }
            RemoteProblem::Lcs { a, b } => {
                let $p = Lcs::new(a.clone(), b.clone());
                $body
            }
            RemoteProblem::NeedlemanWunsch { a, b, sub, gap } => {
                let $p = NeedlemanWunsch::new(a.clone(), b.clone(), sub.to_substitution(), *gap);
                $body
            }
            RemoteProblem::Swgg { a, b, sub, gap } => {
                let $p = SmithWatermanGeneralGap::new(
                    a.clone(),
                    b.clone(),
                    sub.to_substitution(),
                    gap.to_penalty(),
                );
                $body
            }
            RemoteProblem::Nussinov { seq, min_loop } => {
                let $p = Nussinov::with_min_loop(seq.clone(), *min_loop);
                $body
            }
        }
    };
}
pub(crate) use with_problem;

impl RemoteProblem {
    /// Global matrix dimensions of this problem — what the master's DAG
    /// covers, and the cost proxy job schedulers use (`rows * cols`).
    pub fn dims(&self) -> GridDims {
        with_problem!(self, p => p.dims())
    }

    /// Total cells of the global matrix — the unit of job cost for
    /// admission control and fair scheduling.
    pub fn cells(&self) -> u64 {
        let d = self.dims();
        d.rows as u64 * d.cols as u64
    }

    /// Solve on one thread with the sequential reference kernel. Small
    /// jobs batched below the dispatch threshold take this path; the
    /// runtime is exact, so the result is bit-identical to a fleet run.
    pub fn solve_sequential(&self) -> DpMatrix<i32> {
        with_problem!(self, p => p.solve_sequential())
    }

    /// Canonical encoding of the problem alone — no partition sizes, no
    /// deployment knobs. Two specs with equal `content_key_bytes` compute
    /// the same matrix regardless of how the work is partitioned, which
    /// is exactly the equivalence a content-addressed result cache needs.
    pub fn content_key_bytes(&self) -> Vec<u8> {
        let mut w = WireWriter::new();
        self.encode_into(&mut w);
        w.finish().to_vec()
    }

    fn encode_into(&self, w: &mut WireWriter) {
        match self {
            RemoteProblem::EditDistance { a, b } => {
                w.put_u8(0).put_bytes(a).put_bytes(b);
            }
            RemoteProblem::Lcs { a, b } => {
                w.put_u8(1).put_bytes(a).put_bytes(b);
            }
            RemoteProblem::NeedlemanWunsch { a, b, sub, gap } => {
                w.put_u8(2)
                    .put_bytes(a)
                    .put_bytes(b)
                    .put_i64(sub.match_score as i64)
                    .put_i64(sub.mismatch as i64)
                    .put_i64(*gap as i64);
            }
            RemoteProblem::Swgg { a, b, sub, gap } => {
                w.put_u8(3)
                    .put_bytes(a)
                    .put_bytes(b)
                    .put_i64(sub.match_score as i64)
                    .put_i64(sub.mismatch as i64);
                let (kind, x, y) = match gap {
                    GapSpec::Linear(p) => (0u8, *p, 0),
                    GapSpec::Affine(o, e) => (1, *o, *e),
                    GapSpec::Logarithmic(a, b) => (2, *a, *b),
                };
                w.put_u8(kind).put_i64(x as i64).put_i64(y as i64);
            }
            RemoteProblem::Nussinov { seq, min_loop } => {
                w.put_u8(4).put_bytes(seq).put_u32(*min_loop);
            }
        }
    }

    fn decode_from(r: &mut WireReader<'_>) -> Result<RemoteProblem, WireError> {
        Ok(match r.get_u8()? {
            0 => RemoteProblem::EditDistance {
                a: r.get_bytes()?,
                b: r.get_bytes()?,
            },
            1 => RemoteProblem::Lcs {
                a: r.get_bytes()?,
                b: r.get_bytes()?,
            },
            2 => RemoteProblem::NeedlemanWunsch {
                a: r.get_bytes()?,
                b: r.get_bytes()?,
                sub: SubSpec {
                    match_score: r.get_i64()? as i32,
                    mismatch: r.get_i64()? as i32,
                },
                gap: r.get_i64()? as i32,
            },
            3 => {
                let a = r.get_bytes()?;
                let b = r.get_bytes()?;
                let sub = SubSpec {
                    match_score: r.get_i64()? as i32,
                    mismatch: r.get_i64()? as i32,
                };
                let kind = r.get_u8()?;
                let (x, y) = (r.get_i64()? as i32, r.get_i64()? as i32);
                RemoteProblem::Swgg {
                    a,
                    b,
                    sub,
                    gap: match kind {
                        0 => GapSpec::Linear(x),
                        1 => GapSpec::Affine(x, y),
                        _ => GapSpec::Logarithmic(x, y),
                    },
                }
            }
            4 => RemoteProblem::Nussinov {
                seq: r.get_bytes()?,
                min_loop: r.get_u32()?,
            },
            _ => {
                return Err(WireError {
                    context: "job problem kind",
                });
            }
        })
    }
}

fn put_mode(w: &mut WireWriter, mode: ScheduleMode) {
    match mode {
        ScheduleMode::Dynamic => {
            w.put_u8(0);
        }
        ScheduleMode::BlockCyclic { block } => {
            w.put_u8(1).put_u32(block);
        }
        ScheduleMode::ColumnWavefront => {
            w.put_u8(2);
        }
    }
}

fn get_mode(r: &mut WireReader<'_>) -> Result<ScheduleMode, WireError> {
    Ok(match r.get_u8()? {
        1 => ScheduleMode::BlockCyclic {
            block: r.get_u32()?,
        },
        2 => ScheduleMode::ColumnWavefront,
        _ => ScheduleMode::Dynamic,
    })
}

/// Everything a remote slave needs to join a run: the problem, the two
/// partition sizes, and the deployment knobs both sides must share.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JobSpec {
    /// The problem to reconstruct.
    pub problem: RemoteProblem,
    /// Process-level partition size.
    pub pp: GridDims,
    /// Thread-level partition size.
    pub tp: GridDims,
    /// Computing threads per slave (a slave may override locally).
    pub threads_per_slave: u32,
    /// Process-level scheduling policy.
    pub process_mode: ScheduleMode,
    /// Thread-level scheduling policy.
    pub thread_mode: ScheduleMode,
    /// Sub-task timeout before fault tolerance redistributes.
    pub task_timeout: Duration,
    /// Fault-tolerance poll interval.
    pub ft_poll: Duration,
    /// Heartbeat cadence.
    pub heartbeat_interval: Duration,
    /// Heartbeat silence tolerated before exclusion.
    pub heartbeat_timeout: Duration,
    /// Reliable-send retry policy.
    pub retry: RetryPolicy,
    /// Node-matrix storage strategy for slaves.
    pub memory: MemoryMode,
}

impl JobSpec {
    /// A spec with the given problem and partitions and the default
    /// local deployment knobs.
    pub fn new(problem: RemoteProblem, pp: GridDims, tp: GridDims) -> Self {
        let d = Deployment::local(1, 2);
        JobSpec {
            problem,
            pp,
            tp,
            threads_per_slave: 2,
            process_mode: d.process_mode,
            thread_mode: d.thread_mode,
            task_timeout: d.task_timeout,
            ft_poll: d.ft_poll,
            heartbeat_interval: d.heartbeat_interval,
            heartbeat_timeout: d.heartbeat_timeout,
            retry: d.retry,
            memory: MemoryMode::Dense,
        }
    }

    /// The deployment a rank should run with: the shared knobs plus its
    /// local slave count and (optionally overridden) thread count.
    pub fn deployment(&self, slaves: usize, threads_override: Option<usize>) -> Deployment {
        Deployment {
            slaves,
            threads_per_slave: threads_override.unwrap_or(self.threads_per_slave as usize),
            process_mode: self.process_mode,
            thread_mode: self.thread_mode,
            task_timeout: self.task_timeout,
            ft_poll: self.ft_poll,
            retry: self.retry.clone(),
            heartbeat_interval: self.heartbeat_interval,
            heartbeat_timeout: self.heartbeat_timeout,
            obs: ObsConfig::default(),
            checkpoint: None,
        }
    }

    /// The DAG Data Driven Model for this job — identical on master and
    /// every slave because it is derived from the shipped spec.
    pub fn model(&self) -> DagDataDrivenModel {
        with_problem!(&self.problem, p => {
            DagDataDrivenModel::builder(p.pattern())
                .process_partition_size(self.pp)
                .thread_partition_size(self.tp)
                .build()
        })
    }

    /// Encode to raw payload bytes (not yet CRC-sealed).
    pub fn encode(&self) -> Vec<u8> {
        let mut w = WireWriter::new();
        self.problem.encode_into(&mut w);
        w.put_u32(self.pp.rows).put_u32(self.pp.cols);
        w.put_u32(self.tp.rows).put_u32(self.tp.cols);
        w.put_u32(self.threads_per_slave);
        put_mode(&mut w, self.process_mode);
        put_mode(&mut w, self.thread_mode);
        w.put_u64(self.task_timeout.as_millis() as u64)
            .put_u64(self.ft_poll.as_millis() as u64)
            .put_u64(self.heartbeat_interval.as_millis() as u64)
            .put_u64(self.heartbeat_timeout.as_millis() as u64);
        w.put_u32(self.retry.max_attempts)
            .put_u64(self.retry.initial_backoff.as_micros() as u64)
            .put_u64(self.retry.max_backoff.as_micros() as u64);
        w.put_u8(match self.memory {
            MemoryMode::Dense => 0,
            MemoryMode::Sparse => 1,
        });
        w.finish().to_vec()
    }

    /// Decode from raw payload bytes.
    pub fn decode(bytes: &[u8]) -> Result<JobSpec, WireError> {
        let mut r = WireReader::new(bytes);
        let problem = RemoteProblem::decode_from(&mut r)?;
        let pp = GridDims::new(r.get_u32()?, r.get_u32()?);
        let tp = GridDims::new(r.get_u32()?, r.get_u32()?);
        let threads_per_slave = r.get_u32()?;
        let process_mode = get_mode(&mut r)?;
        let thread_mode = get_mode(&mut r)?;
        let task_timeout = Duration::from_millis(r.get_u64()?);
        let ft_poll = Duration::from_millis(r.get_u64()?);
        let heartbeat_interval = Duration::from_millis(r.get_u64()?);
        let heartbeat_timeout = Duration::from_millis(r.get_u64()?);
        let retry = RetryPolicy {
            max_attempts: r.get_u32()?,
            initial_backoff: Duration::from_micros(r.get_u64()?),
            max_backoff: Duration::from_micros(r.get_u64()?),
        };
        let memory = match r.get_u8()? {
            1 => MemoryMode::Sparse,
            _ => MemoryMode::Dense,
        };
        r.expect_end()?;
        Ok(JobSpec {
            problem,
            pp,
            tp,
            threads_per_slave,
            process_mode,
            thread_mode,
            task_timeout,
            ft_poll,
            heartbeat_interval,
            heartbeat_timeout,
            retry,
            memory,
        })
    }
}

/// Options for the master side of a multi-process run.
#[derive(Debug, Default)]
pub struct RemoteMasterOptions {
    /// Socket knobs (frame bound, backpressure mark, timeouts).
    pub socket: SocketConfig,
    /// Fault plan for the master's own endpoint (drills).
    pub fault: Option<easyhps_net::FaultPlan>,
    /// Resume from a previously captured checkpoint.
    pub resume: Option<Checkpoint>,
    /// Stop after this many tile completions and return a checkpoint.
    pub tile_budget: Option<u64>,
    /// Observability wiring (metrics registry, event recorder).
    pub obs: ObsConfig,
    /// Durable checkpoint policy.
    pub checkpoint: Option<CheckpointPolicy>,
}

/// Outcome of a multi-process master run.
#[derive(Debug)]
pub struct RemoteOutput {
    /// The computed global matrix (all remote problems use `i32` cells).
    pub matrix: DpMatrix<i32>,
    /// Execution report.
    pub report: RunReport,
    /// Present when a tile budget stopped the run early.
    pub checkpoint: Option<Checkpoint>,
    /// Per-link socket counters of the master endpoint; `None` for an
    /// in-process fleet, whose links are plain channels.
    pub socket: Option<SocketInfo>,
}

/// Run the master side of a multi-process job on an already-bound
/// listener: accept `slaves` connections, ship one [`JobSpec`], run the
/// ordinary master loop over the socket endpoint, and shut the fleet
/// down. One-shot sugar over [`Fleet`](crate::fleet::Fleet), which the
/// serve daemon uses directly to run many jobs over the same
/// connections.
pub fn run_remote_master(
    listener: SocketListener,
    spec: &JobSpec,
    slaves: usize,
    opts: RemoteMasterOptions,
) -> Result<RemoteOutput, RuntimeError> {
    // A reconnect window on the socket config opts into elastic
    // membership (session resumption, mid-run join, drain). Fault
    // injection stays on the fixed-membership path: a fault plan replays
    // per incarnation and would desynchronize across a splice.
    let mut fleet = if opts.socket.reconnect_window.is_some() && opts.fault.is_none() {
        crate::fleet::Fleet::accept_elastic(listener, slaves)?
    } else {
        crate::fleet::Fleet::accept(listener, slaves, opts.fault)?
    };
    let out = fleet.run_job(
        spec,
        crate::fleet::JobOptions {
            obs: opts.obs.clone(),
            checkpoint: opts.checkpoint,
            resume: opts.resume,
            tile_budget: opts.tile_budget,
        },
    )?;
    fleet.shutdown();
    Ok(out)
}

/// Options for the slave side of a multi-process run.
#[derive(Clone, Debug)]
pub struct RemoteSlaveOptions {
    /// Master address to connect to.
    pub addr: NetAddr,
    /// Ask the master for a specific rank (drills and tests).
    pub want_rank: Option<u32>,
    /// Override the job's `threads_per_slave` locally.
    pub threads: Option<usize>,
    /// Override the job's storage strategy locally.
    pub memory: Option<MemoryMode>,
    /// Socket knobs.
    pub socket: SocketConfig,
    /// Fault plan for this slave's endpoint (drills).
    pub fault: Option<easyhps_net::FaultPlan>,
}

impl RemoteSlaveOptions {
    /// Connect to `addr` with defaults everywhere else.
    pub fn new(addr: NetAddr) -> Self {
        RemoteSlaveOptions {
            addr,
            want_rank: None,
            threads: None,
            memory: None,
            socket: SocketConfig::default(),
            fault: None,
        }
    }
}

/// What a slave's multi-job service loop did before it exited.
#[derive(Clone, Copy, Debug, Default)]
pub struct SlaveServeSummary {
    /// Jobs served to completion.
    pub jobs: u64,
    /// Execution stats summed across every job.
    pub stats: SlaveStatsMsg,
}

/// How often an idle fleet slave probes the master link between jobs.
/// The probe doubles as the master-death detector: once the connection
/// is closed, the heartbeat send fails and the loop exits cleanly.
const IDLE_PROBE: Duration = Duration::from_millis(500);

/// Serve jobs on an already-connected endpoint until the master sends
/// SHUTDOWN or disappears. Each [`tags::JOB`] message carries one
/// [`JobSpec`]; the slave reconstructs the problem and runs the ordinary
/// slave loop on a per-job [`Endpoint::fork`](easyhps_net::Endpoint::fork)
/// of the shared connection, so the socket survives from job to job.
pub(crate) fn slave_job_loop(
    mut root: easyhps_net::Endpoint,
    threads: Option<usize>,
    memory: Option<MemoryMode>,
    fault: Option<easyhps_net::FaultPlan>,
) -> Result<SlaveServeSummary, RuntimeError> {
    let master = Rank(0);
    let mut summary = SlaveServeSummary::default();
    // Announce readiness on entry and again after every finished job.
    // The master's job-boundary barrier waits for it: shipping a JOB to
    // a slave still lingering in its previous job's reliable teardown
    // would lose the frame (the linger ACKs-and-discards).
    let mut announce = true;
    loop {
        if announce {
            if root
                .send(master, tags::READY, frame::seal_raw(&[]))
                .is_err()
            {
                return Ok(summary); // master gone between jobs
            }
            announce = false;
        }
        let env = match root.recv_timeout(IDLE_PROBE) {
            Ok(env) => env,
            Err(easyhps_net::NetError::Timeout) => {
                // Re-announce READY instead of a bare heartbeat: the
                // frame doubles as the liveness probe, and a master that
                // missed the first announcement (slave dark across a job
                // boundary, elastic rejoin) picks the slave up at its
                // next readiness barrier instead of timing out. A master
                // mid-job discards stray READYs.
                match root.send(master, tags::READY, frame::seal_raw(&[])) {
                    Ok(()) => continue,
                    Err(_) => return Ok(summary), // master gone between jobs
                }
            }
            Err(_) => return Ok(summary),
        };
        match env.tag {
            tags::JOB => {
                match frame::check(&env.payload) {
                    Ok(frame::Frame::Raw) => {}
                    _ => {
                        return Err(RuntimeError::InvalidConfig(
                            "job spec must arrive as a sealed raw frame".into(),
                        ))
                    }
                }
                let spec = JobSpec::decode(&env.payload[frame::RAW_BODY..])?;
                let n_slaves = root.n_ranks() - 1;
                let deployment = spec.deployment(n_slaves, threads);
                let model = spec.model();
                let mem = memory.unwrap_or(spec.memory);
                let ep = root.fork(fault.clone());
                let stats = with_problem!(&spec.problem, p => {
                    match mem {
                        MemoryMode::Dense => {
                            run_slave_with_storage::<_, SharedGrid<i32>>(ep, &p, &model, &deployment)
                        }
                        MemoryMode::Sparse => {
                            run_slave_with_storage::<_, SparseGrid<i32>>(ep, &p, &model, &deployment)
                        }
                    }
                })?;
                announce = true;
                summary.jobs += 1;
                summary.stats.tasks_done += stats.tasks_done;
                summary.stats.subtasks_done += stats.subtasks_done;
                summary.stats.busy_ns += stats.busy_ns;
                summary.stats.thread_failures += stats.thread_failures;
                summary.stats.peak_node_bytes =
                    summary.stats.peak_node_bytes.max(stats.peak_node_bytes);
                summary.stats.threads_spawned += stats.threads_spawned;
            }
            tags::SHUTDOWN => return Ok(summary),
            // Stray frames from a previous job's teardown (late ACKs,
            // heartbeat echoes) are harmless between jobs.
            _ => {}
        }
    }
}

/// Run the slave side of a multi-process deployment: connect, then serve
/// every job the master ships until it sends SHUTDOWN or disappears. A
/// one-shot `easyhps master` sends exactly one job followed by SHUTDOWN;
/// a serve daemon keeps the connection and streams jobs through it.
pub fn serve_slave_jobs(opts: RemoteSlaveOptions) -> Result<SlaveServeSummary, RuntimeError> {
    let (ep, _info) = connect(&opts.addr, opts.want_rank, opts.socket, None)
        .map_err(|e| io_err("connecting to master", e))?;
    slave_job_loop(ep, opts.threads, opts.memory, opts.fault)
}

/// Back-compat single-result wrapper over [`serve_slave_jobs`]: serve
/// until shutdown and return the summed stats.
pub fn serve_slave(opts: RemoteSlaveOptions) -> Result<SlaveStatsMsg, RuntimeError> {
    Ok(serve_slave_jobs(opts)?.stats)
}

/// Export per-link socket counters (bytes queued, reconnects, frames
/// rejected, traffic) into a metrics registry, one series set per link.
pub fn publish_socket_stats(reg: &Registry, info: &SocketInfo) {
    for (rank, stats) in &info.links {
        let s = stats.snapshot();
        let peer = rank.0.to_string();
        let l = |name: &str| labeled(name, &[("link", &peer)]);
        reg.gauge(&l("socket_bytes_queued"))
            .set(s.bytes_queued as i64);
        reg.counter(&l("socket_frames_sent")).add(s.frames_sent);
        reg.counter(&l("socket_bytes_sent")).add(s.bytes_sent);
        reg.counter(&l("socket_frames_recv")).add(s.frames_recv);
        reg.counter(&l("socket_bytes_recv")).add(s.bytes_recv);
        reg.counter(&l("socket_frames_rejected"))
            .add(s.frames_rejected);
        reg.counter(&l("socket_reconnects")).add(s.reconnects);
        reg.counter(&l("socket_disconnects")).add(s.disconnects);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec_roundtrip(problem: RemoteProblem) {
        let mut spec = JobSpec::new(problem, GridDims::new(8, 8), GridDims::new(4, 4));
        spec.threads_per_slave = 3;
        spec.process_mode = ScheduleMode::BlockCyclic { block: 2 };
        spec.thread_mode = ScheduleMode::ColumnWavefront;
        spec.task_timeout = Duration::from_millis(777);
        spec.memory = MemoryMode::Sparse;
        let decoded = JobSpec::decode(&spec.encode()).unwrap();
        assert_eq!(decoded, spec);
    }

    #[test]
    fn job_spec_roundtrips_every_problem() {
        spec_roundtrip(RemoteProblem::EditDistance {
            a: b"kitten".to_vec(),
            b: b"sitting".to_vec(),
        });
        spec_roundtrip(RemoteProblem::Lcs {
            a: b"abcbdab".to_vec(),
            b: b"bdcaba".to_vec(),
        });
        spec_roundtrip(RemoteProblem::NeedlemanWunsch {
            a: b"ACGT".to_vec(),
            b: b"AGT".to_vec(),
            sub: SubSpec::dna(),
            gap: 2,
        });
        spec_roundtrip(RemoteProblem::Swgg {
            a: b"ACGTACGT".to_vec(),
            b: b"TTACGA".to_vec(),
            sub: SubSpec::dna(),
            gap: GapSpec::Logarithmic(3, 2),
        });
        spec_roundtrip(RemoteProblem::Nussinov {
            seq: b"GGGAAACCC".to_vec(),
            min_loop: 3,
        });
    }

    #[test]
    fn truncated_spec_never_decodes() {
        let spec = JobSpec::new(
            RemoteProblem::EditDistance {
                a: b"abc".to_vec(),
                b: b"abd".to_vec(),
            },
            GridDims::new(2, 2),
            GridDims::new(1, 1),
        );
        let bytes = spec.encode();
        for cut in 0..bytes.len() {
            assert!(
                JobSpec::decode(&bytes[..cut]).is_err(),
                "prefix {cut}/{} must not decode",
                bytes.len()
            );
        }
    }

    /// Full multi-process semantics in one process: a master thread and
    /// two slave threads joined only by TCP, exchanging the job spec and
    /// computing a matrix identical to the sequential reference.
    #[test]
    fn tcp_job_runs_end_to_end() {
        let problem = RemoteProblem::EditDistance {
            a: b"the quick brown fox jumps over the lazy dog".to_vec(),
            b: b"the quick brown cat naps over the lazy dog".to_vec(),
        };
        let spec = JobSpec::new(problem, GridDims::new(8, 8), GridDims::new(4, 4));
        let listener = SocketListener::bind(
            &NetAddr::parse("127.0.0.1:0").unwrap(),
            SocketConfig::default(),
        )
        .unwrap();
        let addr = listener.local_addr();
        let slaves: Vec<_> = (1..=2u32)
            .map(|r| {
                let mut o = RemoteSlaveOptions::new(addr.clone());
                o.want_rank = Some(r);
                std::thread::spawn(move || serve_slave(o))
            })
            .collect();
        let out = run_remote_master(listener, &spec, 2, RemoteMasterOptions::default()).unwrap();
        for s in slaves {
            s.join().unwrap().unwrap();
        }
        let reference = EditDistance::new(
            b"the quick brown fox jumps over the lazy dog".to_vec(),
            b"the quick brown cat naps over the lazy dog".to_vec(),
        )
        .solve_sequential();
        assert_eq!(out.matrix.get(43, 42), reference.get(43, 42));
        assert_eq!(
            out.report.master.completed,
            out.report.master.dispatched + out.report.master.resumed
                - out.report.master.redispatched
        );
    }
}
