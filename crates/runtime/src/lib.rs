//! # easyhps-runtime — the multilevel master/slave runtime
//!
//! The EasyHPS system proper (paper §III and §V): a master rank partitions
//! a DP problem by the DAG Data Driven Model and dynamically schedules
//! sub-tasks onto slave nodes; each slave re-partitions its sub-task and
//! schedules sub-sub-tasks onto computing threads. Worker pools at both
//! levels use the computable/finished sub-task stacks, the overtime queue
//! and the register table; fault tolerance is hierarchical (timeout-based
//! node exclusion at process level, panic-catching thread restart at
//! thread level).
//!
//! The "cluster" is the in-process virtual-MPI network of
//! [`easyhps-net`](easyhps_net); see DESIGN.md for why that substitution
//! preserves the paper's scheduling behaviour.
//!
//! Quick start:
//!
//! ```
//! use easyhps_runtime::EasyHps;
//! use easyhps_dp::{DpProblem, Nussinov};
//! use easyhps_dp::sequence::{random_sequence, Alphabet};
//!
//! let rna = random_sequence(Alphabet::Rna, 60, 1);
//! let problem = Nussinov::new(rna);
//! let reference = problem.solve_sequential();
//!
//! let out = EasyHps::new(problem)
//!     .process_partition((12, 12))
//!     .thread_partition((4, 4))
//!     .slaves(3)
//!     .threads_per_slave(2)
//!     .run()
//!     .unwrap();
//! assert_eq!(out.matrix.get(0, 59), reference.get(0, 59));
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod api;
mod autotune;
mod checkpoint;
mod config;
mod durable;
mod easy_pdp;
mod error;
pub mod fleet;
mod master;
mod obs;
mod pool;
mod protocol;
pub mod remote;
pub mod sched;
mod shared_grid;
mod slave;
mod storage;
pub mod testing;

pub use api::{EasyHps, MemoryMode, RunOutput, TransportKind};
pub use autotune::{Autotuner, ProblemClass, TuneProfile, TuningEntry, TuningTable};
pub use checkpoint::Checkpoint;
pub use config::{Deployment, MasterStats, ObsConfig, RunReport};
pub use durable::CheckpointPolicy;
pub use easy_pdp::{EasyPdp, PdpOutput};
pub use easyhps_core::ScheduleMode;
pub use easyhps_net::RetryPolicy;
pub use easyhps_obs::{EventRecorder, Registry, Snapshot};
pub use error::RuntimeError;
pub use fleet::{Fleet, JobOptions};
pub use master::{run_master, run_master_fleet, run_master_with, FleetControl, MasterOutput};
pub use pool::{OvertimeEntry, OvertimeQueue, RegisterTable, TaskStack};
pub use protocol::{tags, AssignMsg, DoneMsg, SlaveStatsMsg};
pub use shared_grid::{ExclusiveGrid, SharedGrid, TaskView};
pub use slave::{run_slave, run_slave_with_storage};
pub use storage::{NodeStorage, SparseGrid, SparseView};
