//! The shared node matrix: race-free concurrent tile computation.
//!
//! Inside one slave node, computing threads work on disjoint tile regions
//! of a single matrix while reading regions finished earlier — the classic
//! wavefront shared-memory discipline. Rust cannot prove this discipline
//! statically, so the grid uses `UnsafeCell` with a narrow, documented
//! unsafe constructor; everything else is safe.
//!
//! ## Safety argument
//!
//! * Each sub-task's region is assigned to exactly one computing thread at
//!   a time (the slave scheduler pops it from the computable stack once).
//! * A task only reads cells in regions that the DAG orders strictly before
//!   it ([`easyhps_core::TaskDag::validate`] checks that every
//!   data-communication dependency is a topological ancestor).
//! * Completion and dispatch travel through channels, whose send/recv pairs
//!   establish happens-before between the finisher's writes and the
//!   reader's reads.
//!
//! Together these give data-race freedom: no cell is ever written
//! concurrently with another access.

use easyhps_core::{GridDims, TileRegion};
use easyhps_dp::{Cell, DpGrid, DpMatrix};
use std::cell::UnsafeCell;

/// A grid whose cells can be written by multiple threads under the DAG
/// scheduling discipline described in the module docs.
pub struct SharedGrid<C: Cell> {
    dims: GridDims,
    cells: Box<[UnsafeCell<C>]>,
}

// SAFETY: all aliasing is governed by the task-region discipline; see the
// module documentation. `C: Cell` is `Send + Sync` by bound (plain data).
unsafe impl<C: Cell> Sync for SharedGrid<C> {}

impl<C: Cell> SharedGrid<C> {
    /// A grid of `dims` filled with `C::default()`.
    pub fn new(dims: GridDims) -> Self {
        let n = dims.area() as usize;
        let mut v = Vec::with_capacity(n);
        v.resize_with(n, || UnsafeCell::new(C::default()));
        Self {
            dims,
            cells: v.into_boxed_slice(),
        }
    }

    /// Grid extent.
    pub fn dims(&self) -> GridDims {
        self.dims
    }

    #[inline]
    fn idx(&self, row: u32, col: u32) -> usize {
        debug_assert!(row < self.dims.rows && col < self.dims.cols);
        row as usize * self.dims.cols as usize + col as usize
    }

    /// Borrow cells `[col_start, col_end)` of `row` as a plain shared slice.
    ///
    /// # Safety
    ///
    /// Caller must guarantee no thread writes any of these cells for the
    /// lifetime of the returned borrow (the task-view read contract: each
    /// cell is finalized, or owned by the caller and not being written).
    #[inline]
    unsafe fn row_span(&self, row: u32, col_start: u32, col_end: u32) -> &[C] {
        debug_assert!(col_start <= col_end && col_end <= self.dims.cols);
        let start = self.idx(row, col_start);
        let len = (col_end - col_start) as usize;
        // SAFETY: `UnsafeCell<C>` has the same layout as `C`, the range is
        // in bounds, and the caller guarantees no concurrent writes — the
        // DAG schedule orders every producing task (with happens-before via
        // channel send/recv) strictly before this read.
        unsafe { std::slice::from_raw_parts(self.cells[start].get() as *const C, len) }
    }

    /// Overwrite cells `[col_start, col_start + values.len())` of `row`.
    ///
    /// # Safety
    ///
    /// Caller must have exclusive write rights to these cells per the
    /// task-view contract (its region, or `&mut` access to the grid).
    #[inline]
    unsafe fn write_row_span(&self, row: u32, col_start: u32, values: &[C]) {
        let col_end = col_start + values.len() as u32;
        debug_assert!(col_end <= self.dims.cols);
        let start = self.idx(row, col_start);
        // SAFETY: in-bounds, and the caller holds region exclusivity per
        // the DAG scheduling discipline, so no other thread reads or
        // writes these cells during the copy.
        unsafe {
            let dst = self.cells[start].get();
            std::ptr::copy_nonoverlapping(values.as_ptr(), dst, values.len());
        }
    }

    /// Create a view that may write `region` and read anything.
    ///
    /// # Safety
    ///
    /// The caller must guarantee, for the lifetime of the view:
    /// 1. no other live view's writable region overlaps `region`;
    /// 2. every cell read through the view is either inside `region` or was
    ///    written by a task whose completion happens-before this view's
    ///    creation (and is never written again while the view lives).
    pub unsafe fn task_view(&self, region: TileRegion) -> TaskView<'_, C> {
        TaskView { grid: self, region }
    }

    /// Exclusive access as a plain mutable grid. Safe: `&mut self` proves
    /// no views are alive.
    pub fn as_exclusive(&mut self) -> ExclusiveGrid<'_, C> {
        ExclusiveGrid { grid: self }
    }

    /// Snapshot the whole grid into an owned matrix. Safe only with `&mut`
    /// (no concurrent writers).
    pub fn to_matrix(&mut self) -> DpMatrix<C> {
        let mut m = DpMatrix::new(self.dims);
        for r in 0..self.dims.rows {
            // SAFETY: &mut self excludes all concurrent access.
            let row = unsafe { self.row_span(r, 0, self.dims.cols) };
            m.write_row(r, 0, row);
        }
        m
    }
}

/// A task's window onto the shared grid: writes restricted to the task's
/// region, reads anywhere (per the safety contract of
/// [`SharedGrid::task_view`]).
pub struct TaskView<'g, C: Cell> {
    grid: &'g SharedGrid<C>,
    region: TileRegion,
}

impl<C: Cell> TaskView<'_, C> {
    /// The writable region.
    pub fn region(&self) -> TileRegion {
        self.region
    }
}

impl<C: Cell> DpGrid<C> for TaskView<'_, C> {
    fn dims(&self) -> GridDims {
        self.grid.dims
    }

    #[inline]
    fn get(&self, row: u32, col: u32) -> C {
        // SAFETY: per the view contract the cell is either ours or final.
        unsafe { *self.grid.cells[self.grid.idx(row, col)].get() }
    }

    #[inline]
    fn set(&mut self, row: u32, col: u32, value: C) {
        // Hot path: the region check is a debug assertion; release builds
        // rely on the DAG schedule (and the bulk write_row check).
        debug_assert!(
            self.region.contains(easyhps_core::GridPos::new(row, col)),
            "task wrote ({row},{col}) outside its region {:?}",
            self.region
        );
        // SAFETY: in-region writes are exclusive per the view contract.
        unsafe { *self.grid.cells[self.grid.idx(row, col)].get() = value }
    }

    fn row_slice(&self, row: u32, col_start: u32, col_end: u32) -> Option<&[C]> {
        // SAFETY: the view's read contract (cells finalized or owned) is
        // exactly row_span's no-concurrent-writer requirement.
        Some(unsafe { self.grid.row_span(row, col_start, col_end) })
    }

    fn write_row(&mut self, row: u32, col_start: u32, values: &[C]) {
        let col_end = col_start + values.len() as u32;
        // One region check per row instead of per cell.
        assert!(
            row >= self.region.row_start
                && row < self.region.row_end
                && col_start >= self.region.col_start
                && col_end <= self.region.col_end,
            "task wrote row {row} cols [{col_start},{col_end}) outside its region {:?}",
            self.region
        );
        // SAFETY: the row span is inside the view's region, where writes
        // are exclusive per the view contract.
        unsafe { self.grid.write_row_span(row, col_start, values) }
    }
}

/// Whole-grid mutable access (strip decode, result encode) while no task
/// views exist.
pub struct ExclusiveGrid<'g, C: Cell> {
    grid: &'g mut SharedGrid<C>,
}

impl<C: Cell> ExclusiveGrid<'_, C> {
    /// Overwrite `region` from wire bytes (see
    /// [`DpMatrix::decode_region`] for the format).
    pub fn decode_region(&mut self, region: TileRegion, bytes: &[u8]) {
        assert_eq!(
            bytes.len(),
            region.area() as usize * C::WIRE_SIZE,
            "byte length does not match region {region:?}"
        );
        if region.cols() == 0 {
            return;
        }
        let row_bytes = region.cols() as usize * C::WIRE_SIZE;
        let mut scratch = vec![C::default(); region.cols() as usize];
        for (r, chunk) in (region.row_start..region.row_end).zip(bytes.chunks_exact(row_bytes)) {
            C::decode_slice(&mut scratch, chunk);
            // SAFETY: &mut SharedGrid inside excludes concurrent access.
            unsafe { self.grid.write_row_span(r, region.col_start, &scratch) };
        }
    }

    /// Serialize `region` to wire bytes.
    pub fn encode_region(&self, region: TileRegion) -> Vec<u8> {
        let mut out = Vec::with_capacity(region.area() as usize * C::WIRE_SIZE);
        for r in region.row_start..region.row_end {
            // SAFETY: &mut SharedGrid inside excludes concurrent access.
            let row = unsafe { self.grid.row_span(r, region.col_start, region.col_end) };
            C::encode_slice(row, &mut out);
        }
        out
    }
}

impl<C: Cell> DpGrid<C> for ExclusiveGrid<'_, C> {
    fn dims(&self) -> GridDims {
        self.grid.dims
    }

    #[inline]
    fn get(&self, row: u32, col: u32) -> C {
        // SAFETY: the &mut SharedGrid inside excludes concurrent access.
        unsafe { *self.grid.cells[self.grid.idx(row, col)].get() }
    }

    #[inline]
    fn set(&mut self, row: u32, col: u32, value: C) {
        // SAFETY: as above.
        unsafe { *self.grid.cells[self.grid.idx(row, col)].get() = value }
    }

    fn row_slice(&self, row: u32, col_start: u32, col_end: u32) -> Option<&[C]> {
        // SAFETY: the &mut SharedGrid inside excludes concurrent access.
        Some(unsafe { self.grid.row_span(row, col_start, col_end) })
    }

    fn write_row(&mut self, row: u32, col_start: u32, values: &[C]) {
        // SAFETY: as above.
        unsafe { self.grid.write_row_span(row, col_start, values) }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use easyhps_core::GridPos;

    #[test]
    fn exclusive_roundtrip() {
        let mut g = SharedGrid::<i32>::new(GridDims::new(3, 4));
        let mut ex = g.as_exclusive();
        ex.set(1, 2, 42);
        assert_eq!(ex.get(1, 2), 42);
        assert_eq!(ex.get(0, 0), 0);
        let m = g.to_matrix();
        assert_eq!(m.get(1, 2), 42);
    }

    #[test]
    fn task_view_writes_own_region() {
        let g = SharedGrid::<i32>::new(GridDims::square(4));
        let region = TileRegion::new(1, 3, 1, 3);
        // SAFETY: single thread, no other views.
        let mut v = unsafe { g.task_view(region) };
        v.set(1, 1, 5);
        v.set(2, 2, 6);
        assert_eq!(v.get(1, 1), 5);
        assert_eq!(v.get(0, 0), 0, "reads outside region are allowed");
    }

    // `set`'s region check is a debug assertion (hot path); only the bulk
    // `write_row` check fires in release builds.
    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "outside its region")]
    fn task_view_rejects_out_of_region_write() {
        let g = SharedGrid::<i32>::new(GridDims::square(4));
        let mut v = unsafe { g.task_view(TileRegion::new(0, 2, 0, 2)) };
        v.set(3, 3, 1);
    }

    #[test]
    #[should_panic(expected = "outside its region")]
    fn task_view_rejects_out_of_region_row_write() {
        let g = SharedGrid::<i32>::new(GridDims::square(4));
        let mut v = unsafe { g.task_view(TileRegion::new(0, 2, 0, 2)) };
        v.write_row(1, 1, &[7, 8]); // cols [1,3) spill out of [0,2)
    }

    #[test]
    fn task_view_row_slice_and_write_row() {
        let g = SharedGrid::<i32>::new(GridDims::new(3, 5));
        let region = TileRegion::new(1, 2, 1, 4);
        let mut v = unsafe { g.task_view(region) };
        v.write_row(1, 1, &[10, 20, 30]);
        assert_eq!(v.row_slice(1, 1, 4), Some(&[10, 20, 30][..]));
        assert_eq!(
            v.row_slice(0, 0, 5),
            Some(&[0; 5][..]),
            "reads outside region allowed"
        );
        let mut buf = [0i32; 2];
        v.read_row_into(1, 2, &mut buf);
        assert_eq!(buf, [20, 30]);
    }

    #[test]
    fn strip_encode_decode() {
        let mut g = SharedGrid::<i32>::new(GridDims::square(3));
        let mut ex = g.as_exclusive();
        for p in GridDims::square(3).iter() {
            ex.set(p.row, p.col, (p.row * 3 + p.col) as i32);
        }
        let region = TileRegion::new(0, 2, 1, 3);
        let bytes = ex.encode_region(region);
        let mut g2 = SharedGrid::<i32>::new(GridDims::square(3));
        g2.as_exclusive().decode_region(region, &bytes);
        let m2 = g2.to_matrix();
        for p in region.iter() {
            assert_eq!(m2.at(p), (p.row * 3 + p.col) as i32);
        }
        assert_eq!(m2.at(GridPos::new(2, 2)), 0);
    }

    #[test]
    fn concurrent_disjoint_writers() {
        // Two threads write disjoint halves; channel join synchronizes.
        let g = SharedGrid::<i64>::new(GridDims::new(2, 100));
        std::thread::scope(|s| {
            let top = unsafe { g.task_view(TileRegion::new(0, 1, 0, 100)) };
            let bottom = unsafe { g.task_view(TileRegion::new(1, 2, 0, 100)) };
            s.spawn(move || {
                let mut v = top;
                for c in 0..100 {
                    v.set(0, c, c as i64);
                }
            });
            s.spawn(move || {
                let mut v = bottom;
                for c in 0..100 {
                    v.set(1, c, -(c as i64));
                }
            });
        });
        let mut g = g;
        let m = g.to_matrix();
        for c in 0..100u32 {
            assert_eq!(m.get(0, c), c as i64);
            assert_eq!(m.get(1, c), -(c as i64));
        }
    }
}
