//! The master part: process-level scheduling and fault tolerance (paper
//! §V-B, Figs. 9-10).
//!
//! The master scheduling loop parses the master DAG, assigns computable
//! sub-tasks (with input strips from the global matrix) to idle slaves,
//! collects results, and updates the DAG. A separate fault-tolerance
//! thread scans the overtime queue: a sub-task overdue past
//! `task_timeout` has its registration cancelled and is pushed back onto
//! the computable stack, and its slave is excluded from further
//! scheduling. The sub-task register table makes duplicate completions
//! (from slow-but-alive slaves) harmless.
//!
//! One deviation from the paper's thread layout: instead of one blocking
//! worker thread per slave node sharing the MPI context, the master
//! multiplexes all slaves on its single endpoint and keeps a worker *slot*
//! per slave. The observable protocol and scheduling behaviour are
//! identical; only the thread count differs.

use crate::checkpoint::Checkpoint;
use crate::config::{Deployment, MasterStats};
use crate::pool::{OvertimeQueue, RegisterTable, TaskStack};
use crate::protocol::{tags, AssignMsg, DoneMsg, SlaveStatsMsg};
use crate::RuntimeError;
use bytes::Bytes;
use easyhps_core::ScheduleMode;
use easyhps_core::{DagDataDrivenModel, DagParser, Trace, VertexId};
use easyhps_dp::{DpMatrix, DpProblem};
use easyhps_net::{Endpoint, NetError, Rank};
use parking_lot::Mutex;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// State shared between the master scheduling loop and the
/// fault-tolerance thread.
struct MasterShared {
    parser: DagParser,
    register: RegisterTable,
    overtime: OvertimeQueue,
    finished: TaskStack,
    /// Liveness per slave (index = rank - 1).
    alive: Vec<bool>,
    redispatched: u64,
    dead_slaves: u64,
}

/// Outcome of a master run.
pub struct MasterOutput<C: easyhps_dp::Cell> {
    /// The fully computed global matrix.
    pub matrix: DpMatrix<C>,
    /// Master counters.
    pub stats: MasterStats,
    /// Stats reported by each slave on shutdown (None for dead slaves).
    pub slave_stats: Vec<Option<SlaveStatsMsg>>,
    /// Wall-clock duration.
    pub elapsed: Duration,
    /// Master-observed schedule: one span per tile execution
    /// (assign-sent to completion-accepted), lane per slave. Render with
    /// [`Trace::gantt`].
    pub trace: Trace,
    /// Snapshot of the finished sub-tasks, present when the run stopped at
    /// a tile budget before completing; resume with
    /// [`crate::EasyHps::resume_from`].
    pub checkpoint: Option<Checkpoint>,
}

/// Run the master loop to completion. `ep` must be rank 0 of a network
/// whose ranks `1..=config.slaves` run [`crate::run_slave`].
pub fn run_master<P: DpProblem>(
    ep: Endpoint,
    problem: &P,
    model: &DagDataDrivenModel,
    config: &Deployment,
) -> Result<MasterOutput<P::Cell>, RuntimeError> {
    run_master_with(ep, problem, model, config, None, None)
}

/// [`run_master`] with checkpoint/restart controls: `resume` preloads the
/// finished sub-tasks of a prior run; `tile_budget` stops dispatching
/// after that many completions (counting resumed ones) and returns a
/// [`Checkpoint`] in the output.
pub fn run_master_with<P: DpProblem>(
    mut ep: Endpoint,
    problem: &P,
    model: &DagDataDrivenModel,
    config: &Deployment,
    resume: Option<&Checkpoint>,
    tile_budget: Option<u64>,
) -> Result<MasterOutput<P::Cell>, RuntimeError> {
    if config.slaves == 0 {
        return Err(RuntimeError::NoSlaves);
    }
    let t0 = Instant::now();

    // Step a: master DAG Data Driven Model initialization (+ validation:
    // the race-freedom argument of the shared grid depends on it).
    let dag = Arc::new(model.master_dag());
    dag.validate()?;
    let tile_cols = dag.dims().cols;
    let n_slaves = config.slaves;

    let shared = Arc::new(Mutex::new(MasterShared {
        parser: DagParser::new(&dag),
        register: RegisterTable::new(dag.len()),
        overtime: OvertimeQueue::new(),
        finished: TaskStack::new(),
        alive: vec![true; n_slaves],
        redispatched: 0,
        dead_slaves: 0,
    }));

    // Step b: start the fault-tolerance thread. It waits on a shutdown
    // channel rather than sleeping so teardown does not pay up to one
    // full `ft_poll` interval joining it.
    let (ft_stop_tx, ft_stop_rx) = crossbeam::channel::unbounded::<()>();
    let ft_shared = shared.clone();
    let ft_dag = dag.clone();
    let (timeout, poll) = (config.task_timeout, config.ft_poll);
    let ft = std::thread::spawn(move || {
        use crossbeam::channel::RecvTimeoutError;
        while ft_stop_rx.recv_timeout(poll) == Err(RecvTimeoutError::Timeout) {
            let mut s = ft_shared.lock();
            // Step g: redistribute overdue sub-tasks, exclude their slaves.
            for entry in s.overtime.drain_overdue(timeout) {
                if s.register.accepts(entry.task, entry.executor) {
                    s.register.cancel(entry.task);
                    s.parser
                        .fail(&ft_dag, VertexId(entry.task))
                        .expect("overdue task is running");
                    if s.alive[entry.executor as usize] {
                        s.alive[entry.executor as usize] = false;
                        s.dead_slaves += 1;
                    }
                    s.redispatched += 1;
                }
            }
        }
    });

    let mut matrix = DpMatrix::<P::Cell>::new(model.dag_size());
    let mut idle = vec![false; n_slaves];
    let mut stats = MasterStats::default();
    let mut trace = Trace::new();
    // Start instants per in-flight (task, slave) for trace spans.
    let mut started: Vec<Option<Instant>> = vec![None; dag.len()];
    let mut completed_tasks: Vec<VertexId> = Vec::new();

    // Resume: restore finished regions and fast-forward the parser. The
    // finished set of a valid checkpoint is ancestor-closed, so walking a
    // topological order completes each task the moment it is computable.
    if let Some(cp) = resume {
        cp.restore_into(&mut matrix);
        let preload: std::collections::HashSet<u32> = cp.finished_tasks().map(|v| v.0).collect();
        let order = dag.topological_order()?;
        let mut s = shared.lock();
        for v in order {
            if preload.contains(&v.0) {
                let claimed = s
                    .parser
                    .pop_computable_matching(|x| x == v)
                    .expect("checkpointed set must be ancestor-closed");
                s.parser
                    .complete(&dag, claimed, None)
                    .expect("claimed task completes");
                completed_tasks.push(v);
                stats.completed += 1;
            }
        }
    }
    let budget_reached = |stats: &MasterStats| tile_budget.is_some_and(|b| stats.completed >= b);
    let _ = problem; // kernels run slave-side; the master only routes data

    let result: Result<(), RuntimeError> = (|| {
        loop {
            // Steps c-d: dispatch computable sub-tasks to idle live slaves.
            {
                let mut s = shared.lock();
                #[allow(clippy::needless_range_loop)] // w doubles as the rank id
                for w in 0..n_slaves {
                    if !idle[w] || !s.alive[w] {
                        continue;
                    }
                    let picked = if config.process_mode == ScheduleMode::Dynamic {
                        s.parser.pop_computable()
                    } else {
                        s.parser.pop_computable_matching(|v| {
                            config.process_mode.static_owner(
                                dag.vertex(v).pos,
                                tile_cols,
                                n_slaves as u32,
                            ) == Some(w as u32)
                        })
                    };
                    let Some(v) = picked else { continue };
                    let vertex = dag.vertex(v);
                    let inputs: Vec<_> = vertex
                        .data_deps
                        .iter()
                        .map(|d| {
                            let region = model.tile_region(dag.vertex(*d).pos);
                            (region, matrix.encode_region(region))
                        })
                        .collect();
                    let msg = AssignMsg {
                        task: v.0,
                        tile: vertex.pos,
                        region: model.tile_region(vertex.pos),
                        inputs,
                    };
                    s.register.register(v.0, w as u32);
                    s.overtime.push(v.0, w as u32);
                    idle[w] = false;
                    stats.dispatched += 1;
                    started[v.index()] = Some(Instant::now());
                    if ep
                        .send(Rank(w as u32 + 1), tags::ASSIGN, msg.encode())
                        .is_err()
                    {
                        // Slave endpoint gone: undo and exclude it.
                        s.register.cancel(v.0);
                        s.overtime.remove(v.0);
                        s.parser.fail(&dag, v).expect("just popped");
                        if s.alive[w] {
                            s.alive[w] = false;
                            s.dead_slaves += 1;
                        }
                    }
                }

                if s.parser.is_done() || budget_reached(&stats) {
                    break;
                }
                if s.alive.iter().all(|a| !a) {
                    return Err(RuntimeError::AllSlavesDead);
                }
            }

            // Steps e-f, h: collect completions and idle signals.
            match ep.recv_timeout(Duration::from_millis(2)) {
                Ok(env) => {
                    let w = (env.src.0 as usize).wrapping_sub(1);
                    match env.tag {
                        tags::IDLE => {
                            if w < n_slaves {
                                idle[w] = true;
                            }
                        }
                        tags::DONE => {
                            let msg = DoneMsg::decode(&env.payload)?;
                            let mut s = shared.lock();
                            if w < n_slaves {
                                idle[w] = true;
                            }
                            if s.register.accepts(msg.task, w as u32) {
                                if let Some(start) = started[msg.task as usize].take() {
                                    trace.record(
                                        format!("slave{w}"),
                                        "#",
                                        start.duration_since(t0).as_nanos() as u64,
                                        Instant::now().duration_since(t0).as_nanos() as u64,
                                    );
                                }
                                matrix.decode_region(msg.region, &msg.output);
                                s.register.cancel(msg.task);
                                s.overtime.remove(msg.task);
                                s.finished.push(msg.task);
                                // Step h: update the DAG Pattern Model.
                                while let Some(t) = s.finished.pop() {
                                    s.parser
                                        .complete(&dag, VertexId(t), None)
                                        .expect("registered completion is running");
                                }
                                stats.completed += 1;
                                completed_tasks.push(VertexId(msg.task));
                            } else {
                                stats.stale_completions += 1;
                            }
                        }
                        tags::STATS => { /* late stats, ignore */ }
                        other => debug_assert!(false, "master received unexpected {other}"),
                    }
                }
                Err(NetError::Timeout) => {}
                Err(e) => return Err(e.into()),
            }
        }
        Ok(())
    })();

    // Step i: tear down. Dropping the sender disconnects the shutdown
    // channel, waking the fault-tolerance thread immediately.
    drop(ft_stop_tx);
    ft.join().expect("fault-tolerance thread never panics");
    result?;

    let final_shared = shared.lock();
    stats.redispatched = final_shared.redispatched;
    stats.dead_slaves = final_shared.dead_slaves;
    let alive = final_shared.alive.clone();
    drop(final_shared);

    // Send END to every slave (dead ones may never read it) and collect
    // final stats from the live ones.
    let mut slave_stats: Vec<Option<SlaveStatsMsg>> = vec![None; n_slaves];
    for w in 0..n_slaves {
        let _ = ep.send(Rank(w as u32 + 1), tags::END, Bytes::new());
    }
    let mut expected: usize = alive.iter().filter(|a| **a).count();
    let deadline = Instant::now() + Duration::from_secs(2);
    while expected > 0 && Instant::now() < deadline {
        match ep.recv_timeout(Duration::from_millis(50)) {
            Ok(env) if env.tag == tags::STATS => {
                let w = (env.src.0 as usize).wrapping_sub(1);
                if w < n_slaves && slave_stats[w].is_none() {
                    slave_stats[w] = Some(SlaveStatsMsg::decode(&env.payload)?);
                    expected -= 1;
                }
            }
            Ok(_) => {} // stray IDLE/DONE from dying slaves
            Err(NetError::Timeout) => {}
            Err(_) => break,
        }
    }

    let net = ep.stats();
    stats.msgs_sent = net.sent_msgs;
    stats.bytes_sent = net.sent_bytes;
    stats.msgs_recv = net.recv_msgs;
    stats.bytes_recv = net.recv_bytes;

    let checkpoint = (!shared.lock().parser.is_done())
        .then(|| Checkpoint::capture(model, &dag, &matrix, completed_tasks.iter().copied()));

    Ok(MasterOutput {
        matrix,
        stats,
        slave_stats,
        elapsed: t0.elapsed(),
        trace,
        checkpoint,
    })
}
