//! The master part: the threaded driver of the process-level scheduler
//! (paper §V-B, Figs. 9-10).
//!
//! Every scheduling decision — dispatch and DONE accounting, the overdue
//! drain, slow-vs-dead exclusion and re-admission, static→dynamic orphan
//! fallback, budget stop, teardown drain — lives in the pure
//! [`crate::sched::MasterSched`] state machine. This file is the I/O
//! shell: it translates network frames and real timers into
//! [`crate::sched::MasterEvent`]s, and the machine's
//! [`crate::sched::MasterAction`]s into reliable sends, matrix writes,
//! trace spans and metrics. The old separate fault-tolerance thread is
//! gone: the FT sweep is the [`crate::sched::MasterEvent::FtTick`] event,
//! fired from the single loop at `ft_poll` cadence, so the FT-vs-scheduler
//! interleaving class no longer exists in the runtime at all (and the
//! deterministic explorer can place the sweep anywhere it likes).
//!
//! Control messages travel over a [`ReliableEndpoint`]: every
//! ASSIGN/DONE/END is sequence-numbered, acknowledged and retransmitted
//! with backoff, so a lossy link delays the protocol instead of breaking
//! it. Liveness is decided by heartbeats, not by individual message
//! outcomes: a slave is excluded only when it is *unreachable* (its
//! endpoint is gone — permanent) or has been *silent* past
//! `heartbeat_timeout` (no frame of any kind, including acks). A slave
//! that is merely slow keeps heartbeating and stays in the schedule even
//! if its current sub-task is timed out and redistributed; a slave that
//! was excluded during a transient outage is re-admitted the moment it is
//! heard from again.
//!
//! One deviation from the paper's thread layout: instead of one blocking
//! worker thread per slave node sharing the MPI context, the master
//! multiplexes all slaves on its single endpoint and keeps a worker *slot*
//! per slave. The observable protocol and scheduling behaviour are
//! identical; only the thread count differs.

use crate::checkpoint::Checkpoint;
use crate::config::{Deployment, MasterStats};
use crate::durable::CheckpointStore;
use crate::obs::{lane_of, publish_endpoint_stats, registry_of, MasterMetrics, TID_FT, TID_NET};
use crate::protocol::{tags, AssignMsg, DoneMsg, SlaveStatsMsg};
use crate::sched::{fail_kind, MasterAction, MasterEvent, MasterSched};
use crate::RuntimeError;
use bytes::Bytes;
use easyhps_core::{DagDataDrivenModel, TaskDag, Trace, VertexId};
use easyhps_dp::{DpMatrix, DpProblem};
use easyhps_net::{Endpoint, FleetAcceptor, MembershipEvent, NetError, Rank, ReliableEndpoint};
use std::collections::HashMap;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Control surface between an elastic fleet and its running master.
///
/// The acceptor (when the fleet is socket-backed) admits reconnecting and
/// brand-new slaves in the background; the master drains its membership
/// events every loop iteration and re-fences the transport. The drain
/// list carries operator requests ("release rank N once its in-flight
/// work lands") from the daemon's RPC surface into the same loop. A local
/// fleet has no acceptor but can still drain.
#[derive(Clone, Default)]
pub struct FleetControl {
    /// Elastic acceptor admitting reconnections and mid-run joiners.
    /// `None` for fixed-membership (local or `accept_ranks`) fleets,
    /// where only drain requests apply.
    pub acceptor: Option<Arc<FleetAcceptor>>,
    /// Ranks the operator asked to drain. The running master consumes
    /// them, stops assigning to each, and releases the rank back to the
    /// fleet free-list once its last in-flight sub-task lands.
    pub drain: Arc<Mutex<Vec<u32>>>,
    /// Ranks the master released (drain completed). The fleet reads this
    /// at the next job boundary to retire the rank from fixed-membership
    /// bookkeeping; elastic fleets learn the same thing from the
    /// acceptor's free-list.
    pub released: Arc<Mutex<Vec<u32>>>,
}

impl FleetControl {
    /// Control block over `acceptor` (pass `None` for a fixed fleet).
    pub fn new(acceptor: Option<Arc<FleetAcceptor>>) -> Self {
        Self {
            acceptor,
            drain: Arc::new(Mutex::new(Vec::new())),
            released: Arc::new(Mutex::new(Vec::new())),
        }
    }

    /// Ask the running (or next) master to drain `rank` gracefully.
    pub fn request_drain(&self, rank: u32) {
        self.drain.lock().unwrap().push(rank);
    }
}

/// Perform a [`MasterAction::Release`]: hand the rank back to the
/// acceptor's free-list (elastic fleets) and record it for the fleet's
/// job-boundary bookkeeping.
fn fleet_release(fleet: Option<&FleetControl>, slave: usize) {
    if let Some(fc) = fleet {
        let rank = slave as u32 + 1;
        if let Some(acc) = &fc.acceptor {
            acc.release_rank(rank);
        }
        fc.released.lock().unwrap().push(rank);
    }
}

/// Outcome of a master run.
pub struct MasterOutput<C: easyhps_dp::Cell> {
    /// The fully computed global matrix.
    pub matrix: DpMatrix<C>,
    /// Master counters.
    pub stats: MasterStats,
    /// Stats reported by each slave on shutdown (None for dead slaves).
    pub slave_stats: Vec<Option<SlaveStatsMsg>>,
    /// Wall-clock duration.
    pub elapsed: Duration,
    /// Master-observed schedule: one span per tile execution
    /// (assign-sent to completion-accepted), lane per slave. Render with
    /// [`Trace::gantt`].
    pub trace: Trace,
    /// Snapshot of the finished sub-tasks, present when the run stopped at
    /// a tile budget before completing; resume with
    /// [`crate::EasyHps::resume_from`].
    pub checkpoint: Option<Checkpoint>,
}

/// Driver-side bookkeeping for accepted completions, shared between the
/// main loop and the teardown drain.
struct DoneCtx<'a, C: easyhps_dp::Cell> {
    t0: Instant,
    started: &'a mut Vec<Option<(Instant, u64)>>,
    trace: &'a mut Trace,
    slot_lanes: &'a mut Vec<easyhps_obs::LaneBuf>,
    matrix: &'a mut DpMatrix<C>,
    mm: &'a MasterMetrics,
    completed_tasks: &'a mut Vec<VertexId>,
}

impl<C: easyhps_dp::Cell> DoneCtx<'_, C> {
    /// The machine accepted `msg` from slave `w`: close the trace span,
    /// decode the result region into the global matrix, count it.
    fn accept(&mut self, w: usize, msg: &DoneMsg) {
        if let Some((start, start_ns)) = self.started[msg.task as usize].take() {
            let end = Instant::now();
            self.trace.record(
                format!("slave{w}"),
                "#",
                start.duration_since(self.t0).as_nanos() as u64,
                end.duration_since(self.t0).as_nanos() as u64,
            );
            self.mm
                .tile_latency
                .observe(end.duration_since(start).as_nanos() as u64);
            self.slot_lanes[w].span_since(
                "tile",
                "master",
                start_ns,
                Some(("task", u64::from(msg.task))),
            );
        }
        self.matrix.decode_region(msg.region, &msg.output);
        self.mm.completed.inc();
        self.completed_tasks.push(VertexId(msg.task));
    }
}

/// Run the master loop to completion. `ep` must be rank 0 of a network
/// whose ranks `1..=config.slaves` run [`crate::run_slave`].
pub fn run_master<P: DpProblem>(
    ep: Endpoint,
    problem: &P,
    model: &DagDataDrivenModel,
    config: &Deployment,
) -> Result<MasterOutput<P::Cell>, RuntimeError> {
    run_master_with(ep, problem, model, config, None, None)
}

/// [`run_master`] with checkpoint/restart controls: `resume` preloads the
/// finished sub-tasks of a prior run; `tile_budget` stops dispatching
/// after that many completions (counting resumed ones) and returns a
/// [`Checkpoint`] in the output.
pub fn run_master_with<P: DpProblem>(
    ep: Endpoint,
    problem: &P,
    model: &DagDataDrivenModel,
    config: &Deployment,
    resume: Option<&Checkpoint>,
    tile_budget: Option<u64>,
) -> Result<MasterOutput<P::Cell>, RuntimeError> {
    run_master_fleet(ep, problem, model, config, resume, tile_budget, None)
}

/// [`run_master_with`] for an *elastic* fleet: when `fleet` is given, the
/// master polls its acceptor for membership changes every loop iteration
/// — splices are transparent, new incarnations are re-fenced under a
/// bumped epoch (their zombie DONEs rejected by the epoch echo), mid-run
/// joiners grow the schedule — and consumes its drain requests.
#[allow(clippy::too_many_lines)] // the one I/O shell around the machine
pub fn run_master_fleet<P: DpProblem>(
    ep: Endpoint,
    problem: &P,
    model: &DagDataDrivenModel,
    config: &Deployment,
    resume: Option<&Checkpoint>,
    tile_budget: Option<u64>,
    fleet: Option<&FleetControl>,
) -> Result<MasterOutput<P::Cell>, RuntimeError> {
    if config.slaves == 0 {
        return Err(RuntimeError::NoSlaves);
    }
    let t0 = Instant::now();
    let params = config.sched_params();
    let mut rep = ReliableEndpoint::new(ep, config.retry.clone());

    let obs = config.obs.clone();
    let registry = registry_of(&obs);
    let mm = MasterMetrics::register(&registry);
    let mut lane = lane_of(&obs, 0, 0);
    let mut ft_lane = lane_of(&obs, 0, TID_FT);
    rep.set_event_lane(lane_of(&obs, 0, TID_NET));
    if let Some(rec) = &obs.recorder {
        rec.name_process(0, "master");
        rec.name_thread(0, 0, "scheduler");
        for w in 0..config.slaves {
            rec.name_thread(0, 1 + w as u32, format!("slot{w}"));
        }
        rec.name_thread(0, TID_FT, "fault-tolerance");
        rec.name_thread(0, TID_NET, "net");
    }

    // Step a: master DAG Data Driven Model initialization (+ validation:
    // the race-freedom argument of the shared grid depends on it).
    let dag: TaskDag = model.master_dag();
    dag.validate()?;
    let mut n_slaves = config.slaves;
    let acceptor = fleet.and_then(|f| f.acceptor.as_deref());
    // Epoch each slot's ASSIGNs are stamped with. The slave echoes the
    // stamp blindly, so any init consistent with the fencing check is
    // correct — the acceptor's global epoch at start covers the initial
    // members; what matters is the bump on Rejoined. Fixed fleets stay
    // at epoch 0 forever and the fence never fires.
    let epoch0 = acceptor.map_or(0, FleetAcceptor::epoch);
    let mut cur_epoch: Vec<u64> = vec![epoch0; n_slaves];

    // Durable checkpoint store: opened before anything touches the
    // network, so a refused directory (dims mismatch, prior run present
    // without --resume) fails the run early.
    let dims = model.dag_size();
    let mut store = match &config.checkpoint {
        Some(pol) => Some(CheckpointStore::open(
            pol,
            dims.rows,
            dims.cols,
            resume.is_some(),
        )?),
        None => None,
    };
    // Prefix of `completed_tasks` already flushed to the store.
    let mut flush_idx: usize = 0;
    let mut last_flush = t0;

    // Steps b-i all live in the state machine; this function only drives
    // it. Nanosecond virtual time = wall time since `t0`.
    let mut sched = MasterSched::new(&dag, n_slaves, config.process_mode, &params, tile_budget);
    let ns = |t: Instant| t.saturating_duration_since(t0).as_nanos() as u64;

    let mut matrix = DpMatrix::<P::Cell>::new(model.dag_size());
    let mut trace = Trace::new();
    // Start instants per in-flight task for trace spans: the wall-clock
    // instant for `Trace` / tile-latency, and the recorder timestamp for
    // the slot-lane event span.
    let mut started: Vec<Option<(Instant, u64)>> = vec![None; dag.len()];
    // One event lane per slave slot: tile spans from assign-sent to
    // completion-accepted, as the master observed them.
    let mut slot_lanes: Vec<easyhps_obs::LaneBuf> = (0..n_slaves)
        .map(|w| lane_of(&obs, 0, 1 + w as u32))
        .collect();
    let mut completed_tasks: Vec<VertexId> = Vec::new();
    // Reliable-send bookkeeping: (slave, sequence number) of every ASSIGN
    // whose delivery is not yet known, so an abandoned send can roll the
    // dispatch back.
    let mut inflight: HashMap<(usize, u64), u32> = HashMap::new();

    // Resume: restore finished regions and fast-forward the machine. The
    // finished set of a valid checkpoint is ancestor-closed, so walking a
    // topological order completes each task the moment it is computable;
    // a corrupt set surfaces as a SchedulerInvariant error, not a panic.
    if let Some(cp) = resume {
        cp.restore_into(&mut matrix);
        let preload: std::collections::HashSet<u32> = cp.finished_tasks().map(|v| v.0).collect();
        for v in dag.topological_order()? {
            if preload.contains(&v.0) {
                sched.preload_finished(&dag, v)?;
                completed_tasks.push(v);
                mm.resumed.inc();
                if store.as_ref().is_some_and(|st| st.is_durable(v.0)) {
                    mm.restored.inc();
                }
            }
        }
        lane.instant("resume", "checkpoint", Some(("tiles", mm.resumed.get())));
    }
    let _ = problem; // kernels run slave-side; the master only routes data

    let mut last_ft = Instant::now();

    let result: Result<(), RuntimeError> = (|| {
        'run: loop {
            let now = Instant::now();

            // Membership first: a rejoin must re-fence the transport
            // before this iteration stamps any new ASSIGN, and a joiner
            // must exist before its first frame is dispatched on.
            if let Some(acc) = acceptor {
                for ev in acc.poll_events() {
                    let (rank, epoch) = match ev {
                        // Same incarnation, spliced stream: the reliable
                        // layer's retransmits already cover the gap.
                        MembershipEvent::Relinked { rank } => {
                            lane.instant("relink", "fleet", Some(("rank", u64::from(rank))));
                            continue;
                        }
                        MembershipEvent::Rejoined { rank, epoch }
                        | MembershipEvent::Joined { rank, epoch } => (rank, epoch),
                    };
                    let w = (rank as usize).wrapping_sub(1);
                    if rank == 0 {
                        continue;
                    }
                    // A joiner past the current fleet grows every
                    // driver-side per-slot structure before the machine.
                    if w >= n_slaves {
                        for i in n_slaves..=w {
                            slot_lanes.push(lane_of(&obs, 0, 1 + i as u32));
                            cur_epoch.push(epoch0);
                            if let Some(rec) = &obs.recorder {
                                rec.name_thread(0, 1 + i as u32, format!("slot{i}"));
                            }
                        }
                        n_slaves = w + 1;
                    }
                    rep.ensure_ranks(w + 2);
                    for a in sched.on_event(
                        &dag,
                        MasterEvent::Rejoined {
                            slave: w,
                            now_ns: ns(Instant::now()),
                        },
                    )? {
                        match a {
                            MasterAction::Redispatch { task } => {
                                mm.redispatched.inc();
                                lane.instant(
                                    "rejoin-redispatch",
                                    "fleet",
                                    Some(("task", u64::from(task))),
                                );
                            }
                            MasterAction::Readmit { slave } => {
                                mm.dead_slaves.add(-1);
                                mm.readmissions.inc();
                                lane.instant("readmit", "ft", Some(("slave", slave as u64)));
                            }
                            MasterAction::Refence { slave } => {
                                // New incarnation: its sequence numbers
                                // restarted, its predecessor's stamps are
                                // now stale, and its (slave, seq) ASSIGN
                                // bookkeeping is void.
                                rep.reset_peer(Rank(slave as u32 + 1));
                                inflight.retain(|(sw, _), _| *sw != slave);
                                cur_epoch[slave] = epoch;
                                mm.rejoins.inc();
                                lane.instant("rejoin", "fleet", Some(("slave", slave as u64)));
                            }
                            other => debug_assert!(false, "rejoin emitted {other:?}"),
                        }
                    }
                }
            }

            // Operator drain requests, from the CLI/daemon surface.
            if let Some(fc) = fleet {
                let drains: Vec<u32> = std::mem::take(&mut *fc.drain.lock().unwrap());
                for rank in drains {
                    let w = (rank as usize).wrapping_sub(1);
                    if rank == 0 || w >= n_slaves {
                        continue;
                    }
                    for a in sched.on_event(&dag, MasterEvent::DrainSlave { slave: w })? {
                        match a {
                            MasterAction::Release { slave } => {
                                fleet_release(fleet, slave);
                                lane.instant("release", "fleet", Some(("slave", slave as u64)));
                            }
                            other => debug_assert!(false, "drain emitted {other:?}"),
                        }
                    }
                }
            }

            // Sync heartbeat observations into the machine's liveness
            // record.
            for w in 0..n_slaves {
                if let Some(t) = rep.last_heard(Rank(w as u32 + 1)) {
                    sched.on_event(
                        &dag,
                        MasterEvent::Heard {
                            slave: w,
                            at_ns: ns(t),
                        },
                    )?;
                }
            }

            // The fault-tolerance sweep, at its own cadence inside the
            // one loop (no FT thread to race the scheduler).
            if last_ft.elapsed() >= params.ft_poll {
                last_ft = Instant::now();
                for a in sched.on_event(
                    &dag,
                    MasterEvent::FtTick {
                        now_ns: ns(last_ft),
                    },
                )? {
                    match a {
                        MasterAction::Redispatch { task } => {
                            mm.redispatched.inc();
                            ft_lane.instant("redispatch", "ft", Some(("task", u64::from(task))));
                        }
                        MasterAction::Exclude { slave } => {
                            mm.exclusions.inc();
                            mm.dead_slaves.add(1);
                            ft_lane.instant("exclude", "ft", Some(("slave", slave as u64)));
                        }
                        // The overdue drain can take back a draining
                        // slave's last in-flight sub-task.
                        MasterAction::Release { slave } => {
                            fleet_release(fleet, slave);
                            ft_lane.instant("release", "fleet", Some(("slave", slave as u64)));
                        }
                        other => debug_assert!(false, "FT sweep emitted {other:?}"),
                    }
                }
            }

            // One scheduling pass: re-admission, termination checks and
            // dispatch all come back as actions.
            for a in sched.on_event(&dag, MasterEvent::Tick { now_ns: ns(now) })? {
                match a {
                    MasterAction::Finished | MasterAction::BudgetStop => break 'run,
                    MasterAction::AllSlavesDead => return Err(RuntimeError::AllSlavesDead),
                    MasterAction::Readmit { slave } => {
                        mm.dead_slaves.add(-1);
                        mm.readmissions.inc();
                        lane.instant("readmit", "ft", Some(("slave", slave as u64)));
                    }
                    MasterAction::Assign { slave: w, task } => {
                        // Steps c-d: encode the tile's input strips and
                        // send the ASSIGN.
                        let v = VertexId(task);
                        let vertex = dag.vertex(v);
                        let inputs: Vec<_> = vertex
                            .data_deps
                            .iter()
                            .map(|d| {
                                let region = model.tile_region(dag.vertex(*d).pos);
                                (region, matrix.encode_region(region))
                            })
                            .collect();
                        let msg = AssignMsg {
                            task,
                            epoch: cur_epoch[w],
                            tile: vertex.pos,
                            region: model.tile_region(vertex.pos),
                            inputs,
                        };
                        match rep.send_reliable(Rank(w as u32 + 1), tags::ASSIGN, msg.encode()) {
                            Ok(seq) => {
                                mm.dispatched.inc();
                                started[v.index()] = Some((Instant::now(), slot_lanes[w].now_ns()));
                                inflight.insert((w, seq), task);
                            }
                            Err(_) => {
                                // Slave endpoint gone: the machine rolls
                                // the dispatch back (the task was never
                                // sent) and puts the slave permanently out.
                                mm.send_failures.inc();
                                for ra in sched.on_event(
                                    &dag,
                                    MasterEvent::AssignRejected { slave: w, task },
                                )? {
                                    if let MasterAction::Exclude { slave } = ra {
                                        mm.exclusions.inc();
                                        mm.dead_slaves.add(1);
                                        lane.instant(
                                            "exclude",
                                            "ft",
                                            Some(("slave", slave as u64)),
                                        );
                                    }
                                }
                            }
                        }
                    }
                    other => debug_assert!(false, "scheduling tick emitted {other:?}"),
                }
            }

            // Steps e-f, h: collect completions and idle signals. The
            // reliable endpoint retransmits pending sends while waiting.
            match rep.recv_timeout(params.recv_poll) {
                Ok(env) => {
                    let w = (env.src.0 as usize).wrapping_sub(1);
                    match env.tag {
                        tags::IDLE if w < n_slaves => {
                            sched.on_event(&dag, MasterEvent::Idle { slave: w })?;
                        }
                        tags::IDLE => { /* out-of-range source rank: ignore */ }
                        tags::HEARTBEAT => { /* liveness noted by the endpoint */ }
                        // Bound-check the source rank before touching any
                        // per-slave state — a frame from outside the slave
                        // range must not reach the machine.
                        tags::DONE if w < n_slaves => {
                            let msg = DoneMsg::decode(&env.payload)?;
                            // The epoch fence: a completion stamped by a
                            // since-replaced incarnation is counted and
                            // dropped before the register table is even
                            // consulted — it can never be accepted.
                            if msg.epoch != cur_epoch[w] {
                                mm.stale_epoch_rejected.inc();
                                let acts = sched.on_event(
                                    &dag,
                                    MasterEvent::StaleEpoch {
                                        slave: w,
                                        task: msg.task,
                                    },
                                )?;
                                debug_assert!(acts.is_empty(), "StaleEpoch emitted {acts:?}");
                                continue 'run;
                            }
                            let mut ctx = DoneCtx {
                                t0,
                                started: &mut started,
                                trace: &mut trace,
                                slot_lanes: &mut slot_lanes,
                                matrix: &mut matrix,
                                mm: &mm,
                                completed_tasks: &mut completed_tasks,
                            };
                            for a in sched.on_event(
                                &dag,
                                MasterEvent::Done {
                                    slave: w,
                                    task: msg.task,
                                },
                            )? {
                                match a {
                                    MasterAction::Accept { .. } => ctx.accept(w, &msg),
                                    MasterAction::Stale { .. } => mm.stale.inc(),
                                    MasterAction::Release { slave } => {
                                        fleet_release(fleet, slave);
                                        lane.instant(
                                            "release",
                                            "fleet",
                                            Some(("slave", slave as u64)),
                                        );
                                    }
                                    other => {
                                        debug_assert!(false, "DONE emitted {other:?}")
                                    }
                                }
                            }
                        }
                        tags::DONE => { /* out-of-range source rank: ignore */ }
                        tags::STATS => { /* late stats, ignore */ }
                        // A fleet slave idling outside this job (mid-run
                        // joiner already shipped the JOB by the acceptor,
                        // or a relinked slave sitting the job out)
                        // re-announces READY periodically; the barrier
                        // that wants it runs at the next job boundary.
                        tags::READY => {}
                        other => debug_assert!(false, "master received unexpected {other}"),
                    }
                }
                Err(NetError::Timeout) => {}
                Err(e) => return Err(e.into()),
            }

            // Abandoned reliable sends: the machine rolls the dispatch
            // back so the task is redistributable, and judges the slave by
            // its heartbeat — an unreachable peer is dead, a silent one
            // presumed dead (re-admitted later if it turns out merely
            // slow).
            for f in rep.take_failures() {
                mm.send_failures.inc();
                let w = (f.dst.0 as usize).wrapping_sub(1);
                if w >= n_slaves {
                    continue;
                }
                let assign_task = if f.tag == tags::ASSIGN {
                    inflight.remove(&(w, f.seq))
                } else {
                    None
                };
                let ev = MasterEvent::SendFailed {
                    slave: w,
                    assign_task,
                    reason: fail_kind(f.reason),
                    now_ns: ns(Instant::now()),
                };
                for a in sched.on_event(&dag, ev)? {
                    match a {
                        MasterAction::CancelAssign { task } => {
                            mm.redispatched.inc();
                            started[task as usize] = None;
                        }
                        MasterAction::Exclude { slave } => {
                            mm.exclusions.inc();
                            mm.dead_slaves.add(1);
                            lane.instant("exclude", "ft", Some(("slave", slave as u64)));
                        }
                        MasterAction::Release { slave } => {
                            fleet_release(fleet, slave);
                            lane.instant("release", "fleet", Some(("slave", slave as u64)));
                        }
                        other => debug_assert!(false, "send failure emitted {other:?}"),
                    }
                }
            }

            // Durable capture: flush tiles accepted since the last flush
            // once the policy's cadence is due — never on the DONE hot
            // path itself.
            if let (Some(st), Some(pol)) = (store.as_mut(), config.checkpoint.as_ref()) {
                let pending = (completed_tasks.len() - flush_idx) as u64;
                let due = (pol.every_tiles > 0 && pending >= pol.every_tiles)
                    || (pending > 0 && pol.every.is_some_and(|d| last_flush.elapsed() >= d));
                if due {
                    flush_durable(
                        st,
                        &mut flush_idx,
                        &completed_tasks,
                        model,
                        &dag,
                        &matrix,
                        &mm,
                        &mut lane,
                    )?;
                    last_flush = Instant::now();
                }
            }
        }
        Ok(())
    })();
    result?;

    // Step i: tear down. The machine stops dispatching; completions still
    // in flight are accepted into the matrix — on a budget stop they
    // would otherwise be recomputed after `resume_from`.
    sched.on_event(&dag, MasterEvent::Drain)?;
    let alive: Vec<bool> = sched.alive().to_vec();

    // Send END to every slave (dead ones may never read it; unreachable
    // ones fail immediately and are ignored) and collect final stats from
    // the live ones.
    let mut slave_stats: Vec<Option<SlaveStatsMsg>> = vec![None; n_slaves];
    for w in 0..n_slaves {
        let _ = rep.send_reliable(Rank(w as u32 + 1), tags::END, Bytes::new());
    }
    // Only slaves counted into `expected` may decrement it: a STATS from a
    // dead-marked (actually alive) slave is stored but must not make the
    // master stop waiting for a counted one.
    let mut counted = alive;
    let mut expected: usize = counted.iter().filter(|a| **a).count();
    // The drain must outlive the slowest legitimate reply: a slave's
    // STATS (or final DONE) can spend a full retransmit cycle in flight,
    // so the deadline scales with the configured `RetryPolicy` — the
    // floor and margin are the shared `SchedParams` constants.
    let deadline = Instant::now() + params.drain_deadline(config.retry.drain_budget());
    while (expected > 0 || rep.has_pending()) && Instant::now() < deadline {
        match rep.recv_timeout(params.teardown_recv) {
            Ok(env) => {
                let w = (env.src.0 as usize).wrapping_sub(1);
                match env.tag {
                    tags::STATS if w < n_slaves && slave_stats[w].is_none() => {
                        slave_stats[w] = Some(SlaveStatsMsg::decode(&env.payload)?);
                        if counted[w] {
                            counted[w] = false;
                            expected -= 1;
                        }
                    }
                    // Same rank guard as the main loop: a frame from an
                    // out-of-range rank is ignored outright, not counted
                    // stale (stale means "duplicate from a known slave").
                    tags::DONE if w < n_slaves => {
                        let msg = DoneMsg::decode(&env.payload)?;
                        // Same epoch fence as the main loop: teardown
                        // accepts late completions, never zombie ones.
                        if msg.epoch != cur_epoch[w] {
                            mm.stale_epoch_rejected.inc();
                            let acts = sched.on_event(
                                &dag,
                                MasterEvent::StaleEpoch {
                                    slave: w,
                                    task: msg.task,
                                },
                            )?;
                            debug_assert!(acts.is_empty(), "StaleEpoch emitted {acts:?}");
                            continue;
                        }
                        let mut ctx = DoneCtx {
                            t0,
                            started: &mut started,
                            trace: &mut trace,
                            slot_lanes: &mut slot_lanes,
                            matrix: &mut matrix,
                            mm: &mm,
                            completed_tasks: &mut completed_tasks,
                        };
                        for a in sched.on_event(
                            &dag,
                            MasterEvent::Done {
                                slave: w,
                                task: msg.task,
                            },
                        )? {
                            match a {
                                MasterAction::Accept { .. } => ctx.accept(w, &msg),
                                MasterAction::Stale { .. } => mm.stale.inc(),
                                MasterAction::Release { slave } => {
                                    fleet_release(fleet, slave);
                                }
                                other => debug_assert!(false, "DONE emitted {other:?}"),
                            }
                        }
                    }
                    _ => {} // stray IDLE/HEARTBEAT from shutting-down slaves
                }
            }
            Err(NetError::Timeout) => {}
            Err(_) => break,
        }
        // ENDs to dead slaves give up quietly; nobody is waiting on them.
        let _ = rep.take_failures();
    }

    // Final durable capture: everything the drain above accepted is on
    // disk before the run reports success. A crashed run (`result?`
    // above) never reaches this — exactly the gap the incremental
    // in-loop flushes cover.
    if let Some(st) = store.as_mut() {
        flush_durable(
            st,
            &mut flush_idx,
            &completed_tasks,
            model,
            &dag,
            &matrix,
            &mm,
            &mut lane,
        )?;
    }

    publish_endpoint_stats(&registry, "master", &rep);
    let reli = rep.stats();
    let net = rep.net_stats();
    // `MasterStats` is a view over the registry: every counter below was
    // maintained there during the run (`completed` folds resumed tiles
    // back in so budget/DAG accounting stays whole-run).
    let stats = MasterStats {
        dispatched: mm.dispatched.get(),
        redispatched: mm.redispatched.get(),
        completed: mm.completed.get() + mm.resumed.get(),
        resumed: mm.resumed.get(),
        stale_completions: mm.stale.get(),
        dead_slaves: mm.dead_slaves.get().max(0) as u64,
        readmitted: mm.readmissions.get(),
        rejoins: mm.rejoins.get(),
        stale_epoch_rejected: mm.stale_epoch_rejected.get(),
        retransmits: reli.retransmits,
        duplicates: reli.duplicates,
        send_failures: mm.send_failures.get(),
        msgs_sent: net.sent_msgs,
        bytes_sent: net.sent_bytes,
        msgs_recv: net.recv_msgs,
        bytes_recv: net.recv_bytes,
    };

    let checkpoint = (!sched.is_done()).then(|| {
        let cp = Checkpoint::capture(model, &dag, &matrix, completed_tasks.iter().copied());
        mm.checkpoints.inc();
        lane.instant(
            "checkpoint",
            "checkpoint",
            Some(("finished", cp.finished_len() as u64)),
        );
        cp
    });

    Ok(MasterOutput {
        matrix,
        stats,
        slave_stats,
        elapsed: t0.elapsed(),
        trace,
        checkpoint,
    })
}

/// Append the not-yet-durable tail of `completed` to the checkpoint
/// store: encode each tile's region from the live matrix, write one
/// segment, account the cost. `flush_idx` advances to the end of
/// `completed` even when nothing was fresh (already-durable resumed tiles
/// are skipped without re-writing).
#[allow(clippy::too_many_arguments)] // plumbing between two loop sites
fn flush_durable<C: easyhps_dp::Cell>(
    store: &mut CheckpointStore,
    flush_idx: &mut usize,
    completed: &[VertexId],
    model: &DagDataDrivenModel,
    dag: &TaskDag,
    matrix: &DpMatrix<C>,
    mm: &MasterMetrics,
    lane: &mut easyhps_obs::LaneBuf,
) -> Result<(), RuntimeError> {
    let fresh: Vec<_> = completed[*flush_idx..]
        .iter()
        .copied()
        .filter(|v| !store.is_durable(v.0))
        .map(|v| {
            let region = model.tile_region(dag.vertex(v).pos);
            (v.0, region, matrix.encode_region(region))
        })
        .collect();
    *flush_idx = completed.len();
    if fresh.is_empty() {
        return Ok(());
    }
    let tiles = fresh.len() as u64;
    let t = Instant::now();
    let bytes = store.append(&fresh)?;
    mm.checkpoint_bytes.add(bytes);
    mm.checkpoint_write_us
        .observe(t.elapsed().as_micros() as u64);
    mm.checkpoints.inc();
    lane.instant("checkpoint-flush", "checkpoint", Some(("tiles", tiles)));
    Ok(())
}
