//! The master part: process-level scheduling and fault tolerance (paper
//! §V-B, Figs. 9-10).
//!
//! The master scheduling loop parses the master DAG, assigns computable
//! sub-tasks (with input strips from the global matrix) to idle slaves,
//! collects results, and updates the DAG. A separate fault-tolerance
//! thread scans the overtime queue: a sub-task overdue past
//! `task_timeout` has its registration cancelled and is pushed back onto
//! the computable stack. The sub-task register table makes duplicate
//! completions (from slow-but-alive slaves) harmless.
//!
//! Control messages travel over a [`ReliableEndpoint`]: every
//! ASSIGN/DONE/END is sequence-numbered, acknowledged and retransmitted
//! with backoff, so a lossy link delays the protocol instead of breaking
//! it. Liveness is decided by heartbeats, not by individual message
//! outcomes: a slave is excluded only when it is *unreachable* (its
//! endpoint is gone — permanent) or has been *silent* past
//! `heartbeat_timeout` (no frame of any kind, including acks). A slave
//! that is merely slow keeps heartbeating and stays in the schedule even
//! if its current sub-task is timed out and redistributed; a slave that
//! was excluded during a transient outage is re-admitted the moment it is
//! heard from again.
//!
//! One deviation from the paper's thread layout: instead of one blocking
//! worker thread per slave node sharing the MPI context, the master
//! multiplexes all slaves on its single endpoint and keeps a worker *slot*
//! per slave. The observable protocol and scheduling behaviour are
//! identical; only the thread count differs.

use crate::checkpoint::Checkpoint;
use crate::config::{Deployment, MasterStats};
use crate::durable::CheckpointStore;
use crate::obs::{lane_of, publish_endpoint_stats, registry_of, MasterMetrics, TID_FT, TID_NET};
use crate::pool::{OvertimeQueue, RegisterTable, TaskStack};
use crate::protocol::{tags, AssignMsg, DoneMsg, SlaveStatsMsg};
use crate::RuntimeError;
use bytes::Bytes;
use easyhps_core::ScheduleMode;
use easyhps_core::{DagDataDrivenModel, DagParser, TaskDag, Trace, VertexId};
use easyhps_dp::{DpMatrix, DpProblem};
use easyhps_net::{Endpoint, FailReason, NetError, Rank, ReliableEndpoint};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// State shared between the master scheduling loop and the
/// fault-tolerance thread.
struct MasterShared {
    parser: DagParser,
    register: RegisterTable,
    overtime: OvertimeQueue,
    finished: TaskStack,
    /// Liveness per slave (index = rank - 1).
    alive: Vec<bool>,
    /// Permanently gone: the slave's endpoint was dropped, its channel
    /// can never reopen. Never re-admitted.
    unreachable: Vec<bool>,
    /// When each slave was last heard from (any frame). Seeded with the
    /// run start instant so a not-yet-heard slave gets a startup grace
    /// period of one `heartbeat_timeout` instead of counting as silent.
    last_seen: Vec<Option<Instant>>,
    /// Registry handles shared with the scheduling loop — the counters
    /// *are* the run's bookkeeping; [`MasterStats`] is read off them at
    /// teardown.
    metrics: MasterMetrics,
}

impl MasterShared {
    /// Fresh shared state for a run over `dag` with `n_slaves` slaves.
    /// `start` seeds every slave's `last_seen`: a slave that has not yet
    /// said its first word is "silent since run start", not "silent since
    /// forever" — otherwise the FT loop could exclude a healthy slave
    /// that merely takes longer than `heartbeat_timeout` to start up.
    fn new(dag: &TaskDag, n_slaves: usize, start: Instant, metrics: MasterMetrics) -> Self {
        Self {
            parser: DagParser::new(dag),
            register: RegisterTable::new(dag.len()),
            overtime: OvertimeQueue::new(),
            finished: TaskStack::new(),
            alive: vec![true; n_slaves],
            unreachable: vec![false; n_slaves],
            last_seen: vec![Some(start); n_slaves],
            metrics,
        }
    }

    /// Exclude slave `w` from scheduling; true if this call excluded it
    /// (false when already excluded).
    fn exclude(&mut self, w: usize) -> bool {
        if self.alive[w] {
            self.alive[w] = false;
            self.metrics.exclusions.inc();
            self.metrics.dead_slaves.add(1);
            true
        } else {
            false
        }
    }

    /// Whether slave `w` has been silent past the heartbeat timeout
    /// (measured from run start when it was never heard from).
    fn silent(&self, w: usize, heartbeat_timeout: Duration) -> bool {
        self.last_seen[w].is_none_or(|t| t.elapsed() > heartbeat_timeout)
    }
}

/// Outcome of a master run.
pub struct MasterOutput<C: easyhps_dp::Cell> {
    /// The fully computed global matrix.
    pub matrix: DpMatrix<C>,
    /// Master counters.
    pub stats: MasterStats,
    /// Stats reported by each slave on shutdown (None for dead slaves).
    pub slave_stats: Vec<Option<SlaveStatsMsg>>,
    /// Wall-clock duration.
    pub elapsed: Duration,
    /// Master-observed schedule: one span per tile execution
    /// (assign-sent to completion-accepted), lane per slave. Render with
    /// [`Trace::gantt`].
    pub trace: Trace,
    /// Snapshot of the finished sub-tasks, present when the run stopped at
    /// a tile budget before completing; resume with
    /// [`crate::EasyHps::resume_from`].
    pub checkpoint: Option<Checkpoint>,
}

/// Run the master loop to completion. `ep` must be rank 0 of a network
/// whose ranks `1..=config.slaves` run [`crate::run_slave`].
pub fn run_master<P: DpProblem>(
    ep: Endpoint,
    problem: &P,
    model: &DagDataDrivenModel,
    config: &Deployment,
) -> Result<MasterOutput<P::Cell>, RuntimeError> {
    run_master_with(ep, problem, model, config, None, None)
}

/// [`run_master`] with checkpoint/restart controls: `resume` preloads the
/// finished sub-tasks of a prior run; `tile_budget` stops dispatching
/// after that many completions (counting resumed ones) and returns a
/// [`Checkpoint`] in the output.
pub fn run_master_with<P: DpProblem>(
    ep: Endpoint,
    problem: &P,
    model: &DagDataDrivenModel,
    config: &Deployment,
    resume: Option<&Checkpoint>,
    tile_budget: Option<u64>,
) -> Result<MasterOutput<P::Cell>, RuntimeError> {
    if config.slaves == 0 {
        return Err(RuntimeError::NoSlaves);
    }
    let t0 = Instant::now();
    let mut rep = ReliableEndpoint::new(ep, config.retry.clone());

    let obs = config.obs.clone();
    let registry = registry_of(&obs);
    let mm = MasterMetrics::register(&registry);
    let mut lane = lane_of(&obs, 0, 0);
    rep.set_event_lane(lane_of(&obs, 0, TID_NET));
    if let Some(rec) = &obs.recorder {
        rec.name_process(0, "master");
        rec.name_thread(0, 0, "scheduler");
        for w in 0..config.slaves {
            rec.name_thread(0, 1 + w as u32, format!("slot{w}"));
        }
        rec.name_thread(0, TID_FT, "fault-tolerance");
        rec.name_thread(0, TID_NET, "net");
    }

    // Step a: master DAG Data Driven Model initialization (+ validation:
    // the race-freedom argument of the shared grid depends on it).
    let dag = Arc::new(model.master_dag());
    dag.validate()?;
    let tile_cols = dag.dims().cols;
    let n_slaves = config.slaves;

    // Durable checkpoint store: opened before any thread spawns, so a
    // refused directory (dims mismatch, prior run present without
    // --resume) fails the run before it touches the network.
    let dims = model.dag_size();
    let mut store = match &config.checkpoint {
        Some(pol) => Some(CheckpointStore::open(
            pol,
            dims.rows,
            dims.cols,
            resume.is_some(),
        )?),
        None => None,
    };
    // Prefix of `completed_tasks` already flushed to the store.
    let mut flush_idx: usize = 0;
    let mut last_flush = t0;

    let shared = Arc::new(Mutex::new(MasterShared::new(
        &dag,
        n_slaves,
        t0,
        mm.clone(),
    )));

    // Step b: start the fault-tolerance thread. It waits on a shutdown
    // channel rather than sleeping so teardown does not pay up to one
    // full `ft_poll` interval joining it. Overdue sub-tasks are always
    // redistributed, but their slave is excluded only when the heartbeat
    // record says it is dead, not merely slow.
    let (ft_stop_tx, ft_stop_rx) = crossbeam::channel::unbounded::<()>();
    let ft_shared = shared.clone();
    let ft_dag = dag.clone();
    let (timeout, poll, hb_timeout) = (
        config.task_timeout,
        config.ft_poll,
        config.heartbeat_timeout,
    );
    let mut ft_lane = lane_of(&obs, 0, TID_FT);
    let ft = std::thread::spawn(move || {
        use crossbeam::channel::RecvTimeoutError;
        while ft_stop_rx.recv_timeout(poll) == Err(RecvTimeoutError::Timeout) {
            let mut s = ft_shared.lock();
            // Step g: redistribute overdue sub-tasks; exclude their slaves
            // only if they have also stopped heartbeating.
            for entry in s.overtime.drain_overdue(timeout) {
                if s.register.accepts(entry.task, entry.executor) {
                    s.register.cancel(entry.task);
                    s.parser
                        .fail(&ft_dag, VertexId(entry.task))
                        .expect("overdue task is running");
                    s.metrics.redispatched.inc();
                    ft_lane.instant("redispatch", "ft", Some(("task", u64::from(entry.task))));
                }
            }
            // Liveness is judged for every slave, not only owners of
            // overdue work: a slave that crashes while holding nothing
            // overdue (e.g. its task was already redispatched while it
            // was merely slow) would otherwise never be excluded — and
            // in static modes its owned tiles would never fall back to
            // the surviving slaves (deadlock, found by `easyhps stress`).
            for w in 0..s.alive.len() {
                if (s.unreachable[w] || s.silent(w, hb_timeout)) && s.exclude(w) {
                    ft_lane.instant("exclude", "ft", Some(("slave", w as u64)));
                }
            }
        }
    });

    let mut matrix = DpMatrix::<P::Cell>::new(model.dag_size());
    let mut idle = vec![false; n_slaves];
    let mut trace = Trace::new();
    // Start instants per in-flight (task, slave) for trace spans: the
    // wall-clock instant for `Trace` / tile-latency, and the recorder
    // timestamp for the slot-lane event span.
    let mut started: Vec<Option<(Instant, u64)>> = vec![None; dag.len()];
    // One event lane per slave slot: tile spans from assign-sent to
    // completion-accepted, as the master observed them.
    let mut slot_lanes: Vec<easyhps_obs::LaneBuf> = (0..n_slaves)
        .map(|w| lane_of(&obs, 0, 1 + w as u32))
        .collect();
    let mut completed_tasks: Vec<VertexId> = Vec::new();
    // Reliable-send bookkeeping: (slave, sequence number) of every ASSIGN
    // whose delivery is not yet known, so an abandoned send can roll the
    // dispatch back.
    let mut inflight: HashMap<(usize, u64), u32> = HashMap::new();

    // Resume: restore finished regions and fast-forward the parser. The
    // finished set of a valid checkpoint is ancestor-closed, so walking a
    // topological order completes each task the moment it is computable.
    if let Some(cp) = resume {
        cp.restore_into(&mut matrix);
        let preload: std::collections::HashSet<u32> = cp.finished_tasks().map(|v| v.0).collect();
        let order = dag.topological_order()?;
        let mut s = shared.lock();
        for v in order {
            if preload.contains(&v.0) {
                let claimed = s
                    .parser
                    .pop_computable_matching(|x| x == v)
                    .expect("checkpointed set must be ancestor-closed");
                s.parser
                    .complete(&dag, claimed, None)
                    .expect("claimed task completes");
                completed_tasks.push(v);
                mm.resumed.inc();
                if store.as_ref().is_some_and(|st| st.is_durable(v.0)) {
                    mm.restored.inc();
                }
            }
        }
        drop(s);
        lane.instant("resume", "checkpoint", Some(("tiles", mm.resumed.get())));
    }
    // Budget accounting counts resumed tiles; `master_tiles_dispatched`
    // deliberately does not (it reflects only work actually sent out).
    let budget_reached = || tile_budget.is_some_and(|b| mm.completed.get() + mm.resumed.get() >= b);
    let _ = problem; // kernels run slave-side; the master only routes data

    let result: Result<(), RuntimeError> = (|| {
        loop {
            {
                let mut s = shared.lock();

                // Sync heartbeat observations into the shared liveness
                // record and re-admit wrongly excluded slaves: a
                // dead-marked slave that is heard from (and whose channel
                // still exists) was slow or unlucky, not dead.
                for w in 0..n_slaves {
                    if let Some(t) = rep.last_heard(Rank(w as u32 + 1)) {
                        s.last_seen[w] = Some(t);
                    }
                    if !s.alive[w] && !s.unreachable[w] && !s.silent(w, config.heartbeat_timeout) {
                        s.alive[w] = true;
                        mm.dead_slaves.add(-1);
                        mm.readmissions.inc();
                        lane.instant("readmit", "ft", Some(("slave", w as u64)));
                    }
                }

                // Stop *before* dispatching: once the budget is reached no
                // new work may start, so every in-flight completion can be
                // drained into the checkpoint during teardown.
                if s.parser.is_done() || budget_reached() {
                    break;
                }

                // Steps c-d: dispatch computable sub-tasks to idle live
                // slaves. When *every* slave is presumed dead but some
                // channels are still open, dispatch speculatively to the
                // silent-but-reachable ones: a slave whose heartbeats are
                // lost (not dead, just unheard) will ACK the ASSIGN and
                // be re-admitted, while a truly hung one exhausts the
                // retry budget, turns unreachable, and the run fails
                // fast below. Without this, total heartbeat starvation
                // of the last surviving slave aborted runs that were
                // perfectly completable (found by `easyhps stress`).
                let alive_now = s.alive.clone();
                let none_alive = alive_now.iter().all(|a| !a);
                #[allow(clippy::needless_range_loop)] // w doubles as the rank id
                for w in 0..n_slaves {
                    let speculative = none_alive && !s.unreachable[w];
                    if !idle[w] || !(alive_now[w] || speculative) {
                        continue;
                    }
                    let owner_of = |v: VertexId| {
                        config.process_mode.static_owner(
                            dag.vertex(v).pos,
                            tile_cols,
                            n_slaves as u32,
                        )
                    };
                    let picked = if config.process_mode == ScheduleMode::Dynamic || speculative {
                        s.parser.pop_computable()
                    } else {
                        // A statically-owned task whose owner is excluded
                        // would otherwise never be dispatchable (livelock);
                        // orphans fall back to dynamic placement.
                        s.parser
                            .pop_computable_matching(|v| owner_of(v) == Some(w as u32))
                            .or_else(|| {
                                s.parser.pop_computable_matching(|v| {
                                    owner_of(v).is_some_and(|o| !alive_now[o as usize])
                                })
                            })
                    };
                    let Some(v) = picked else { continue };
                    let vertex = dag.vertex(v);
                    let inputs: Vec<_> = vertex
                        .data_deps
                        .iter()
                        .map(|d| {
                            let region = model.tile_region(dag.vertex(*d).pos);
                            (region, matrix.encode_region(region))
                        })
                        .collect();
                    let msg = AssignMsg {
                        task: v.0,
                        tile: vertex.pos,
                        region: model.tile_region(vertex.pos),
                        inputs,
                    };
                    match rep.send_reliable(Rank(w as u32 + 1), tags::ASSIGN, msg.encode()) {
                        Ok(seq) => {
                            s.register.register(v.0, w as u32);
                            s.overtime.push(v.0, w as u32);
                            idle[w] = false;
                            mm.dispatched.inc();
                            started[v.index()] = Some((Instant::now(), slot_lanes[w].now_ns()));
                            inflight.insert((w, seq), v.0);
                        }
                        Err(_) => {
                            // Slave endpoint gone: the task goes back to
                            // the computable stack untouched (it was never
                            // dispatched) and the slave is permanently out.
                            s.parser.fail(&dag, v).expect("just popped");
                            mm.send_failures.inc();
                            s.unreachable[w] = true;
                            if s.exclude(w) {
                                lane.instant("exclude", "ft", Some(("slave", w as u64)));
                            }
                        }
                    }
                }

                // Give up only when every slave is *unreachable* — its
                // channel is gone for good. Merely-silent slaves can be
                // heard again and re-admitted (and the speculative
                // dispatch above actively probes them), so presumed-dead
                // is not a terminal state on its own.
                if s.unreachable.iter().all(|u| *u) {
                    return Err(RuntimeError::AllSlavesDead);
                }
            }

            // Steps e-f, h: collect completions and idle signals. The
            // reliable endpoint retransmits pending sends while waiting.
            match rep.recv_timeout(Duration::from_millis(2)) {
                Ok(env) => {
                    let w = (env.src.0 as usize).wrapping_sub(1);
                    match env.tag {
                        tags::IDLE => {
                            if w < n_slaves {
                                idle[w] = true;
                            }
                        }
                        tags::HEARTBEAT => { /* liveness noted by the endpoint */ }
                        // Bound-check the source rank before touching any
                        // per-slave state or the register — the teardown
                        // path always had this guard, the main loop did
                        // not, so a frame from outside the slave range
                        // reached `register.accepts` with a rogue rank.
                        tags::DONE if w < n_slaves => {
                            let msg = DoneMsg::decode(&env.payload)?;
                            let mut s = shared.lock();
                            idle[w] = true;
                            if s.register.accepts(msg.task, w as u32) {
                                if let Some((start, start_ns)) = started[msg.task as usize].take() {
                                    let end = Instant::now();
                                    trace.record(
                                        format!("slave{w}"),
                                        "#",
                                        start.duration_since(t0).as_nanos() as u64,
                                        end.duration_since(t0).as_nanos() as u64,
                                    );
                                    mm.tile_latency
                                        .observe(end.duration_since(start).as_nanos() as u64);
                                    slot_lanes[w].span_since(
                                        "tile",
                                        "master",
                                        start_ns,
                                        Some(("task", u64::from(msg.task))),
                                    );
                                }
                                matrix.decode_region(msg.region, &msg.output);
                                s.register.cancel(msg.task);
                                s.overtime.remove(msg.task);
                                s.finished.push(msg.task);
                                // Step h: update the DAG Pattern Model.
                                while let Some(t) = s.finished.pop() {
                                    s.parser
                                        .complete(&dag, VertexId(t), None)
                                        .expect("registered completion is running");
                                }
                                mm.completed.inc();
                                completed_tasks.push(VertexId(msg.task));
                            } else {
                                mm.stale.inc();
                            }
                        }
                        tags::DONE => { /* out-of-range source rank: ignore */ }
                        tags::STATS => { /* late stats, ignore */ }
                        other => debug_assert!(false, "master received unexpected {other}"),
                    }
                }
                Err(NetError::Timeout) => {}
                Err(e) => return Err(e.into()),
            }

            // Abandoned reliable sends: roll the dispatch back so the task
            // is redistributable, and judge the slave by its heartbeat —
            // an unreachable peer is dead, a silent one presumed dead
            // (re-admitted later if it turns out merely slow).
            for f in rep.take_failures() {
                mm.send_failures.inc();
                let w = (f.dst.0 as usize).wrapping_sub(1);
                if w >= n_slaves {
                    continue;
                }
                let mut s = shared.lock();
                if f.tag == tags::ASSIGN {
                    if let Some(task) = inflight.remove(&(w, f.seq)) {
                        if s.register.accepts(task, w as u32) {
                            s.register.cancel(task);
                            s.overtime.remove(task);
                            s.parser
                                .fail(&dag, VertexId(task))
                                .expect("undelivered task is running");
                            mm.redispatched.inc();
                            started[task as usize] = None;
                            // The slave never saw the ASSIGN; it is not
                            // busy with it, whatever its health.
                            idle[w] = true;
                        }
                    }
                }
                let excluded = match f.reason {
                    FailReason::Unreachable => {
                        s.unreachable[w] = true;
                        s.exclude(w)
                    }
                    FailReason::NoAck => s.silent(w, config.heartbeat_timeout) && s.exclude(w),
                };
                if excluded {
                    lane.instant("exclude", "ft", Some(("slave", w as u64)));
                }
            }

            // Durable capture: flush tiles accepted since the last flush
            // once the policy's cadence is due. Runs with no lock held,
            // after message handling — never on the DONE hot path itself.
            if let (Some(st), Some(pol)) = (store.as_mut(), config.checkpoint.as_ref()) {
                let pending = (completed_tasks.len() - flush_idx) as u64;
                let due = (pol.every_tiles > 0 && pending >= pol.every_tiles)
                    || (pending > 0 && pol.every.is_some_and(|d| last_flush.elapsed() >= d));
                if due {
                    flush_durable(
                        st,
                        &mut flush_idx,
                        &completed_tasks,
                        model,
                        &dag,
                        &matrix,
                        &mm,
                        &mut lane,
                    )?;
                    last_flush = Instant::now();
                }
            }
        }
        Ok(())
    })();

    // Step i: tear down. Dropping the sender disconnects the shutdown
    // channel, waking the fault-tolerance thread immediately.
    drop(ft_stop_tx);
    ft.join().expect("fault-tolerance thread never panics");
    result?;

    let alive = shared.lock().alive.clone();

    // Send END to every slave (dead ones may never read it; unreachable
    // ones fail immediately and are ignored) and collect final stats from
    // the live ones. Completions still in flight are accepted into the
    // matrix — on a budget stop they would otherwise be recomputed after
    // `resume_from`.
    let mut slave_stats: Vec<Option<SlaveStatsMsg>> = vec![None; n_slaves];
    for w in 0..n_slaves {
        let _ = rep.send_reliable(Rank(w as u32 + 1), tags::END, Bytes::new());
    }
    // Only slaves counted into `expected` may decrement it: a STATS from a
    // dead-marked (actually alive) slave is stored but must not make the
    // master stop waiting for a counted one.
    let mut counted = alive;
    let mut expected: usize = counted.iter().filter(|a| **a).count();
    // The drain must outlive the slowest legitimate reply: a slave's
    // STATS (or final DONE) can spend a full retransmit cycle in flight,
    // so the deadline scales with the configured `RetryPolicy` instead of
    // being a hard-coded constant — a slow retry schedule used to get its
    // stats collection truncated at 2 s. The floor keeps the historical
    // grace for fast policies; the margin covers slave-side compute of
    // the stats reply itself.
    let drain_deadline = config
        .retry
        .drain_budget()
        .max(Duration::from_secs(2))
        .saturating_add(Duration::from_millis(500));
    let deadline = Instant::now() + drain_deadline;
    while (expected > 0 || rep.has_pending()) && Instant::now() < deadline {
        match rep.recv_timeout(Duration::from_millis(50)) {
            Ok(env) => {
                let w = (env.src.0 as usize).wrapping_sub(1);
                match env.tag {
                    tags::STATS if w < n_slaves && slave_stats[w].is_none() => {
                        slave_stats[w] = Some(SlaveStatsMsg::decode(&env.payload)?);
                        if counted[w] {
                            counted[w] = false;
                            expected -= 1;
                        }
                    }
                    // Same rank guard as the main loop: a frame from an
                    // out-of-range rank is ignored outright, not counted
                    // stale (stale means "duplicate from a known slave").
                    tags::DONE if w < n_slaves => {
                        let msg = DoneMsg::decode(&env.payload)?;
                        let mut s = shared.lock();
                        if s.register.accepts(msg.task, w as u32) {
                            if let Some((start, start_ns)) = started[msg.task as usize].take() {
                                let end = Instant::now();
                                trace.record(
                                    format!("slave{w}"),
                                    "#",
                                    start.duration_since(t0).as_nanos() as u64,
                                    end.duration_since(t0).as_nanos() as u64,
                                );
                                mm.tile_latency
                                    .observe(end.duration_since(start).as_nanos() as u64);
                                slot_lanes[w].span_since(
                                    "tile",
                                    "master",
                                    start_ns,
                                    Some(("task", u64::from(msg.task))),
                                );
                            }
                            matrix.decode_region(msg.region, &msg.output);
                            s.register.cancel(msg.task);
                            s.overtime.remove(msg.task);
                            s.parser
                                .complete(&dag, VertexId(msg.task), None)
                                .expect("registered completion is running");
                            mm.completed.inc();
                            completed_tasks.push(VertexId(msg.task));
                        } else {
                            mm.stale.inc();
                        }
                    }
                    _ => {} // stray IDLE/HEARTBEAT from shutting-down slaves
                }
            }
            Err(NetError::Timeout) => {}
            Err(_) => break,
        }
        // ENDs to dead slaves give up quietly; nobody is waiting on them.
        let _ = rep.take_failures();
    }

    // Final durable capture: everything the drain above accepted is on
    // disk before the run reports success. A crashed run (`result?`
    // above) never reaches this — exactly the gap the incremental
    // in-loop flushes cover.
    if let Some(st) = store.as_mut() {
        flush_durable(
            st,
            &mut flush_idx,
            &completed_tasks,
            model,
            &dag,
            &matrix,
            &mm,
            &mut lane,
        )?;
    }

    publish_endpoint_stats(&registry, "master", &rep);
    let reli = rep.stats();
    let net = rep.net_stats();
    // `MasterStats` is a view over the registry: every counter below was
    // maintained there during the run (`completed` folds resumed tiles
    // back in so budget/DAG accounting stays whole-run).
    let stats = MasterStats {
        dispatched: mm.dispatched.get(),
        redispatched: mm.redispatched.get(),
        completed: mm.completed.get() + mm.resumed.get(),
        resumed: mm.resumed.get(),
        stale_completions: mm.stale.get(),
        dead_slaves: mm.dead_slaves.get().max(0) as u64,
        readmitted: mm.readmissions.get(),
        retransmits: reli.retransmits,
        duplicates: reli.duplicates,
        send_failures: mm.send_failures.get(),
        msgs_sent: net.sent_msgs,
        bytes_sent: net.sent_bytes,
        msgs_recv: net.recv_msgs,
        bytes_recv: net.recv_bytes,
    };

    let checkpoint = (!shared.lock().parser.is_done()).then(|| {
        let cp = Checkpoint::capture(model, &dag, &matrix, completed_tasks.iter().copied());
        mm.checkpoints.inc();
        lane.instant(
            "checkpoint",
            "checkpoint",
            Some(("finished", cp.finished_len() as u64)),
        );
        cp
    });

    Ok(MasterOutput {
        matrix,
        stats,
        slave_stats,
        elapsed: t0.elapsed(),
        trace,
        checkpoint,
    })
}

/// Append the not-yet-durable tail of `completed` to the checkpoint
/// store: encode each tile's region from the live matrix, write one
/// segment, account the cost. `flush_idx` advances to the end of
/// `completed` even when nothing was fresh (already-durable resumed tiles
/// are skipped without re-writing).
#[allow(clippy::too_many_arguments)] // plumbing between two loop sites
fn flush_durable<C: easyhps_dp::Cell>(
    store: &mut CheckpointStore,
    flush_idx: &mut usize,
    completed: &[VertexId],
    model: &DagDataDrivenModel,
    dag: &TaskDag,
    matrix: &DpMatrix<C>,
    mm: &MasterMetrics,
    lane: &mut easyhps_obs::LaneBuf,
) -> Result<(), RuntimeError> {
    let fresh: Vec<_> = completed[*flush_idx..]
        .iter()
        .copied()
        .filter(|v| !store.is_durable(v.0))
        .map(|v| {
            let region = model.tile_region(dag.vertex(v).pos);
            (v.0, region, matrix.encode_region(region))
        })
        .collect();
    *flush_idx = completed.len();
    if fresh.is_empty() {
        return Ok(());
    }
    let tiles = fresh.len() as u64;
    let t = Instant::now();
    let bytes = store.append(&fresh)?;
    mm.checkpoint_bytes.add(bytes);
    mm.checkpoint_write_us
        .observe(t.elapsed().as_micros() as u64);
    mm.checkpoints.inc();
    lane.instant("checkpoint-flush", "checkpoint", Some(("tiles", tiles)));
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use easyhps_core::patterns::Wavefront2D;
    use easyhps_core::GridDims;

    fn tiny_shared(n_slaves: usize, start: Instant) -> MasterShared {
        let model = DagDataDrivenModel::builder(Arc::new(Wavefront2D::new(GridDims::new(4, 4))))
            .process_partition_size(GridDims::new(2, 2))
            .thread_partition_size(GridDims::new(1, 1))
            .build();
        let registry = easyhps_obs::Registry::new();
        MasterShared::new(&model.master_dag(), n_slaves, start, {
            crate::obs::MasterMetrics::register(&registry)
        })
    }

    /// Regression (startup-exclusion bug): a slave nobody has heard from
    /// yet must be within the heartbeat grace window right after startup,
    /// not "silent since forever" — the FT loop excluded healthy
    /// slow-starting slaves otherwise.
    #[test]
    fn never_heard_slave_gets_startup_grace() {
        let s = tiny_shared(2, Instant::now());
        assert!(
            !s.silent(0, Duration::from_secs(10)),
            "a never-heard slave within the grace window is not silent"
        );
        assert!(
            !s.silent(1, Duration::from_secs(10)),
            "every slave is seeded, not just the first"
        );
    }

    /// The grace window still expires: a slave that stays quiet past the
    /// heartbeat timeout measured from run start is silent.
    #[test]
    fn startup_grace_expires_after_heartbeat_timeout() {
        let start = Instant::now() - Duration::from_millis(50);
        let s = tiny_shared(1, start);
        assert!(s.silent(0, Duration::from_millis(10)));
        assert!(!s.silent(0, Duration::from_secs(1)));
    }
}
