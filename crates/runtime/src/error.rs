//! Runtime error type.

use easyhps_core::sched::SchedViolation;
use easyhps_core::PatternError;
use easyhps_net::{NetError, WireError};
use std::fmt;

/// Errors surfaced by the multilevel runtime.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RuntimeError {
    /// Transport failure on a path the runtime cannot recover from (e.g.
    /// the master's own endpoint died).
    Net(NetError),
    /// A message failed to decode (protocol corruption).
    Wire(WireError),
    /// The DAG model failed validation.
    Pattern(PatternError),
    /// Every slave died before the computation finished.
    AllSlavesDead,
    /// The deployment has no slaves to compute on.
    NoSlaves,
    /// Writing the structured-event trace file failed (path and OS error).
    TraceIo(String),
    /// The durable checkpoint store refused to open, read or write (path,
    /// cause).
    Checkpoint(String),
    /// The autotuner failed to read or write its tuning table.
    Autotune(String),
    /// The configured deployment or partitioning is invalid (e.g. a zero
    /// or oversized `thread_partition_size`).
    InvalidConfig(String),
    /// The scheduler state machine was fed an event it considers
    /// impossible (e.g. a completion for a task that is not running).
    /// Under a correct driver this is unreachable; it surfaces driver
    /// bugs as an error return instead of a poisoned thread.
    SchedulerInvariant(SchedViolation),
}

impl fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RuntimeError::Net(e) => write!(f, "transport error: {e}"),
            RuntimeError::Wire(e) => write!(f, "protocol decode error: {e}"),
            RuntimeError::Pattern(e) => write!(f, "invalid DAG model: {e}"),
            RuntimeError::AllSlavesDead => {
                write!(f, "every slave node failed before the computation finished")
            }
            RuntimeError::NoSlaves => write!(f, "deployment has no slave nodes"),
            RuntimeError::TraceIo(e) => write!(f, "failed to write trace file: {e}"),
            RuntimeError::Checkpoint(e) => write!(f, "checkpoint store error: {e}"),
            RuntimeError::Autotune(e) => write!(f, "autotune error: {e}"),
            RuntimeError::InvalidConfig(e) => write!(f, "invalid configuration: {e}"),
            RuntimeError::SchedulerInvariant(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for RuntimeError {}

impl From<NetError> for RuntimeError {
    fn from(e: NetError) -> Self {
        RuntimeError::Net(e)
    }
}

impl From<WireError> for RuntimeError {
    fn from(e: WireError) -> Self {
        RuntimeError::Wire(e)
    }
}

impl From<PatternError> for RuntimeError {
    fn from(e: PatternError) -> Self {
        RuntimeError::Pattern(e)
    }
}

impl From<SchedViolation> for RuntimeError {
    fn from(e: SchedViolation) -> Self {
        RuntimeError::SchedulerInvariant(e)
    }
}
