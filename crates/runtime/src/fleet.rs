//! A persistent slave fleet: connections that outlive a single job.
//!
//! `run_remote_master` used to accept slave connections, run one job and
//! drop the endpoint — which closed every socket, leaving the slaves
//! unusable for a second run. [`Fleet`] factors the acceptance/handshake
//! step out and *owns* the links: each job runs on a per-job
//! [`Endpoint::fork`](easyhps_net::Endpoint::fork) of the shared root
//! endpoint, so dropping the job's endpoint leaves the connections open
//! (the socket writer thread exits only when the last `TxLink` clone is
//! gone). The one-shot `easyhps master` path and the serve daemon share
//! this type; the daemon simply calls [`Fleet::run_job`] many times.
//!
//! Slaves run the matching loop ([`serve_slave_jobs`]
//! (crate::remote::serve_slave_jobs)): wait for a [`tags::JOB`] frame,
//! run the ordinary slave loop on a fork of their connection, repeat
//! until [`tags::SHUTDOWN`] arrives or the master disappears.
//!
//! An in-process variant ([`Fleet::local`]) spawns the same multi-job
//! slave loop on threads over channel links — the serve daemon's default
//! fleet when no `--fleet-listen` address is given.
//!
//! Fault injection composes with the one-shot path only: a fault plan
//! replays from its first clause on every forked endpoint, and a job
//! that dies mid-run can leave slaves executing stale work, so a fleet
//! that will run more than one job must not inject faults.

use crate::checkpoint::Checkpoint;
use crate::config::{ObsConfig, RunReport};
use crate::durable::CheckpointPolicy;
use crate::master::{run_master_fleet, FleetControl};
use crate::protocol::tags;
use crate::remote::{
    publish_socket_stats, slave_job_loop, with_problem, JobSpec, RemoteOutput, RemoteProblem,
    SlaveServeSummary,
};
use crate::RuntimeError;
use easyhps_dp::{EditDistance, Lcs, NeedlemanWunsch, Nussinov, SmithWatermanGeneralGap};
use easyhps_net::socket::{SocketInfo, SocketListener};
use easyhps_net::{frame, Endpoint, FaultPlan, FleetAcceptor, Network, Rank};
use std::collections::BTreeSet;
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Per-job knobs for [`Fleet::run_job`] — the job-scoped subset of
/// [`RemoteMasterOptions`](crate::remote::RemoteMasterOptions).
#[derive(Debug, Default)]
pub struct JobOptions {
    /// Observability wiring for this job (a daemon hands each job its
    /// own registry and republishes it with `job=`/`tenant=` labels).
    pub obs: ObsConfig,
    /// Durable checkpoint policy for this job.
    pub checkpoint: Option<CheckpointPolicy>,
    /// Resume from a previously captured checkpoint.
    pub resume: Option<Checkpoint>,
    /// Stop after this many tile completions and return a checkpoint.
    pub tile_budget: Option<u64>,
}

enum FleetSlaves {
    /// Remote slaves over sockets; the info carries per-link counters.
    Remote(SocketInfo),
    /// In-process slave threads over channel links.
    Local(Vec<JoinHandle<Result<SlaveServeSummary, RuntimeError>>>),
}

/// A set of connected, rank-assigned slaves that stays usable across
/// jobs. Create with [`Fleet::accept`] (sockets, fixed membership),
/// [`Fleet::accept_elastic`] (sockets, reconnection + mid-run join +
/// drain) or [`Fleet::local`] (threads), run any number of jobs, then
/// [`Fleet::shutdown`].
pub struct Fleet {
    root: Endpoint,
    n_slaves: usize,
    fault: Option<FaultPlan>,
    slaves: FleetSlaves,
    /// Shared with every job's master: drain requests flow in, released
    /// ranks flow out, and the elastic acceptor (if any) rides along.
    control: FleetControl,
    /// Ranks no longer part of a *fixed-membership* fleet (drained and
    /// released, or found dead between jobs); indexed by rank, 0 unused.
    /// Elastic fleets derive membership from the acceptor instead — a
    /// released rank there may be re-issued to the next joiner.
    retired: Vec<bool>,
}

impl Fleet {
    /// Accept `n_slaves` socket connections on an already-bound listener
    /// and perform the rank handshake. `fault` configures the master's
    /// fault injection for drills — see the module docs for why a faulty
    /// fleet must stay single-job.
    pub fn accept(
        listener: SocketListener,
        n_slaves: usize,
        fault: Option<FaultPlan>,
    ) -> Result<Fleet, RuntimeError> {
        if n_slaves == 0 {
            return Err(RuntimeError::NoSlaves);
        }
        let (root, info) = listener
            .accept_ranks(n_slaves, None)
            .map_err(|e| RuntimeError::InvalidConfig(format!("accepting slaves: {e}")))?;
        Ok(Fleet {
            root,
            n_slaves,
            fault,
            slaves: FleetSlaves::Remote(info),
            control: FleetControl::new(None),
            retired: vec![false; n_slaves + 1],
        })
    }

    /// [`Fleet::accept`] with *elastic* membership: the listener stays
    /// open in a background acceptor that splices reconnecting slaves,
    /// fences new incarnations under a bumped fleet epoch, and admits
    /// brand-new slaves mid-run (shipping them the current job). Set
    /// [`SocketConfig::reconnect_window`]
    /// (easyhps_net::SocketConfig::reconnect_window) on the listener (and
    /// the slaves) to let severed links heal by redial.
    pub fn accept_elastic(
        listener: SocketListener,
        n_slaves: usize,
    ) -> Result<Fleet, RuntimeError> {
        if n_slaves == 0 {
            return Err(RuntimeError::NoSlaves);
        }
        let (root, info, acceptor) = listener
            .accept_fleet(n_slaves, None)
            .map_err(|e| RuntimeError::InvalidConfig(format!("accepting slaves: {e}")))?;
        Ok(Fleet {
            root,
            n_slaves,
            fault: None,
            slaves: FleetSlaves::Remote(info),
            control: FleetControl::new(Some(Arc::new(acceptor))),
            retired: vec![false; n_slaves + 1],
        })
    }

    /// An in-process fleet: `n_slaves` threads running the multi-job
    /// slave loop over channel links. `threads` overrides each job's
    /// `threads_per_slave` when set.
    pub fn local(n_slaves: usize, threads: Option<usize>) -> Result<Fleet, RuntimeError> {
        if n_slaves == 0 {
            return Err(RuntimeError::NoSlaves);
        }
        let mut eps = Network::new(n_slaves + 1);
        let root = eps.remove(0);
        let handles = eps
            .into_iter()
            .enumerate()
            .map(|(i, ep)| {
                std::thread::Builder::new()
                    .name(format!("fleet-slave-{}", i + 1))
                    .spawn(move || slave_job_loop(ep, threads, None, None))
                    .expect("spawn fleet slave")
            })
            .collect();
        Ok(Fleet {
            root,
            n_slaves,
            fault: None,
            slaves: FleetSlaves::Local(handles),
            control: FleetControl::new(None),
            retired: vec![false; n_slaves + 1],
        })
    }

    /// Number of slave slots in the fleet (the high-water rank; retired
    /// or currently-dark slots included).
    pub fn n_slaves(&self) -> usize {
        self.n_slaves
    }

    /// The control surface shared with every job's master. Clone it to
    /// feed drain requests in from another thread (the serve daemon's
    /// RPC handler does).
    pub fn control(&self) -> &FleetControl {
        &self.control
    }

    /// The elastic acceptor, when this fleet was created with
    /// [`Fleet::accept_elastic`].
    pub fn acceptor(&self) -> Option<&Arc<FleetAcceptor>> {
        self.control.acceptor.as_ref()
    }

    /// Ask the running (or next) job's master to gracefully drain
    /// `rank`: stop assigning it work, let its in-flight sub-tasks land,
    /// then release the rank back to the fleet.
    pub fn drain(&self, rank: u32) {
        self.control.request_drain(rank);
    }

    /// Fold membership changes into the fleet's own bookkeeping at a job
    /// boundary: retire ranks the previous job's master released, grow
    /// the slot count to cover mid-run joiners, and re-request drains
    /// for ranks that must stay out of the next job's schedule (each
    /// job's scheduler starts fresh, so a released slot must be drained
    /// again — the request releases an idle slot instantly).
    fn sync_membership(&mut self) {
        for rank in std::mem::take(&mut *self.control.released.lock().unwrap()) {
            if let Some(f) = self.retired.get_mut(rank as usize) {
                *f = true;
            }
        }
        if let Some(acc) = &self.control.acceptor {
            self.n_slaves = self.n_slaves.max(acc.n_ranks().saturating_sub(1));
            for r in 1..=self.n_slaves as u32 {
                // Slot empty in the acceptor: released and not re-issued.
                if acc.link_stats(r).is_none() {
                    self.control.request_drain(r);
                }
            }
        } else {
            for r in 1..=self.n_slaves {
                if self.retired[r] {
                    self.control.request_drain(r as u32);
                }
            }
        }
        if self.retired.len() < self.n_slaves + 1 {
            self.retired.resize(self.n_slaves + 1, false);
        }
    }

    /// The ranks the next job should treat as members: currently-linked
    /// ranks for an elastic fleet (a dark rank may relink mid-job and is
    /// left to the heartbeat deadline), non-retired ranks otherwise.
    fn expected_ranks(&self) -> Vec<u32> {
        match &self.control.acceptor {
            Some(acc) => acc.live_ranks(),
            None => (1..=self.n_slaves as u32)
                .filter(|r| !self.retired[*r as usize])
                .collect(),
        }
    }

    /// Per-link socket counters; `None` for an in-process fleet.
    pub fn socket_info(&self) -> Option<&SocketInfo> {
        match &self.slaves {
            FleetSlaves::Remote(info) => Some(info),
            FleetSlaves::Local(_) => None,
        }
    }

    /// Job-boundary barrier: consume one READY per slave before the
    /// next JOB ships. A slave announces READY when it enters its idle
    /// loop (on connect and after each finished job); until then its
    /// previous job's reliable teardown may still be lingering, and the
    /// linger ACKs-and-discards unexpected frames — a JOB sent early
    /// would be silently lost. Stray heartbeats and late ACKs queued
    /// between jobs are discarded along the way.
    fn await_ready(&mut self) -> Result<Vec<u32>, RuntimeError> {
        const READY_TIMEOUT: Duration = Duration::from_secs(60);
        const PROBE_EVERY: Duration = Duration::from_millis(200);
        let deadline = Instant::now() + READY_TIMEOUT;
        let mut pending: BTreeSet<u32> = self.expected_ranks().into_iter().collect();
        let mut ready: Vec<u32> = Vec::new();
        let mut last_probe = Instant::now();
        while !pending.is_empty() {
            let left = deadline.saturating_duration_since(Instant::now());
            if left.is_zero() {
                return Err(RuntimeError::InvalidConfig(format!(
                    "timed out waiting for {} slave(s) to finish their previous job",
                    pending.len()
                )));
            }
            match self.root.recv_timeout(left.min(Duration::from_millis(50))) {
                Ok(env) if env.tag == tags::READY => {
                    let r = env.src.0;
                    if pending.remove(&r) {
                        ready.push(r);
                    }
                }
                Ok(_) => {} // stray heartbeat / late ACK between jobs
                Err(easyhps_net::NetError::Timeout) => {}
                Err(e) => return Err(e.into()),
            }
            // A slave that died between jobs is a *membership change*,
            // not a reason to burn the whole readiness deadline: probe
            // the silent ranks and retire any whose link is already
            // gone. (An elastic fleet's links queue across outages
            // instead of failing; there the reconnect window and the
            // in-job heartbeat deadline govern.)
            if last_probe.elapsed() >= PROBE_EVERY && !pending.is_empty() {
                last_probe = Instant::now();
                let probe = frame::seal_raw(&[]);
                let root = &mut self.root;
                let retired = &mut self.retired;
                pending.retain(|r| {
                    if root.send(Rank(*r), tags::HEARTBEAT, probe.clone()).is_err() {
                        if let Some(f) = retired.get_mut(*r as usize) {
                            *f = true;
                        }
                        false
                    } else {
                        true
                    }
                });
            }
        }
        Ok(ready)
    }

    /// Ship `spec` to every slave and run the master loop over a per-job
    /// fork of the fleet's endpoint. The connections stay open when the
    /// job finishes, ready for the next call.
    pub fn run_job(
        &mut self,
        spec: &JobSpec,
        opts: JobOptions,
    ) -> Result<RemoteOutput, RuntimeError> {
        self.sync_membership();
        let ready = self.await_ready()?;
        if ready.is_empty() {
            return Err(RuntimeError::NoSlaves);
        }
        let mut ep = self.root.fork(self.fault.clone());
        let payload = frame::seal_raw(&spec.encode());
        // Mid-run joiners (and re-incarnated slaves) must learn the job
        // too: the acceptor ships this to everyone it admits from now on.
        if let Some(acc) = &self.control.acceptor {
            acc.set_join_payload(tags::JOB.0, payload.to_vec());
        }
        for r in &ready {
            // A link that died since the readiness barrier fails here;
            // the master's send-failure path excludes the slot.
            let _ = ep.send(Rank(*r), tags::JOB, payload.clone());
        }
        let mut deployment = spec.deployment(self.n_slaves, None);
        deployment.obs = opts.obs.clone();
        deployment.checkpoint = opts.checkpoint;
        let model = spec.model();
        let out = with_problem!(&spec.problem, p => {
            run_master_fleet(
                ep,
                &p,
                &model,
                &deployment,
                opts.resume.as_ref(),
                opts.tile_budget,
                Some(&self.control),
            )
        });
        // Clear before propagating any error: a stale payload would ship
        // yesterday's job to tomorrow's joiners.
        if let Some(acc) = &self.control.acceptor {
            acc.clear_join_payload();
        }
        let out = out?;
        if let (Some(reg), Some(info)) = (&opts.obs.metrics, self.socket_info()) {
            publish_socket_stats(reg, info);
        }
        Ok(RemoteOutput {
            matrix: out.matrix,
            report: RunReport {
                elapsed: out.elapsed,
                master: out.stats,
                slaves: out.slave_stats,
                trace: out.trace,
            },
            checkpoint: out.checkpoint,
            socket: self.socket_info().cloned(),
        })
    }

    /// Send SHUTDOWN to every slave and tear the fleet down. Local slave
    /// threads are joined and their per-slave service summaries
    /// returned; remote slaves exit their own processes' loops.
    pub fn shutdown(self) -> Vec<SlaveServeSummary> {
        let Fleet {
            mut root,
            slaves,
            n_slaves,
            control,
            ..
        } = self;
        let bye = frame::seal_raw(&[]);
        for r in 1..=n_slaves as u32 {
            let _ = root.send(Rank(r), tags::SHUTDOWN, bye.clone());
        }
        // Drop the root *before* joining: a slave that was still mid-
        // teardown when SHUTDOWN flew past it (discarded by its linger)
        // only notices the fleet is gone when its next READY/heartbeat
        // send fails — which requires the master side of the links to
        // actually close. Socket writers flush queued frames (the
        // SHUTDOWN) before closing.
        drop(root);
        // The elastic acceptor holds a clone of the link table: it must
        // go too (stopping the accept thread and closing Await-mode
        // conns) or the socket writers would never exit.
        drop(control);
        match slaves {
            FleetSlaves::Remote(_) => Vec::new(),
            FleetSlaves::Local(handles) => handles
                .into_iter()
                .filter_map(|h| h.join().ok().and_then(|r| r.ok()))
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use easyhps_core::GridDims;

    fn editdist_spec(a: &[u8], b: &[u8]) -> JobSpec {
        JobSpec::new(
            RemoteProblem::EditDistance {
                a: a.to_vec(),
                b: b.to_vec(),
            },
            GridDims::new(8, 8),
            GridDims::new(4, 4),
        )
    }

    /// The satellite fix, in-process: one fleet runs two different jobs
    /// back to back over the same links, both bit-identical to their
    /// sequential references.
    #[test]
    fn local_fleet_reuses_slaves_across_jobs() {
        let mut fleet = Fleet::local(2, None).unwrap();
        let specs = [
            editdist_spec(b"kitten sat on the mat", b"sitting on the hat"),
            editdist_spec(b"abcdefghij", b"jihgfedcba"),
        ];
        for spec in &specs {
            let out = fleet.run_job(spec, JobOptions::default()).unwrap();
            let reference = spec.problem.solve_sequential();
            let d = reference.dims();
            assert_eq!(
                out.matrix.get(d.rows - 1, d.cols - 1),
                reference.get(d.rows - 1, d.cols - 1)
            );
        }
        let summaries = fleet.shutdown();
        assert_eq!(summaries.len(), 2);
        assert_eq!(
            summaries.iter().map(|s| s.jobs).sum::<u64>(),
            4,
            "each slave served both jobs"
        );
    }

    /// Regression: a slave that dies *between* jobs is a membership
    /// change, not a 60-second readiness stall. The barrier probes the
    /// silent rank, finds the link gone, retires it, and the next job
    /// completes promptly on the survivor.
    #[test]
    fn slave_death_between_jobs_is_a_membership_change() {
        let mut eps = Network::new(3);
        let root = eps.remove(0);
        let mut kills = Vec::new();
        let handles = eps
            .into_iter()
            .map(|ep| {
                kills.push(ep.kill_handle());
                std::thread::spawn(move || slave_job_loop(ep, None, None, None))
            })
            .collect();
        let mut fleet = Fleet {
            root,
            n_slaves: 2,
            fault: None,
            slaves: FleetSlaves::Local(handles),
            control: FleetControl::new(None),
            retired: vec![false; 3],
        };

        let spec = editdist_spec(b"a job for two slaves", b"before one dies");
        let out = fleet.run_job(&spec, JobOptions::default()).unwrap();
        assert_eq!(out.report.master.dead_slaves, 0);

        // Kill slave 2 between jobs: its loop observes the kill within
        // one liveness slice, exits, and drops its endpoint.
        kills[1].kill();
        std::thread::sleep(Duration::from_millis(50));

        let t = Instant::now();
        let spec = editdist_spec(b"the survivor finishes", b"this one alone");
        let out = fleet.run_job(&spec, JobOptions::default()).unwrap();
        let reference = spec.problem.solve_sequential();
        let d = reference.dims();
        assert_eq!(
            out.matrix.get(d.rows - 1, d.cols - 1),
            reference.get(d.rows - 1, d.cols - 1)
        );
        assert!(
            t.elapsed() < Duration::from_secs(30),
            "readiness barrier burned the deadline on a dead slave: {:?}",
            t.elapsed()
        );
        assert!(fleet.retired[2], "dead rank must be retired");
        fleet.shutdown();
    }

    /// Elastic fleet over TCP: a second slave joins *between* jobs and
    /// serves the next one; draining it afterwards releases its rank and
    /// the remaining jobs still complete.
    #[test]
    fn elastic_fleet_admits_joiner_and_drains_it() {
        use crate::remote::{serve_slave_jobs, RemoteSlaveOptions};
        use easyhps_net::socket::SocketConfig;
        use easyhps_net::NetAddr;

        let listener = SocketListener::bind(
            &NetAddr::parse("127.0.0.1:0").unwrap(),
            SocketConfig::default(),
        )
        .unwrap();
        let addr = listener.local_addr();
        let first = {
            let mut o = RemoteSlaveOptions::new(addr.clone());
            o.want_rank = Some(1);
            std::thread::spawn(move || serve_slave_jobs(o))
        };
        let mut fleet = Fleet::accept_elastic(listener, 1).unwrap();

        let spec = editdist_spec(b"one slave to begin with", b"the fleet grows later");
        fleet.run_job(&spec, JobOptions::default()).unwrap();

        // A new slave walks up between jobs (wildcard rank: the acceptor
        // assigns the next free one).
        let second = {
            let o = RemoteSlaveOptions::new(addr);
            std::thread::spawn(move || serve_slave_jobs(o))
        };
        // Wait for admission so the next barrier counts it.
        let acc = fleet.acceptor().unwrap().clone();
        let t = Instant::now();
        while acc.live_ranks().len() < 2 && t.elapsed() < Duration::from_secs(10) {
            std::thread::sleep(Duration::from_millis(10));
        }
        assert_eq!(acc.live_ranks().len(), 2, "joiner not admitted");

        let spec = editdist_spec(b"now two slaves share it", b"the job after the join");
        let out = fleet.run_job(&spec, JobOptions::default()).unwrap();
        assert_eq!(fleet.n_slaves(), 2);
        let reference = spec.problem.solve_sequential();
        let d = reference.dims();
        assert_eq!(
            out.matrix.get(d.rows - 1, d.cols - 1),
            reference.get(d.rows - 1, d.cols - 1)
        );

        // Drain rank 2: the request is consumed by the next job's
        // master, which releases the idle rank at once and computes the
        // whole job on rank 1.
        fleet.drain(2);
        let spec = editdist_spec(b"drained back down to one", b"the last job of the test");
        let out = fleet.run_job(&spec, JobOptions::default()).unwrap();
        let reference = spec.problem.solve_sequential();
        let d = reference.dims();
        assert_eq!(
            out.matrix.get(d.rows - 1, d.cols - 1),
            reference.get(d.rows - 1, d.cols - 1)
        );
        assert!(
            !acc.live_ranks().contains(&2),
            "drained rank must be released: {:?}",
            acc.live_ranks()
        );

        fleet.shutdown();
        first.join().unwrap().unwrap();
        // The drained slave's loop exits once its link closes — possibly
        // with a net error if release caught it mid-recv, which is fine.
        let _ = second.join().unwrap();
    }

    /// Same over real TCP: the socket connections survive the first job.
    #[test]
    fn tcp_fleet_reuses_connections_across_jobs() {
        use crate::remote::{serve_slave_jobs, RemoteSlaveOptions};
        use easyhps_net::socket::SocketConfig;
        use easyhps_net::NetAddr;

        let listener = SocketListener::bind(
            &NetAddr::parse("127.0.0.1:0").unwrap(),
            SocketConfig::default(),
        )
        .unwrap();
        let addr = listener.local_addr();
        let slaves: Vec<_> = (1..=2u32)
            .map(|r| {
                let mut o = RemoteSlaveOptions::new(addr.clone());
                o.want_rank = Some(r);
                std::thread::spawn(move || serve_slave_jobs(o))
            })
            .collect();
        let mut fleet = Fleet::accept(listener, 2, None).unwrap();
        for text in ["the first job of the fleet", "and a different second one"] {
            let spec = editdist_spec(text.as_bytes(), b"a shared reference string");
            let out = fleet.run_job(&spec, JobOptions::default()).unwrap();
            let reference = spec.problem.solve_sequential();
            let d = reference.dims();
            assert_eq!(
                out.matrix.get(d.rows - 1, d.cols - 1),
                reference.get(d.rows - 1, d.cols - 1)
            );
        }
        fleet.shutdown();
        for s in slaves {
            let summary = s.join().unwrap().unwrap();
            assert_eq!(summary.jobs, 2, "slave must have served both jobs");
        }
    }
}
