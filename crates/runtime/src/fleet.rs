//! A persistent slave fleet: connections that outlive a single job.
//!
//! `run_remote_master` used to accept slave connections, run one job and
//! drop the endpoint — which closed every socket, leaving the slaves
//! unusable for a second run. [`Fleet`] factors the acceptance/handshake
//! step out and *owns* the links: each job runs on a per-job
//! [`Endpoint::fork`](easyhps_net::Endpoint::fork) of the shared root
//! endpoint, so dropping the job's endpoint leaves the connections open
//! (the socket writer thread exits only when the last `TxLink` clone is
//! gone). The one-shot `easyhps master` path and the serve daemon share
//! this type; the daemon simply calls [`Fleet::run_job`] many times.
//!
//! Slaves run the matching loop ([`serve_slave_jobs`]
//! (crate::remote::serve_slave_jobs)): wait for a [`tags::JOB`] frame,
//! run the ordinary slave loop on a fork of their connection, repeat
//! until [`tags::SHUTDOWN`] arrives or the master disappears.
//!
//! An in-process variant ([`Fleet::local`]) spawns the same multi-job
//! slave loop on threads over channel links — the serve daemon's default
//! fleet when no `--fleet-listen` address is given.
//!
//! Fault injection composes with the one-shot path only: a fault plan
//! replays from its first clause on every forked endpoint, and a job
//! that dies mid-run can leave slaves executing stale work, so a fleet
//! that will run more than one job must not inject faults.

use crate::checkpoint::Checkpoint;
use crate::config::{ObsConfig, RunReport};
use crate::durable::CheckpointPolicy;
use crate::master::run_master_with;
use crate::protocol::tags;
use crate::remote::{
    publish_socket_stats, slave_job_loop, with_problem, JobSpec, RemoteOutput, RemoteProblem,
    SlaveServeSummary,
};
use crate::RuntimeError;
use easyhps_dp::{EditDistance, Lcs, NeedlemanWunsch, Nussinov, SmithWatermanGeneralGap};
use easyhps_net::socket::{SocketInfo, SocketListener};
use easyhps_net::{frame, Endpoint, FaultPlan, Network, Rank};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Per-job knobs for [`Fleet::run_job`] — the job-scoped subset of
/// [`RemoteMasterOptions`](crate::remote::RemoteMasterOptions).
#[derive(Debug, Default)]
pub struct JobOptions {
    /// Observability wiring for this job (a daemon hands each job its
    /// own registry and republishes it with `job=`/`tenant=` labels).
    pub obs: ObsConfig,
    /// Durable checkpoint policy for this job.
    pub checkpoint: Option<CheckpointPolicy>,
    /// Resume from a previously captured checkpoint.
    pub resume: Option<Checkpoint>,
    /// Stop after this many tile completions and return a checkpoint.
    pub tile_budget: Option<u64>,
}

enum FleetSlaves {
    /// Remote slaves over sockets; the info carries per-link counters.
    Remote(SocketInfo),
    /// In-process slave threads over channel links.
    Local(Vec<JoinHandle<Result<SlaveServeSummary, RuntimeError>>>),
}

/// A set of connected, rank-assigned slaves that stays usable across
/// jobs. Create with [`Fleet::accept`] (sockets) or [`Fleet::local`]
/// (threads), run any number of jobs, then [`Fleet::shutdown`].
pub struct Fleet {
    root: Endpoint,
    n_slaves: usize,
    fault: Option<FaultPlan>,
    slaves: FleetSlaves,
}

impl Fleet {
    /// Accept `n_slaves` socket connections on an already-bound listener
    /// and perform the rank handshake. `fault` configures the master's
    /// fault injection for drills — see the module docs for why a faulty
    /// fleet must stay single-job.
    pub fn accept(
        listener: SocketListener,
        n_slaves: usize,
        fault: Option<FaultPlan>,
    ) -> Result<Fleet, RuntimeError> {
        if n_slaves == 0 {
            return Err(RuntimeError::NoSlaves);
        }
        let (root, info) = listener
            .accept_ranks(n_slaves, None)
            .map_err(|e| RuntimeError::InvalidConfig(format!("accepting slaves: {e}")))?;
        Ok(Fleet {
            root,
            n_slaves,
            fault,
            slaves: FleetSlaves::Remote(info),
        })
    }

    /// An in-process fleet: `n_slaves` threads running the multi-job
    /// slave loop over channel links. `threads` overrides each job's
    /// `threads_per_slave` when set.
    pub fn local(n_slaves: usize, threads: Option<usize>) -> Result<Fleet, RuntimeError> {
        if n_slaves == 0 {
            return Err(RuntimeError::NoSlaves);
        }
        let mut eps = Network::new(n_slaves + 1);
        let root = eps.remove(0);
        let handles = eps
            .into_iter()
            .enumerate()
            .map(|(i, ep)| {
                std::thread::Builder::new()
                    .name(format!("fleet-slave-{}", i + 1))
                    .spawn(move || slave_job_loop(ep, threads, None, None))
                    .expect("spawn fleet slave")
            })
            .collect();
        Ok(Fleet {
            root,
            n_slaves,
            fault: None,
            slaves: FleetSlaves::Local(handles),
        })
    }

    /// Number of slaves in the fleet.
    pub fn n_slaves(&self) -> usize {
        self.n_slaves
    }

    /// Per-link socket counters; `None` for an in-process fleet.
    pub fn socket_info(&self) -> Option<&SocketInfo> {
        match &self.slaves {
            FleetSlaves::Remote(info) => Some(info),
            FleetSlaves::Local(_) => None,
        }
    }

    /// Job-boundary barrier: consume one READY per slave before the
    /// next JOB ships. A slave announces READY when it enters its idle
    /// loop (on connect and after each finished job); until then its
    /// previous job's reliable teardown may still be lingering, and the
    /// linger ACKs-and-discards unexpected frames — a JOB sent early
    /// would be silently lost. Stray heartbeats and late ACKs queued
    /// between jobs are discarded along the way.
    fn await_ready(&mut self) -> Result<(), RuntimeError> {
        const READY_TIMEOUT: Duration = Duration::from_secs(60);
        let deadline = Instant::now() + READY_TIMEOUT;
        let mut ready = vec![false; self.n_slaves + 1];
        let mut seen = 0;
        while seen < self.n_slaves {
            let left = deadline.saturating_duration_since(Instant::now());
            if left.is_zero() {
                return Err(RuntimeError::InvalidConfig(format!(
                    "timed out waiting for {} slave(s) to finish their previous job",
                    self.n_slaves - seen
                )));
            }
            match self.root.recv_timeout(left.min(Duration::from_millis(200))) {
                Ok(env) if env.tag == tags::READY => {
                    let r = env.src.index();
                    if (1..=self.n_slaves).contains(&r) && !ready[r] {
                        ready[r] = true;
                        seen += 1;
                    }
                }
                Ok(_) => {} // stray heartbeat / late ACK between jobs
                Err(easyhps_net::NetError::Timeout) => {}
                Err(e) => return Err(e.into()),
            }
        }
        Ok(())
    }

    /// Ship `spec` to every slave and run the master loop over a per-job
    /// fork of the fleet's endpoint. The connections stay open when the
    /// job finishes, ready for the next call.
    pub fn run_job(
        &mut self,
        spec: &JobSpec,
        opts: JobOptions,
    ) -> Result<RemoteOutput, RuntimeError> {
        self.await_ready()?;
        let mut ep = self.root.fork(self.fault.clone());
        let payload = frame::seal_raw(&spec.encode());
        for r in 1..=self.n_slaves as u32 {
            ep.send(Rank(r), tags::JOB, payload.clone())?;
        }
        let mut deployment = spec.deployment(self.n_slaves, None);
        deployment.obs = opts.obs.clone();
        deployment.checkpoint = opts.checkpoint;
        let model = spec.model();
        let out = with_problem!(&spec.problem, p => {
            run_master_with(ep, &p, &model, &deployment, opts.resume.as_ref(), opts.tile_budget)?
        });
        if let (Some(reg), Some(info)) = (&opts.obs.metrics, self.socket_info()) {
            publish_socket_stats(reg, info);
        }
        Ok(RemoteOutput {
            matrix: out.matrix,
            report: RunReport {
                elapsed: out.elapsed,
                master: out.stats,
                slaves: out.slave_stats,
                trace: out.trace,
            },
            checkpoint: out.checkpoint,
            socket: self.socket_info().cloned(),
        })
    }

    /// Send SHUTDOWN to every slave and tear the fleet down. Local slave
    /// threads are joined and their per-slave service summaries
    /// returned; remote slaves exit their own processes' loops.
    pub fn shutdown(self) -> Vec<SlaveServeSummary> {
        let Fleet {
            mut root,
            slaves,
            n_slaves,
            ..
        } = self;
        let bye = frame::seal_raw(&[]);
        for r in 1..=n_slaves as u32 {
            let _ = root.send(Rank(r), tags::SHUTDOWN, bye.clone());
        }
        // Drop the root *before* joining: a slave that was still mid-
        // teardown when SHUTDOWN flew past it (discarded by its linger)
        // only notices the fleet is gone when its next READY/heartbeat
        // send fails — which requires the master side of the links to
        // actually close. Socket writers flush queued frames (the
        // SHUTDOWN) before closing.
        drop(root);
        match slaves {
            FleetSlaves::Remote(_) => Vec::new(),
            FleetSlaves::Local(handles) => handles
                .into_iter()
                .filter_map(|h| h.join().ok().and_then(|r| r.ok()))
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use easyhps_core::GridDims;

    fn editdist_spec(a: &[u8], b: &[u8]) -> JobSpec {
        JobSpec::new(
            RemoteProblem::EditDistance {
                a: a.to_vec(),
                b: b.to_vec(),
            },
            GridDims::new(8, 8),
            GridDims::new(4, 4),
        )
    }

    /// The satellite fix, in-process: one fleet runs two different jobs
    /// back to back over the same links, both bit-identical to their
    /// sequential references.
    #[test]
    fn local_fleet_reuses_slaves_across_jobs() {
        let mut fleet = Fleet::local(2, None).unwrap();
        let specs = [
            editdist_spec(b"kitten sat on the mat", b"sitting on the hat"),
            editdist_spec(b"abcdefghij", b"jihgfedcba"),
        ];
        for spec in &specs {
            let out = fleet.run_job(spec, JobOptions::default()).unwrap();
            let reference = spec.problem.solve_sequential();
            let d = reference.dims();
            assert_eq!(
                out.matrix.get(d.rows - 1, d.cols - 1),
                reference.get(d.rows - 1, d.cols - 1)
            );
        }
        let summaries = fleet.shutdown();
        assert_eq!(summaries.len(), 2);
        assert_eq!(
            summaries.iter().map(|s| s.jobs).sum::<u64>(),
            4,
            "each slave served both jobs"
        );
    }

    /// Same over real TCP: the socket connections survive the first job.
    #[test]
    fn tcp_fleet_reuses_connections_across_jobs() {
        use crate::remote::{serve_slave_jobs, RemoteSlaveOptions};
        use easyhps_net::socket::SocketConfig;
        use easyhps_net::NetAddr;

        let listener = SocketListener::bind(
            &NetAddr::parse("127.0.0.1:0").unwrap(),
            SocketConfig::default(),
        )
        .unwrap();
        let addr = listener.local_addr();
        let slaves: Vec<_> = (1..=2u32)
            .map(|r| {
                let mut o = RemoteSlaveOptions::new(addr.clone());
                o.want_rank = Some(r);
                std::thread::spawn(move || serve_slave_jobs(o))
            })
            .collect();
        let mut fleet = Fleet::accept(listener, 2, None).unwrap();
        for text in ["the first job of the fleet", "and a different second one"] {
            let spec = editdist_spec(text.as_bytes(), b"a shared reference string");
            let out = fleet.run_job(&spec, JobOptions::default()).unwrap();
            let reference = spec.problem.solve_sequential();
            let d = reference.dims();
            assert_eq!(
                out.matrix.get(d.rows - 1, d.cols - 1),
                reference.get(d.rows - 1, d.cols - 1)
            );
        }
        fleet.shutdown();
        for s in slaves {
            let summary = s.join().unwrap().unwrap();
            assert_eq!(summary.jobs, 2, "slave must have served both jobs");
        }
    }
}
