//! Runtime ↔ observability glue: metric handle bundles, lane layout and
//! endpoint-stat publication.
//!
//! The runtime instruments itself against [`easyhps_obs`] through the
//! [`ObsConfig`](crate::ObsConfig) carried by the deployment. Master and
//! slaves **always** register their metrics — against the user's shared
//! registry when one is configured, against a private throwaway one
//! otherwise — so the counting code has no enabled/disabled branches;
//! disabling merely makes the numbers unobservable. Event lanes go through
//! [`LaneBuf::disabled`] the same way.
//!
//! ## Lane layout (Chrome `pid`/`tid`)
//!
//! | pid     | process        | tid             | thread                  |
//! |---------|----------------|-----------------|-------------------------|
//! | 0       | master         | 0               | scheduler (instants)    |
//! | 0       | master         | 1 + w           | slot for slave `w` (tile spans) |
//! | 0       | master         | [`TID_FT`]      | fault-tolerance thread  |
//! | 0       | master         | [`TID_NET`]     | reliable endpoint       |
//! | 1 + w   | slave `w`      | 0               | slave scheduler         |
//! | 1 + w   | slave `w`      | 1..=ct          | computing threads       |
//! | 1 + w   | slave `w`      | [`TID_NET`]     | reliable endpoint       |

use crate::config::ObsConfig;
use easyhps_net::ReliableEndpoint;
use easyhps_obs::{labeled, Counter, Gauge, Histogram, LaneBuf, Registry};
use std::sync::Arc;

/// Chrome tid of a rank's fault-tolerance thread (master only).
pub(crate) const TID_FT: u32 = 98;
/// Chrome tid of a rank's reliable-endpoint events.
pub(crate) const TID_NET: u32 = 99;

/// The registry to instrument against: the configured one, or a private
/// throwaway so counting code never branches on "metrics enabled".
pub(crate) fn registry_of(obs: &ObsConfig) -> Arc<Registry> {
    obs.metrics
        .clone()
        .unwrap_or_else(|| Arc::new(Registry::new()))
}

/// An event lane for `(pid, tid)`, disabled when tracing is off.
pub(crate) fn lane_of(obs: &ObsConfig, pid: u32, tid: u32) -> LaneBuf {
    obs.recorder
        .as_ref()
        .map_or_else(LaneBuf::disabled, |r| r.lane(pid, tid))
}

/// Master-side metric handles (hot-path `Arc`s, cloned freely).
#[derive(Clone, Debug)]
pub(crate) struct MasterMetrics {
    /// Sub-tasks dispatched (ASSIGNs actually sent; excludes resumed).
    pub dispatched: Arc<Counter>,
    /// Sub-tasks re-dispatched after a timeout or an abandoned send.
    pub redispatched: Arc<Counter>,
    /// Completions accepted over the wire.
    pub completed: Arc<Counter>,
    /// Sub-tasks preloaded from a checkpoint instead of dispatched.
    pub resumed: Arc<Counter>,
    /// Stale duplicate completions ignored.
    pub stale: Arc<Counter>,
    /// Slaves excluded by fault tolerance (monotone; see `dead_slaves`).
    pub exclusions: Arc<Counter>,
    /// Excluded slaves re-admitted after proving alive.
    pub readmissions: Arc<Counter>,
    /// Slave incarnations re-admitted under a new fleet epoch.
    pub rejoins: Arc<Counter>,
    /// DONEs rejected because their echoed epoch predates the slave's
    /// current incarnation (zombie completions fenced out).
    pub stale_epoch_rejected: Arc<Counter>,
    /// Reliable sends the master abandoned.
    pub send_failures: Arc<Counter>,
    /// Checkpoints captured (tile-budget captures and durable flushes).
    pub checkpoints: Arc<Counter>,
    /// Sub-tasks restored from the *durable* store on resume (subset of
    /// `resumed`, which also counts in-memory resume tiles).
    pub restored: Arc<Counter>,
    /// Bytes appended to the durable checkpoint store.
    pub checkpoint_bytes: Arc<Counter>,
    /// Currently-excluded slaves (exclusions minus re-admissions).
    pub dead_slaves: Arc<Gauge>,
    /// Dispatch-to-completion latency per tile, nanoseconds.
    pub tile_latency: Arc<Histogram>,
    /// Wall-clock cost of each durable checkpoint flush, microseconds.
    pub checkpoint_write_us: Arc<Histogram>,
}

impl MasterMetrics {
    pub(crate) fn register(reg: &Registry) -> Self {
        Self {
            dispatched: reg.counter("master_tiles_dispatched"),
            redispatched: reg.counter("master_tiles_redispatched"),
            completed: reg.counter("master_tiles_completed"),
            resumed: reg.counter("master_tiles_resumed"),
            stale: reg.counter("master_stale_completions"),
            exclusions: reg.counter("master_slave_exclusions"),
            readmissions: reg.counter("master_slave_readmissions"),
            rejoins: reg.counter("master_slave_rejoins"),
            stale_epoch_rejected: reg.counter("master_stale_epoch_rejected"),
            send_failures: reg.counter("master_send_failures"),
            checkpoints: reg.counter("master_checkpoints"),
            restored: reg.counter("master_tiles_restored"),
            checkpoint_bytes: reg.counter("checkpoint_bytes"),
            dead_slaves: reg.gauge("master_dead_slaves"),
            tile_latency: reg.histogram("master_tile_latency_ns"),
            checkpoint_write_us: reg.histogram("checkpoint_write_us"),
        }
    }
}

/// Slave-side metric handles, one labelled series set per slave index.
#[derive(Clone, Debug)]
pub(crate) struct SlaveMetrics {
    /// Master-level sub-tasks completed.
    pub tiles: Arc<Counter>,
    /// Thread-level sub-sub-tasks completed.
    pub subtasks: Arc<Counter>,
    /// Computing-thread panics caught and re-queued.
    pub thread_failures: Arc<Counter>,
    /// Nanoseconds spent computing, summed over computing threads.
    pub busy_ns: Arc<Counter>,
    /// Heartbeats emitted.
    pub heartbeats: Arc<Counter>,
    /// Peak node-matrix bytes allocated.
    pub peak_node_bytes: Arc<Gauge>,
    /// Per-sub-sub-task kernel latency, nanoseconds.
    pub subtask_latency: Arc<Histogram>,
}

impl SlaveMetrics {
    pub(crate) fn register(reg: &Registry, slave: usize) -> Self {
        let s = slave.to_string();
        let l = |name: &str| labeled(name, &[("slave", &s)]);
        Self {
            tiles: reg.counter(&l("slave_tiles_done")),
            subtasks: reg.counter(&l("slave_subtasks_done")),
            thread_failures: reg.counter(&l("slave_thread_failures")),
            busy_ns: reg.counter(&l("slave_busy_ns")),
            heartbeats: reg.counter(&l("slave_heartbeats")),
            peak_node_bytes: reg.gauge(&l("slave_peak_node_bytes")),
            subtask_latency: reg.histogram(&l("slave_subtask_latency_ns")),
        }
    }
}

/// Publish a reliable endpoint's counters into the registry at teardown:
/// aggregate reliability and transport counters under a `role` label, plus
/// per-peer retransmit/duplicate/abandon series for every peer that has
/// any (so quiet peers do not bloat the snapshot).
pub(crate) fn publish_endpoint_stats(reg: &Registry, role: &str, rep: &ReliableEndpoint) {
    let l = |name: &str| labeled(name, &[("role", role)]);
    let reli = rep.stats();
    reg.counter(&l("net_retransmits")).add(reli.retransmits);
    reg.counter(&l("net_duplicates")).add(reli.duplicates);
    reg.counter(&l("net_send_failures")).add(reli.give_ups);
    reg.counter(&l("net_backoff_wait_ns"))
        .add(reli.backoff_wait_ns);
    reg.counter(&l("net_acks_sent")).add(reli.acks_sent);
    reg.counter(&l("net_acks_recv")).add(reli.acks_recv);
    reg.counter(&l("net_frames_corrupt"))
        .add(reli.corrupt_frames);
    let net = rep.net_stats();
    reg.counter(&l("net_msgs_corrupted"))
        .add(net.corrupted_msgs);
    reg.counter(&l("net_links_severed")).add(net.severed_links);
    reg.counter(&l("net_msgs_sent")).add(net.sent_msgs);
    reg.counter(&l("net_bytes_sent")).add(net.sent_bytes);
    reg.counter(&l("net_msgs_recv")).add(net.recv_msgs);
    reg.counter(&l("net_bytes_recv")).add(net.recv_bytes);
    for (peer, pp) in rep.all_peer_stats().iter().enumerate() {
        if *pp == easyhps_net::PeerReliStats::default() {
            continue;
        }
        let p = peer.to_string();
        let lp = |name: &str| labeled(name, &[("role", role), ("peer", &p)]);
        reg.counter(&lp("net_peer_retransmits")).add(pp.retransmits);
        reg.counter(&lp("net_peer_duplicates")).add(pp.duplicates);
        reg.counter(&lp("net_peer_send_failures"))
            .add(pp.send_failures);
    }
}
