//! The master/slave wire protocol.
//!
//! Six message kinds, mirroring the paper's workflow (§III): slaves
//! announce idleness, the master assigns registered sub-tasks with their
//! input strips, slaves reply with computed regions, and the master ends
//! the run with a shutdown signal that slaves answer with their stats.
//! Heartbeats ride alongside so the master can tell a slow slave from a
//! dead one.
//!
//! Control messages (IDLE/ASSIGN/DONE/END/STATS) travel over
//! [`easyhps_net::ReliableEndpoint`] — acknowledged, retransmitted,
//! deduplicated — so a lossy network delays but does not lose them.
//! HEARTBEAT is fire-and-forget.

use bytes::Bytes;
use easyhps_core::{GridPos, TileRegion};
use easyhps_net::{WireError, WireReader, WireWriter};

/// Protocol tags.
pub mod tags {
    use easyhps_net::Tag;

    /// Slave -> master: "I am idle" (sent once at startup and implied by
    /// every DONE).
    pub const IDLE: Tag = Tag(1);
    /// Master -> slave: sub-task assignment with input strips.
    pub const ASSIGN: Tag = Tag(2);
    /// Slave -> master: computed sub-task region.
    pub const DONE: Tag = Tag(3);
    /// Master -> slave: shut down.
    pub const END: Tag = Tag(4);
    /// Slave -> master: final execution stats (reply to END).
    pub const STATS: Tag = Tag(5);
    /// Slave -> master: "I am alive" (sent unreliably at
    /// `heartbeat_interval`, including from inside a long tile
    /// computation; a lost one is superseded by the next).
    pub const HEARTBEAT: Tag = Tag(6);
    /// Master -> slave: serialized job description (problem, partitions,
    /// deployment knobs) sent once right after the socket handshake so a
    /// remote slave can reconstruct the run. A multi-job fleet slave
    /// receives one per job.
    pub const JOB: Tag = Tag(7);
    /// Master -> slave: the fleet is done with this slave; exit the job
    /// loop. Distinct from END, which finishes one job — SHUTDOWN ends
    /// the slave process's whole service loop.
    pub const SHUTDOWN: Tag = Tag(8);
    /// Slave -> master: "ready for the next job" — sent when a fleet
    /// slave enters its idle loop (on connect and after each finished
    /// job). The master consumes one READY per slave before shipping a
    /// JOB: a slave still tearing down its previous job discards
    /// unexpected frames (its reliable layer's shutdown linger), so a
    /// JOB sent early would be lost.
    pub const READY: Tag = Tag(9);
}

fn put_region(w: &mut WireWriter, r: TileRegion) {
    w.put_u32(r.row_start)
        .put_u32(r.row_end)
        .put_u32(r.col_start)
        .put_u32(r.col_end);
}

fn get_region(r: &mut WireReader<'_>) -> Result<TileRegion, WireError> {
    Ok(TileRegion::new(
        r.get_u32()?,
        r.get_u32()?,
        r.get_u32()?,
        r.get_u32()?,
    ))
}

/// Master -> slave sub-task assignment.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AssignMsg {
    /// Dense id of the master-DAG vertex.
    pub task: u32,
    /// Fleet epoch the assignment was issued under. The slave echoes it
    /// verbatim into the corresponding [`DoneMsg`], letting the master
    /// fence completions computed by a since-replaced incarnation. Always
    /// 0 for in-process runs (no fleet, no epochs).
    pub epoch: u64,
    /// Tile position of the vertex in the abstract DAG.
    pub tile: GridPos,
    /// Cell region the slave must compute.
    pub region: TileRegion,
    /// Input strips: `(region, encoded cells)` for every data dependency.
    pub inputs: Vec<(TileRegion, Vec<u8>)>,
}

impl AssignMsg {
    /// Encode to payload bytes.
    pub fn encode(&self) -> Bytes {
        let body: usize = self.inputs.iter().map(|(_, b)| b.len() + 20).sum();
        let mut w = WireWriter::with_capacity(40 + body);
        w.put_u32(self.task)
            .put_u64(self.epoch)
            .put_u32(self.tile.row)
            .put_u32(self.tile.col);
        put_region(&mut w, self.region);
        w.put_u32(self.inputs.len() as u32);
        for (region, bytes) in &self.inputs {
            put_region(&mut w, *region);
            w.put_bytes(bytes);
        }
        w.finish()
    }

    /// Decode from payload bytes.
    pub fn decode(buf: &[u8]) -> Result<Self, WireError> {
        let mut r = WireReader::new(buf);
        let task = r.get_u32()?;
        let epoch = r.get_u64()?;
        let tile = GridPos::new(r.get_u32()?, r.get_u32()?);
        let region = get_region(&mut r)?;
        let n = r.get_u32()?;
        // Every input takes at least 20 bytes (region + length prefix);
        // a count the remaining bytes cannot hold is corrupt, and must be
        // rejected *before* the allocation it sizes.
        if n as u64 * 20 > r.remaining() as u64 {
            return Err(WireError {
                context: "assign input count exceeds buffer",
            });
        }
        let mut inputs = Vec::with_capacity(n as usize);
        for _ in 0..n {
            let reg = get_region(&mut r)?;
            let bytes = r.get_bytes()?;
            inputs.push((reg, bytes));
        }
        r.expect_end()?;
        Ok(Self {
            task,
            epoch,
            tile,
            region,
            inputs,
        })
    }
}

/// Slave -> master completed sub-task.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DoneMsg {
    /// Dense id of the completed master-DAG vertex.
    pub task: u32,
    /// The epoch of the ASSIGN this completion answers, echoed blindly —
    /// a slave needs no epoch knowledge of its own. The master rejects a
    /// DONE whose echoed epoch is older than the rank's current one.
    pub epoch: u64,
    /// The computed region.
    pub region: TileRegion,
    /// Encoded cells of the region.
    pub output: Vec<u8>,
}

impl DoneMsg {
    /// Encode to payload bytes.
    pub fn encode(&self) -> Bytes {
        let mut w = WireWriter::with_capacity(32 + self.output.len());
        w.put_u32(self.task).put_u64(self.epoch);
        put_region(&mut w, self.region);
        w.put_bytes(&self.output);
        w.finish()
    }

    /// Decode from payload bytes.
    pub fn decode(buf: &[u8]) -> Result<Self, WireError> {
        let mut r = WireReader::new(buf);
        let task = r.get_u32()?;
        let epoch = r.get_u64()?;
        let region = get_region(&mut r)?;
        let output = r.get_bytes()?;
        r.expect_end()?;
        Ok(Self {
            task,
            epoch,
            region,
            output,
        })
    }
}

/// Slave -> master final statistics (reply to END).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SlaveStatsMsg {
    /// Master-level sub-tasks completed by this slave.
    pub tasks_done: u64,
    /// Thread-level sub-sub-tasks completed.
    pub subtasks_done: u64,
    /// Nanoseconds spent computing (sum over computing threads).
    pub busy_ns: u64,
    /// Thread-level failures recovered (panics caught and re-run).
    pub thread_failures: u64,
    /// Peak bytes of node-matrix memory allocated on this slave.
    pub peak_node_bytes: u64,
    /// Computing threads spawned over the slave's lifetime. With the
    /// persistent pool this equals the configured thread count, however
    /// many tiles the slave executed.
    pub threads_spawned: u64,
}

impl SlaveStatsMsg {
    /// Encode to payload bytes.
    pub fn encode(&self) -> Bytes {
        let mut w = WireWriter::with_capacity(48);
        w.put_u64(self.tasks_done)
            .put_u64(self.subtasks_done)
            .put_u64(self.busy_ns)
            .put_u64(self.thread_failures)
            .put_u64(self.peak_node_bytes)
            .put_u64(self.threads_spawned);
        w.finish()
    }

    /// Decode from payload bytes.
    pub fn decode(buf: &[u8]) -> Result<Self, WireError> {
        let mut r = WireReader::new(buf);
        let out = Self {
            tasks_done: r.get_u64()?,
            subtasks_done: r.get_u64()?,
            busy_ns: r.get_u64()?,
            thread_failures: r.get_u64()?,
            peak_node_bytes: r.get_u64()?,
            threads_spawned: r.get_u64()?,
        };
        r.expect_end()?;
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn assign_roundtrip() {
        let msg = AssignMsg {
            task: 7,
            epoch: 3,
            tile: GridPos::new(1, 2),
            region: TileRegion::new(10, 20, 30, 40),
            inputs: vec![
                (TileRegion::new(0, 10, 30, 40), vec![1, 2, 3, 4]),
                (TileRegion::new(10, 20, 0, 30), vec![]),
            ],
        };
        assert_eq!(AssignMsg::decode(&msg.encode()).unwrap(), msg);
    }

    #[test]
    fn done_roundtrip() {
        let msg = DoneMsg {
            task: 3,
            epoch: u64::MAX / 7,
            region: TileRegion::new(0, 5, 5, 9),
            output: (0..80).collect(),
        };
        assert_eq!(DoneMsg::decode(&msg.encode()).unwrap(), msg);
    }

    #[test]
    fn stats_roundtrip() {
        let msg = SlaveStatsMsg {
            tasks_done: 10,
            subtasks_done: 400,
            busy_ns: u64::MAX / 3,
            thread_failures: 2,
            peak_node_bytes: 1 << 40,
            threads_spawned: 4,
        };
        assert_eq!(SlaveStatsMsg::decode(&msg.encode()).unwrap(), msg);
    }

    #[test]
    fn decode_rejects_garbage() {
        assert!(AssignMsg::decode(&[1, 2, 3]).is_err());
        assert!(DoneMsg::decode(&[]).is_err());
        let msg = DoneMsg {
            task: 0,
            epoch: 0,
            region: TileRegion::new(0, 1, 0, 1),
            output: vec![9],
        };
        let mut bytes = msg.encode().to_vec();
        bytes.push(0xFF); // trailing garbage
        assert!(DoneMsg::decode(&bytes).is_err());
    }
}
