//! The user API: configure a problem and a deployment, call `run()`.
//!
//! This is the EasyHPS promise (paper §I): "the only requirement is that
//! the programmer's implementation uses APIs supplied by EasyHPS". A user
//! provides a [`DpProblem`] (or picks one from `easyhps-dp`), the two
//! partition sizes, and a deployment shape; the runtime does partitioning,
//! scheduling, communication and fault tolerance.

use crate::autotune::{Autotuner, ProblemClass};
use crate::checkpoint::Checkpoint;
use crate::config::{Deployment, ObsConfig, RunReport};
use crate::durable::CheckpointPolicy;
use crate::master::run_master_with;
use crate::shared_grid::SharedGrid;
use crate::slave::run_slave_with_storage;
use crate::storage::SparseGrid;
use crate::RuntimeError;
use easyhps_core::ScheduleMode;
use easyhps_core::{DagDataDrivenModel, GridDims};
use easyhps_dp::{DpMatrix, DpProblem};
use easyhps_net::socket::{connect, SocketConfig, SocketListener};
use easyhps_net::{FaultPlan, NetAddr, Network, RetryPolicy};
use easyhps_obs::{EventRecorder, Registry};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Result of a full multilevel run.
#[derive(Debug)]
pub struct RunOutput<C: easyhps_dp::Cell> {
    /// The computed global DP matrix (partial if a tile budget stopped the
    /// run early — see [`RunOutput::checkpoint`]).
    pub matrix: DpMatrix<C>,
    /// Execution report (timings, counters, per-slave stats).
    pub report: RunReport,
    /// Present when the run stopped at a tile budget before finishing;
    /// feed to [`EasyHps::resume_from`] to continue.
    pub checkpoint: Option<Checkpoint>,
    /// The metrics registry of the run when [`EasyHps::metrics`] (or
    /// [`EasyHps::metrics_registry`]) enabled collection: snapshot it for
    /// Prometheus-style text or JSON export.
    pub metrics: Option<Arc<Registry>>,
}

/// Builder for a multilevel EasyHPS execution.
///
/// ```
/// use easyhps_runtime::EasyHps;
/// use easyhps_dp::{DpProblem, EditDistance};
///
/// let problem = EditDistance::new(b"kitten".to_vec(), b"sitting".to_vec());
/// let out = EasyHps::new(problem)
///     .process_partition((3, 3))
///     .thread_partition((2, 2))
///     .slaves(2)
///     .threads_per_slave(2)
///     .run()
///     .unwrap();
/// assert_eq!(out.matrix.get(6, 7), 3);
/// ```
pub struct EasyHps<P: DpProblem> {
    problem: Arc<P>,
    process_partition: Option<GridDims>,
    thread_partition: Option<GridDims>,
    deployment: Deployment,
    fault_plans: Vec<Option<FaultPlan>>,
    transport: TransportKind,
    memory: MemoryMode,
    resume: Option<Checkpoint>,
    tile_budget: Option<u64>,
    metrics: Option<Arc<Registry>>,
    collect_metrics: bool,
    trace_out: Option<PathBuf>,
    autotune: Option<PathBuf>,
    reconnect: Option<Duration>,
}

/// Which transport carries the virtual cluster's messages. All three run
/// the identical protocol stack (reliable endpoints, CRC frames, fault
/// injection); they differ only in the link under it.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum TransportKind {
    /// Crossbeam channels between threads of this process (default;
    /// fastest, fully deterministic).
    #[default]
    InProcess,
    /// Real TCP connections over loopback — every byte crosses the
    /// kernel, so framing, partial reads and backpressure are exercised.
    Tcp,
    /// Unix-domain socket connections through a temp-dir path.
    Uds,
}

impl TransportKind {
    /// Parse a CLI spelling.
    pub fn parse(s: &str) -> Result<Self, String> {
        match s {
            "inproc" | "in-process" | "channel" => Ok(TransportKind::InProcess),
            "tcp" => Ok(TransportKind::Tcp),
            "uds" | "unix" => Ok(TransportKind::Uds),
            other => Err(format!(
                "unknown transport {other:?}: expected inproc, tcp or uds"
            )),
        }
    }
}

/// Node-matrix storage strategy (paper §VII lists memory as the system's
/// main limitation; `Sparse` implements the fix).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum MemoryMode {
    /// One dense `dag_size` matrix per slave (the paper's layout;
    /// fastest).
    #[default]
    Dense,
    /// Chunked allocation on demand: memory proportional to the strips a
    /// node actually receives and the tiles it computes.
    Sparse,
}

impl<P: DpProblem> EasyHps<P> {
    /// Start configuring a run of `problem`.
    pub fn new(problem: P) -> Self {
        Self::new_shared(Arc::new(problem))
    }

    /// Start configuring a run of an already-shared problem. Useful when
    /// the caller wants to keep a handle (e.g. to inspect counters the
    /// problem accumulates during the run).
    pub fn new_shared(problem: Arc<P>) -> Self {
        Self {
            problem,
            process_partition: None,
            thread_partition: None,
            deployment: Deployment::local(2, 2),
            fault_plans: Vec::new(),
            transport: TransportKind::InProcess,
            memory: MemoryMode::Dense,
            resume: None,
            tile_budget: None,
            metrics: None,
            collect_metrics: false,
            trace_out: None,
            autotune: None,
            reconnect: None,
        }
    }

    /// Autotune the partition sizes from the tuning table at `path`: when
    /// neither [`Self::process_partition`] nor [`Self::thread_partition`]
    /// is set explicitly, the run looks its problem class up in the table
    /// (searching candidates through the `easyhps-sim` cost model on a
    /// miss) instead of using the `dims / (4 * slaves)` rule, and persists
    /// any new recommendation back atomically. Combined with
    /// [`Self::metrics`], the run's latency histograms recalibrate the
    /// table's cost model afterwards, so recommendations track the actual
    /// hardware. See [`crate::Autotuner`].
    pub fn autotune(mut self, path: impl Into<PathBuf>) -> Self {
        self.autotune = Some(path.into());
        self
    }

    /// Collect run metrics (counters, gauges, latency histograms) into a
    /// fresh registry, returned in [`RunOutput::metrics`]. Cheap: every
    /// update is one relaxed atomic operation.
    pub fn metrics(mut self, enabled: bool) -> Self {
        self.collect_metrics = enabled;
        self
    }

    /// Collect run metrics into a caller-owned registry — e.g. one shared
    /// across several runs, or pre-seeded with the caller's own series.
    /// Implies [`EasyHps::metrics`]`(true)`.
    pub fn metrics_registry(mut self, registry: Arc<Registry>) -> Self {
        self.metrics = Some(registry);
        self.collect_metrics = true;
        self
    }

    /// Record a structured event trace of the run and write it to `path`
    /// as Chrome trace-event JSON on completion — load it in Perfetto
    /// (<https://ui.perfetto.dev>) or `chrome://tracing`. Events cover
    /// tile dispatch/compute/done, per-thread kernel spans, heartbeats,
    /// retransmissions, exclusions and checkpoints.
    pub fn trace_out(mut self, path: impl Into<PathBuf>) -> Self {
        self.trace_out = Some(path.into());
        self
    }

    /// Resume a run from a [`Checkpoint`]: finished sub-tasks are restored
    /// instead of re-executed. Combine with [`Checkpoint::load_dir`] to
    /// continue a run a hard master kill interrupted.
    pub fn resume_from(mut self, checkpoint: Checkpoint) -> Self {
        self.resume = Some(checkpoint);
        self
    }

    /// Durably checkpoint the run per `policy`: the master appends
    /// finished tiles to CRC-guarded segment files in the policy's
    /// directory, so even a hard master kill loses at most the tiles
    /// accepted since the last capture. Recover with
    /// [`Checkpoint::load_dir`] + [`Self::resume_from`].
    pub fn checkpoint(mut self, policy: CheckpointPolicy) -> Self {
        self.deployment.checkpoint = Some(policy);
        self
    }

    /// [`Self::checkpoint`] with the default policy (capture every 32
    /// accepted tiles, compact beyond 8 live segments).
    pub fn checkpoint_dir(self, dir: impl Into<PathBuf>) -> Self {
        self.checkpoint(CheckpointPolicy::new(dir))
    }

    /// Stop after `tiles` completions (counting resumed ones) and return a
    /// checkpoint in the output — for incremental or preemptible runs.
    pub fn tile_budget(mut self, tiles: u64) -> Self {
        self.tile_budget = Some(tiles);
        self
    }

    /// Choose the node-matrix storage strategy.
    pub fn memory_mode(mut self, mode: MemoryMode) -> Self {
        self.memory = mode;
        self
    }

    /// Choose the transport carrying the virtual cluster's messages
    /// (default in-process channels). The socket kinds still run every
    /// rank as a thread of this process, but all master↔slave traffic
    /// crosses real TCP or Unix-domain sockets — fault plans included,
    /// since injection happens above the link.
    pub fn transport(mut self, kind: TransportKind) -> Self {
        self.transport = kind;
        self
    }

    /// Process-level partition size (the paper's
    /// `process_partition_size`). Defaults to roughly `dag_size / (4 *
    /// slaves)` per side.
    pub fn process_partition(mut self, size: impl Into<GridDims>) -> Self {
        self.process_partition = Some(size.into());
        self
    }

    /// Thread-level partition size (`thread_partition_size`). Defaults to
    /// roughly a quarter of the process partition per side.
    pub fn thread_partition(mut self, size: impl Into<GridDims>) -> Self {
        self.thread_partition = Some(size.into());
        self
    }

    /// Number of slave computing nodes.
    pub fn slaves(mut self, n: usize) -> Self {
        self.deployment.slaves = n;
        self
    }

    /// Computing threads per slave node.
    pub fn threads_per_slave(mut self, n: usize) -> Self {
        self.deployment.threads_per_slave = n;
        self
    }

    /// Process-level scheduling policy (default dynamic).
    pub fn process_mode(mut self, mode: ScheduleMode) -> Self {
        self.deployment.process_mode = mode;
        self
    }

    /// Thread-level scheduling policy (default dynamic).
    pub fn thread_mode(mut self, mode: ScheduleMode) -> Self {
        self.deployment.thread_mode = mode;
        self
    }

    /// Fault-tolerance timeout: how long a dispatched sub-task may run
    /// before its slave is presumed dead.
    pub fn task_timeout(mut self, timeout: Duration) -> Self {
        self.deployment.task_timeout = timeout;
        self
    }

    /// Inject faults into slave `slave_index` (0-based) per `plan` — used
    /// to exercise the fault-tolerance path.
    pub fn inject_fault(mut self, slave_index: usize, plan: FaultPlan) -> Self {
        if self.fault_plans.len() <= slave_index + 1 {
            self.fault_plans.resize(slave_index + 2, None);
        }
        self.fault_plans[slave_index + 1] = Some(plan); // rank = index + 1
        self
    }

    /// Inject faults into the master's own endpoint (rank 0) — lets
    /// stress harnesses make the master's outgoing traffic (ASSIGNs,
    /// ENDs, acks) lossy, duplicated or reordered too.
    pub fn inject_master_fault(mut self, plan: FaultPlan) -> Self {
        if self.fault_plans.is_empty() {
            self.fault_plans.resize(1, None);
        }
        self.fault_plans[0] = Some(plan);
        self
    }

    /// Make every link lossy: each rank — master included — independently
    /// drops outgoing messages with probability `p`, deterministically
    /// derived from `seed`. Ranks with an explicit [`Self::inject_fault`]
    /// plan keep it. Call after [`Self::slaves`] so every rank is covered.
    pub fn lossy_network(mut self, p: f64, seed: u64) -> Self {
        let n_ranks = 1 + self.deployment.slaves;
        if self.fault_plans.len() < n_ranks {
            self.fault_plans.resize(n_ranks, None);
        }
        for (i, slot) in self.fault_plans.iter_mut().enumerate() {
            if slot.is_none() {
                // Distinct per-rank streams from one user-visible seed.
                *slot = Some(FaultPlan::lossy(p, seed.wrapping_add(i as u64 * 7919)));
            }
        }
        self
    }

    /// Retransmission policy for reliable control messages (attempts,
    /// backoff) — how hard master and slaves try before declaring a send
    /// failed.
    pub fn retry_policy(mut self, policy: RetryPolicy) -> Self {
        self.deployment.retry = policy;
        self
    }

    /// Elastic membership for the socket transports: severed links heal
    /// by redial for up to `window` (slaves keep their rank and state and
    /// resume under a bumped fleet epoch; the master fences frames from
    /// stale incarnations). No effect on the in-process transport, whose
    /// channel links cannot drop. See DESIGN.md §17.
    pub fn reconnect(mut self, window: Duration) -> Self {
        self.reconnect = Some(window);
        self
    }

    /// Heartbeat cadence: slaves announce liveness every `interval`; the
    /// master treats a slave silent past `timeout` as dead rather than
    /// slow.
    pub fn heartbeat(mut self, interval: Duration, timeout: Duration) -> Self {
        self.deployment.heartbeat_interval = interval;
        self.deployment.heartbeat_timeout = timeout;
        self
    }

    /// Access the configured deployment.
    pub fn deployment(&self) -> &Deployment {
        &self.deployment
    }

    fn default_partitions(&self) -> (GridDims, GridDims) {
        let dims = self.problem.dims();
        let per_side = |n: u32, parts: u32| n.div_ceil(parts).max(1);
        let pp = self.process_partition.unwrap_or_else(|| {
            let parts = (self.deployment.slaves as u32 * 4).max(1);
            GridDims::new(per_side(dims.rows, parts), per_side(dims.cols, parts))
        });
        let tp = self
            .thread_partition
            .unwrap_or_else(|| GridDims::new(per_side(pp.rows, 4), per_side(pp.cols, 4)));
        (pp, tp)
    }

    fn problem_class(&self) -> ProblemClass {
        ProblemClass::of(
            self.problem.as_ref(),
            self.deployment.slaves,
            self.deployment.threads_per_slave,
        )
    }

    /// Effective partition sizes: explicit settings win; otherwise a
    /// configured autotuner supplies (and persists) a recommendation;
    /// otherwise the `dims / (4 * slaves)` rule.
    fn partitions(&self) -> (GridDims, GridDims) {
        if self.process_partition.is_none() && self.thread_partition.is_none() {
            if let Some(path) = &self.autotune {
                let mut tuner = Autotuner::load(path);
                let (pp, tp) = tuner.recommend(&self.problem_class());
                let _ = tuner.save();
                return (pp, tp);
            }
        }
        self.default_partitions()
    }

    /// Reject partition settings the runtime cannot execute, before any
    /// thread is spawned: a zero side (no cells per sub-task) or a thread
    /// partition larger than the process tile it is meant to subdivide.
    /// Non-dividing sizes remain legal — edge sub-tasks are simply ragged.
    fn validate_partitions(&self) -> Result<(), RuntimeError> {
        if let Some(pp) = self.process_partition {
            if pp.rows == 0 || pp.cols == 0 {
                return Err(RuntimeError::InvalidConfig(format!(
                    "process_partition_size {pp} has a zero side; every process-level \
                     sub-task needs at least one cell per axis"
                )));
            }
        }
        if let Some(tp) = self.thread_partition {
            if tp.rows == 0 || tp.cols == 0 {
                return Err(RuntimeError::InvalidConfig(format!(
                    "thread_partition_size {tp} has a zero side; every thread-level \
                     sub-sub-task needs at least one cell per axis"
                )));
            }
            let (pp, _) = self.default_partitions();
            if tp.rows > pp.rows || tp.cols > pp.cols {
                return Err(RuntimeError::InvalidConfig(format!(
                    "thread_partition_size {tp} does not fit process_partition_size {pp}; \
                     a thread tile cannot be larger than the process tile it partitions"
                )));
            }
        }
        Ok(())
    }

    /// Build the DAG Data Driven Model this run will use (autotuned
    /// partitions included when [`Self::autotune`] is configured).
    pub fn model(&self) -> DagDataDrivenModel {
        let (pp, tp) = self.partitions();
        DagDataDrivenModel::builder(self.problem.pattern())
            .process_partition_size(pp)
            .thread_partition_size(tp)
            .build()
    }

    /// Execute: spawn the virtual cluster (one thread per slave rank plus
    /// the master on the calling thread), run to completion, and return
    /// the computed matrix with a report.
    pub fn run(self) -> Result<RunOutput<P::Cell>, RuntimeError> {
        if self.deployment.slaves == 0 {
            return Err(RuntimeError::NoSlaves);
        }
        self.validate_partitions()?;
        let model = self.model();
        let n_ranks = 1 + self.deployment.slaves;
        let mut plans = self.fault_plans.clone();
        plans.resize(n_ranks, None);

        // Observability: one registry / recorder shared by every rank of
        // the virtual cluster, carried to them through the deployment.
        let registry = match (&self.metrics, self.collect_metrics) {
            (Some(r), _) => Some(r.clone()),
            (None, true) => Some(Arc::new(Registry::new())),
            (None, false) => None,
        };
        let recorder = self
            .trace_out
            .as_ref()
            .map(|_| Arc::new(EventRecorder::new()));
        let problem = self.problem.clone();
        let mut deployment = self.deployment.clone();
        deployment.obs = ObsConfig {
            metrics: registry.clone(),
            recorder: recorder.clone(),
        };

        let memory = self.memory;
        let out = match self.transport {
            TransportKind::InProcess => {
                let mut endpoints = Network::with_faults(n_ranks, &plans);
                let master_ep = endpoints.remove(0);
                std::thread::scope(|s| {
                    for ep in endpoints {
                        let problem = problem.clone();
                        let model = model.clone();
                        let deployment = deployment.clone();
                        s.spawn(move || {
                            drive_slave(memory, ep, problem.as_ref(), &model, &deployment)
                        });
                    }
                    run_master_with(
                        master_ep,
                        problem.as_ref(),
                        &model,
                        &deployment,
                        self.resume.as_ref(),
                        self.tile_budget,
                    )
                })?
            }
            kind => {
                // Socket-backed virtual cluster: every rank still runs as
                // a thread here, but all master<->slave traffic crosses a
                // real kernel socket. Ranks are requested explicitly so
                // per-rank fault plans land on the intended endpoint.
                let bind_addr = match kind {
                    TransportKind::Uds => NetAddr::Uds(temp_socket_path()),
                    _ => NetAddr::parse("127.0.0.1:0").expect("loopback address parses"),
                };
                let scfg = SocketConfig {
                    reconnect_window: self.reconnect,
                    ..SocketConfig::default()
                };
                let listener = SocketListener::bind(&bind_addr, scfg.clone()).map_err(|e| {
                    RuntimeError::InvalidConfig(format!("binding {bind_addr}: {e}"))
                })?;
                let addr = listener.local_addr();
                std::thread::scope(|s| {
                    for i in 0..self.deployment.slaves {
                        let plan = plans[i + 1].clone();
                        let addr = addr.clone();
                        let scfg = scfg.clone();
                        let problem = problem.clone();
                        let model = model.clone();
                        let deployment = deployment.clone();
                        s.spawn(move || {
                            // The master tearing down early (e.g. under a
                            // kill-master drill) makes connect fail; that
                            // slave simply has nothing to do.
                            let Ok((ep, _info)) = connect(&addr, Some(i as u32 + 1), scfg, plan)
                            else {
                                return;
                            };
                            drive_slave(memory, ep, problem.as_ref(), &model, &deployment)
                        });
                    }
                    let accept_err =
                        |e| RuntimeError::InvalidConfig(format!("accepting slaves: {e}"));
                    let out = if self.reconnect.is_some() {
                        // Elastic membership: keep the listener open in a
                        // background acceptor that splices reconnecting
                        // slaves back in and fences stale incarnations.
                        let (master_ep, sinfo, acceptor) = listener
                            .accept_fleet(self.deployment.slaves, plans[0].clone())
                            .map_err(accept_err)?;
                        let control = crate::master::FleetControl::new(Some(Arc::new(acceptor)));
                        let out = crate::master::run_master_fleet(
                            master_ep,
                            problem.as_ref(),
                            &model,
                            &deployment,
                            self.resume.as_ref(),
                            self.tile_budget,
                            Some(&control),
                        )?;
                        if let Some(reg) = &registry {
                            crate::remote::publish_socket_stats(reg, &sinfo);
                        }
                        out
                    } else {
                        let (master_ep, sinfo) = listener
                            .accept_ranks(self.deployment.slaves, plans[0].clone())
                            .map_err(accept_err)?;
                        let out = run_master_with(
                            master_ep,
                            problem.as_ref(),
                            &model,
                            &deployment,
                            self.resume.as_ref(),
                            self.tile_budget,
                        )?;
                        if let Some(reg) = &registry {
                            crate::remote::publish_socket_stats(reg, &sinfo);
                        }
                        out
                    };
                    Ok::<_, RuntimeError>(out)
                })?
            }
        };

        // Every slave thread has joined (the scope ended), so every event
        // lane has flushed into the recorder: the export is complete.
        if let (Some(rec), Some(path)) = (&recorder, &self.trace_out) {
            std::fs::write(path, rec.chrome_trace_json())
                .map_err(|e| RuntimeError::TraceIo(format!("{}: {e}", path.display())))?;
        }

        // Close the autotune loop: recalibrate the tuning table's cost
        // model from this run's latency histograms (best-effort — a
        // read-only table directory must not fail the run itself).
        if let (Some(path), Some(reg)) = (&self.autotune, &registry) {
            let mut tuner = Autotuner::load(path);
            tuner.calibrate(
                &self.problem_class(),
                model.process_partition_size(),
                &reg.snapshot(),
            );
            let _ = tuner.save();
        }

        Ok(RunOutput {
            checkpoint: out.checkpoint,
            matrix: out.matrix,
            report: RunReport {
                elapsed: out.elapsed,
                master: out.stats,
                slaves: out.slave_stats,
                trace: out.trace,
            },
            metrics: registry,
        })
    }
}

/// Run one slave rank to completion on `ep`, dispatching on the storage
/// strategy. A slave that dies under fault injection returns Err; the
/// master's fault tolerance handles it, so the error is dropped here.
fn drive_slave<P: DpProblem>(
    memory: MemoryMode,
    ep: easyhps_net::Endpoint,
    problem: &P,
    model: &DagDataDrivenModel,
    deployment: &Deployment,
) {
    let _ = match memory {
        MemoryMode::Dense => {
            run_slave_with_storage::<P, SharedGrid<P::Cell>>(ep, problem, model, deployment)
        }
        MemoryMode::Sparse => {
            run_slave_with_storage::<P, SparseGrid<P::Cell>>(ep, problem, model, deployment)
        }
    };
}

/// A unique Unix-domain socket path for one in-process virtual cluster.
/// Uniqueness needs both the pid (parallel test binaries) and a counter
/// (parallel runs inside one binary).
fn temp_socket_path() -> std::path::PathBuf {
    static NEXT_SOCK: AtomicU64 = AtomicU64::new(0);
    std::env::temp_dir().join(format!(
        "easyhps-{}-{}.sock",
        std::process::id(),
        NEXT_SOCK.fetch_add(1, Ordering::Relaxed)
    ))
}
