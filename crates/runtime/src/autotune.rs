//! Obs-driven partition autotuner.
//!
//! The paper hand-picks `process_partition_size` / `thread_partition_size`
//! per experiment (§VI: `pps = 200`, `tps = 10` at `n = 10000`). This
//! module replaces the constants with measurement: it classifies a problem
//! by its work distribution, searches candidate partition sizes through
//! the `easyhps-sim` discrete-event cost model, persists the winners in a
//! plain-text tuning table (written atomically, tmp + rename, like the
//! durable checkpoint store), and reloads them on later runs. When a run
//! collects metrics, the observed `master_tile_latency_ns` /
//! `slave_subtask_latency_ns` histograms recalibrate the cost model, so
//! the table converges on the hardware it actually runs on.
//!
//! Lifecycle: **calibrate** (rescale the cost model from obs histograms
//! after a metrics-enabled run) → **persist** (atomic table write) →
//! **load** (later runs look their problem class up and skip the search).

use crate::durable::write_atomic;
use crate::error::RuntimeError;
use easyhps_core::{GridDims, GridPos};
use easyhps_dp::DpProblem;
use easyhps_obs::{MetricValue, Snapshot};
use easyhps_sim::{simulate, CostModel, SimConfig, SimWorkload};
use std::collections::BTreeMap;
use std::fmt;
use std::path::{Path, PathBuf};

/// Work-distribution class of a DP problem, probed from
/// [`DpProblem::cell_work`] at the matrix corners. The class picks which
/// simulated workload prices a candidate partitioning.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum TuneProfile {
    /// Constant work per cell (edit distance, LCS, NW — the 2D/0D family).
    Uniform,
    /// Work grows as `i + j` (SWGG's row + column scans — 2D/1D).
    RowCol,
    /// Upper-triangular with `j - i` work (Nussinov-class gap DPs).
    Triangular,
}

impl TuneProfile {
    fn as_str(&self) -> &'static str {
        match self {
            TuneProfile::Uniform => "uniform",
            TuneProfile::RowCol => "rowcol",
            TuneProfile::Triangular => "triangular",
        }
    }
}

/// Everything the tuner keys on: the shape of the work and the deployment
/// executing it. Two runs with the same class share one table entry.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ProblemClass {
    /// Work-distribution class.
    pub profile: TuneProfile,
    /// Global matrix dimensions.
    pub dims: GridDims,
    /// Slave nodes in the deployment.
    pub slaves: usize,
    /// Computing threads per slave.
    pub threads: usize,
}

impl ProblemClass {
    /// Classify `problem` for a `slaves` x `threads` deployment by probing
    /// its per-cell work at the matrix corners.
    pub fn of<P: DpProblem>(problem: &P, slaves: usize, threads: usize) -> Self {
        let dims = problem.dims();
        let (r, c) = (dims.rows.max(1) - 1, dims.cols.max(1) - 1);
        let bottom_left = problem.cell_work(GridPos::new(r, 0));
        let top_left = problem.cell_work(GridPos::new(0, 0));
        let bottom_right = problem.cell_work(GridPos::new(r, c));
        let profile = if r > 0 && bottom_left == 0 {
            TuneProfile::Triangular
        } else if top_left == bottom_right {
            TuneProfile::Uniform
        } else {
            TuneProfile::RowCol
        };
        Self {
            profile,
            dims,
            slaves,
            threads,
        }
    }

    /// The table key: class fields joined into one token.
    pub fn key(&self) -> String {
        format!(
            "{}:{}x{}:s{}:t{}",
            self.profile.as_str(),
            self.dims.rows,
            self.dims.cols,
            self.slaves,
            self.threads
        )
    }

    /// Matrix side for the (square) simulated stand-in.
    fn side(&self) -> u32 {
        self.dims.rows.max(self.dims.cols).max(2)
    }

    /// The simulated workload pricing a `pps`/`tps` candidate for this
    /// class. Rectangular problems are priced by their larger side — the
    /// tuner needs relative cost between candidates, not absolute time.
    fn workload(&self, pps: u32, tps: u32) -> SimWorkload {
        let n = self.side();
        match self.profile {
            TuneProfile::Uniform => SimWorkload::wavefront(n - 1, pps, tps),
            TuneProfile::RowCol => SimWorkload::swgg(n - 1, pps, tps),
            TuneProfile::Triangular => SimWorkload::nussinov(n, pps, tps),
        }
    }

    fn sim_config(&self, cost: CostModel) -> SimConfig {
        SimConfig {
            cost,
            ..SimConfig::uniform(self.slaves.max(1), self.threads.max(1))
        }
    }
}

/// One tuned recommendation.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct TuningEntry {
    /// Recommended process-level partition size.
    pub pp: GridDims,
    /// Recommended thread-level partition size.
    pub tp: GridDims,
    /// Simulated makespan of the winning candidate, in virtual ns.
    pub predicted_ns: u64,
}

/// The persistent tuning table: a calibrated cost model plus one entry per
/// problem class, serialized as whitespace-separated text (one line per
/// item) and written atomically.
#[derive(Clone, Debug)]
pub struct TuningTable {
    /// Cost model used to price candidates; recalibrated from obs
    /// histograms after metrics-enabled runs.
    pub cost: CostModel,
    entries: BTreeMap<String, TuningEntry>,
}

const TABLE_HEADER: &str = "easyhps-autotune v1";

/// Cost calibration for the in-process virtual cluster: same per-cell
/// work rate as the Tianhe-1A model, but channel-speed messaging and
/// microsecond-scale scheduling overheads instead of Infiniband + MPI,
/// and no jitter (recommendations should be deterministic).
fn inprocess_cost() -> CostModel {
    CostModel {
        work_per_us: 3_000,
        net_latency_ns: 2_000,
        net_bytes_per_us: 10_000,
        assign_overhead_ns: 5_000,
        complete_overhead_ns: 2_000,
        thread_overhead_ns: 1_500,
        jitter_pct: 0,
    }
}

impl Default for TuningTable {
    fn default() -> Self {
        Self {
            cost: inprocess_cost(),
            entries: BTreeMap::new(),
        }
    }
}

impl fmt::Display for TuningTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{TABLE_HEADER}")?;
        let c = &self.cost;
        writeln!(
            f,
            "cost {} {} {} {} {} {} {}",
            c.work_per_us,
            c.net_latency_ns,
            c.net_bytes_per_us,
            c.assign_overhead_ns,
            c.complete_overhead_ns,
            c.thread_overhead_ns,
            c.jitter_pct
        )?;
        for (key, e) in &self.entries {
            writeln!(
                f,
                "{key} {} {} {} {} {}",
                e.pp.rows, e.pp.cols, e.tp.rows, e.tp.cols, e.predicted_ns
            )?;
        }
        Ok(())
    }
}

fn parse_err(what: impl fmt::Display) -> RuntimeError {
    RuntimeError::Autotune(format!("tuning table: {what}"))
}

impl TuningTable {
    /// Parse the text serialization (the [`fmt::Display`] format back in).
    pub fn parse(text: &str) -> Result<Self, RuntimeError> {
        let mut lines = text.lines().filter(|l| !l.trim().is_empty());
        if lines.next().map(str::trim) != Some(TABLE_HEADER) {
            return Err(parse_err("missing header"));
        }
        let mut table = TuningTable::default();
        for line in lines {
            let f: Vec<&str> = line.split_whitespace().collect();
            let nums = |s: &[&str]| -> Result<Vec<u64>, RuntimeError> {
                s.iter()
                    .map(|t| t.parse::<u64>().map_err(|_| parse_err(line)))
                    .collect()
            };
            match f.first() {
                Some(&"cost") if f.len() == 8 => {
                    let v = nums(&f[1..])?;
                    table.cost = CostModel {
                        work_per_us: v[0],
                        net_latency_ns: v[1],
                        net_bytes_per_us: v[2],
                        assign_overhead_ns: v[3],
                        complete_overhead_ns: v[4],
                        thread_overhead_ns: v[5],
                        jitter_pct: v[6] as u32,
                    };
                }
                Some(key) if f.len() == 6 => {
                    let v = nums(&f[1..])?;
                    if v[..4].iter().any(|&x| x == 0 || x > u32::MAX as u64) {
                        return Err(parse_err(line));
                    }
                    table.entries.insert(
                        key.to_string(),
                        TuningEntry {
                            pp: GridDims::new(v[0] as u32, v[1] as u32),
                            tp: GridDims::new(v[2] as u32, v[3] as u32),
                            predicted_ns: v[4],
                        },
                    );
                }
                _ => return Err(parse_err(line)),
            }
        }
        Ok(table)
    }

    /// Entry for `key`, if present.
    pub fn get(&self, key: &str) -> Option<&TuningEntry> {
        self.entries.get(key)
    }

    /// Number of tuned classes.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no class has been tuned yet.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// The tuner: a [`TuningTable`] bound to its file.
///
/// ```no_run
/// use easyhps_runtime::{Autotuner, ProblemClass};
/// use easyhps_dp::EditDistance;
///
/// let problem = EditDistance::new(b"ACGT".to_vec(), b"AGT".to_vec());
/// let class = ProblemClass::of(&problem, 2, 2);
/// let mut tuner = Autotuner::load("autotune.tbl");
/// let (pp, tp) = tuner.recommend(&class);
/// tuner.save().unwrap();
/// # let _ = (pp, tp);
/// ```
#[derive(Clone, Debug)]
pub struct Autotuner {
    path: PathBuf,
    table: TuningTable,
}

impl Autotuner {
    /// Load the table at `path`; a missing or unreadable file starts a
    /// fresh table (the tuner regenerates recommendations on demand).
    pub fn load(path: impl Into<PathBuf>) -> Self {
        let path = path.into();
        let table = std::fs::read_to_string(&path)
            .ok()
            .and_then(|text| TuningTable::parse(&text).ok())
            .unwrap_or_default();
        Self { path, table }
    }

    /// The in-memory table.
    pub fn table(&self) -> &TuningTable {
        &self.table
    }

    /// Recommended `(process_partition, thread_partition)` for `class`:
    /// the cached entry when one exists, otherwise a fresh candidate
    /// search through the simulator (cached afterwards — call
    /// [`Autotuner::save`] to persist it).
    pub fn recommend(&mut self, class: &ProblemClass) -> (GridDims, GridDims) {
        let key = class.key();
        if let Some(e) = self.table.entries.get(&key) {
            return (e.pp, e.tp);
        }
        let e = self.tune(class);
        self.table.entries.insert(key, e);
        (e.pp, e.tp)
    }

    /// Search candidate partition sizes for `class` through the
    /// discrete-event simulator and return the cheapest. Candidates are
    /// matrix-side fractions (`n / (k * slaves)` and `n / k`), each tried
    /// with a few thread-partition divisors — a few dozen simulated runs,
    /// milliseconds of real time.
    pub fn tune(&self, class: &ProblemClass) -> TuningEntry {
        let n = class.side();
        let s = class.slaves.max(1) as u32;
        let mut pps_cands: Vec<u32> = [2 * s, 4 * s, 8 * s, 16 * s, 4, 8, 16, 32]
            .iter()
            .map(|&parts| (n / parts).clamp(1, n))
            .collect();
        pps_cands.sort_unstable();
        pps_cands.dedup();
        let mut best: Option<(u64, u32, u32)> = None;
        for &pps in &pps_cands {
            let mut tps_cands: Vec<u32> = [1, 2, 4, 8].iter().map(|&d| (pps / d).max(1)).collect();
            tps_cands.sort_unstable();
            tps_cands.dedup();
            for &tps in &tps_cands {
                let wl = class.workload(pps, tps);
                let res = simulate(&wl, &class.sim_config(self.table.cost));
                let better = match best {
                    None => true,
                    Some((ns, bp, _)) => {
                        res.makespan_ns < ns || (res.makespan_ns == ns && pps > bp)
                    }
                };
                if better {
                    best = Some((res.makespan_ns, pps, tps));
                }
            }
        }
        let (predicted_ns, pps, tps) = best.expect("candidate lists are non-empty");
        TuningEntry {
            pp: GridDims::new(
                pps.min(class.dims.rows.max(1)),
                pps.min(class.dims.cols.max(1)),
            ),
            tp: GridDims::square(tps),
            predicted_ns,
        }
    }

    /// Recalibrate the cost model from a metrics-enabled run of `class`
    /// executed with partition size `pp`.
    ///
    /// The per-slave `slave_subtask_latency_ns` histograms (kernel-level
    /// spans, the purest compute measurement available) fix the per-cell
    /// work rate; `master_tile_latency_ns` serves as the fallback when no
    /// sub-task series was recorded, and — jointly with the sub-task mean
    /// — bounds the master's per-tile overhead. If the work rate moves by
    /// more than 25%, cached recommendations are stale: they are dropped
    /// and the current class is re-tuned under the new calibration so the
    /// table never loses the entry for the problem that just ran.
    pub fn calibrate(&mut self, class: &ProblemClass, pp: GridDims, snapshot: &Snapshot) {
        let tiles = snapshot.histogram("master_tile_latency_ns");
        // Per-sub-task latency, aggregated over the labelled series.
        let (mut sub_count, mut sub_sum) = (0u64, 0u64);
        for (name, value) in &snapshot.entries {
            if let MetricValue::Histogram(h) = value {
                if name.starts_with("slave_subtask_latency_ns") {
                    sub_count += h.count;
                    sub_sum += h.sum;
                }
            }
        }
        let total_work = class.workload(pp.rows.max(pp.cols).max(1), 1).total_work();
        let new_rate = if sub_count > 0 && sub_sum > 0 {
            (total_work / sub_count).saturating_mul(1_000) / (sub_sum / sub_count).max(1)
        } else if let Some(t) = tiles.as_ref().filter(|t| t.count > 0 && t.sum > 0) {
            (total_work / t.count).saturating_mul(1_000) / (t.sum / t.count).max(1)
        } else {
            return; // nothing measured
        }
        .max(1);
        if let Some(t) = tiles.as_ref().filter(|t| t.count > 0) {
            if sub_count > 0 {
                // mean tile latency ≈ assign overhead + the tile's share of
                // sub-task time across the node's threads.
                let subs_per_tile = sub_count / t.count.max(1);
                let sub_share =
                    (sub_sum / sub_count.max(1)) * subs_per_tile / class.threads.max(1) as u64;
                let overhead = (t.sum / t.count).saturating_sub(sub_share);
                self.table.cost.assign_overhead_ns = overhead.clamp(1_000, 200_000);
            }
        }
        let old_rate = self.table.cost.work_per_us.max(1);
        let drift = new_rate.abs_diff(old_rate).saturating_mul(100) / old_rate;
        self.table.cost.work_per_us = new_rate;
        if drift > 25 {
            self.table.entries.clear();
            let e = self.tune(class);
            self.table.entries.insert(class.key(), e);
        }
    }

    /// Persist the table to its file atomically (tmp + fsync + rename).
    pub fn save(&self) -> Result<(), RuntimeError> {
        if let Some(dir) = self.path.parent() {
            if !dir.as_os_str().is_empty() {
                std::fs::create_dir_all(dir)
                    .map_err(|e| parse_err(format!("{}: {e}", dir.display())))?;
            }
        }
        write_atomic(&self.path, self.table.to_string().as_bytes())
    }

    /// The file this tuner loads from and saves to.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use easyhps_dp::sequence::{random_sequence, Alphabet};
    use easyhps_dp::{EditDistance, Nussinov, SmithWatermanGeneralGap};

    fn tmpdir(name: &str) -> PathBuf {
        let d =
            std::env::temp_dir().join(format!("easyhps-autotune-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    #[test]
    fn classifies_problems_by_work_profile() {
        let a = random_sequence(Alphabet::Dna, 40, 1);
        let b = random_sequence(Alphabet::Dna, 44, 2);
        let edit = EditDistance::new(a.clone(), b.clone());
        assert_eq!(ProblemClass::of(&edit, 2, 2).profile, TuneProfile::Uniform);
        let swgg = SmithWatermanGeneralGap::dna(a, b);
        assert_eq!(ProblemClass::of(&swgg, 2, 2).profile, TuneProfile::RowCol);
        let rna = random_sequence(Alphabet::Rna, 50, 3);
        let nus = Nussinov::new(rna);
        assert_eq!(
            ProblemClass::of(&nus, 2, 2).profile,
            TuneProfile::Triangular
        );
    }

    #[test]
    fn table_round_trips_through_text() {
        let mut table = TuningTable::default();
        table.cost.work_per_us = 1234;
        table.entries.insert(
            "uniform:201x201:s2:t2".into(),
            TuningEntry {
                pp: GridDims::new(50, 50),
                tp: GridDims::new(10, 10),
                predicted_ns: 987654,
            },
        );
        let text = table.to_string();
        let back = TuningTable::parse(&text).unwrap();
        assert_eq!(back.cost, table.cost);
        assert_eq!(
            back.get("uniform:201x201:s2:t2"),
            table.get("uniform:201x201:s2:t2")
        );
        assert!(TuningTable::parse("garbage").is_err());
        assert!(TuningTable::parse(&format!("{TABLE_HEADER}\nkey 1 2 3\n")).is_err());
    }

    #[test]
    fn recommend_persists_and_reloads() {
        let dir = tmpdir("persist");
        let path = dir.join("table.tbl");
        let problem = EditDistance::new(
            random_sequence(Alphabet::Dna, 200, 1),
            random_sequence(Alphabet::Dna, 200, 2),
        );
        let class = ProblemClass::of(&problem, 2, 2);
        let mut tuner = Autotuner::load(&path);
        let (pp, tp) = tuner.recommend(&class);
        assert!(pp.rows > 0 && pp.cols > 0 && tp.rows > 0 && tp.cols > 0);
        assert!(tp.rows <= pp.rows && tp.cols <= pp.cols);
        tuner.save().unwrap();

        // A fresh tuner sees the persisted entry without re-searching.
        let mut again = Autotuner::load(&path);
        assert_eq!(again.table().len(), 1);
        assert_eq!(again.recommend(&class), (pp, tp));
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Cross-check against the sim cost model: the tuner's pick must not
    /// be beaten by the hand-set default partitioning (the `dims / (4 *
    /// slaves)` rule) under the same simulated cluster, and its stored
    /// prediction must be reproducible.
    #[test]
    fn tuned_beats_or_matches_hand_set_defaults_in_sim() {
        for (class, default_pps, default_tps) in [
            (
                ProblemClass {
                    profile: TuneProfile::Uniform,
                    dims: GridDims::square(201),
                    slaves: 2,
                    threads: 2,
                },
                26, // 201.div_ceil(4 * 2)
                7,  // 26.div_ceil(4)
            ),
            (
                ProblemClass {
                    profile: TuneProfile::RowCol,
                    dims: GridDims::square(301),
                    slaves: 3,
                    threads: 2,
                },
                26, // 301.div_ceil(4 * 3)
                7,
            ),
        ] {
            let tuner = Autotuner::load("/nonexistent/easyhps-autotune-test.tbl");
            let e = tuner.tune(&class);
            let cfg = class.sim_config(tuner.table().cost);
            let tuned = simulate(
                &class.workload(e.pp.rows.max(e.pp.cols), e.tp.rows.max(e.tp.cols)),
                &cfg,
            );
            assert_eq!(tuned.makespan_ns, e.predicted_ns, "prediction reproducible");
            let default = simulate(&class.workload(default_pps, default_tps), &cfg);
            assert!(
                tuned.makespan_ns <= default.makespan_ns,
                "{}: tuned {} > default {}",
                class.key(),
                tuned.makespan_ns,
                default.makespan_ns
            );
        }
    }

    #[test]
    fn calibration_rescales_work_rate_and_retunes_stale_entries() {
        let dir = tmpdir("calib");
        let path = dir.join("table.tbl");
        let problem = EditDistance::new(
            random_sequence(Alphabet::Dna, 100, 1),
            random_sequence(Alphabet::Dna, 100, 2),
        );
        let class = ProblemClass::of(&problem, 2, 2);
        let other = ProblemClass {
            dims: GridDims::square(301),
            ..class.clone()
        };
        let mut tuner = Autotuner::load(&path);
        tuner.recommend(&class);
        tuner.recommend(&other);
        let before = *tuner.table().get(&class.key()).unwrap();
        assert_eq!(tuner.table().len(), 2);

        // Fake a run 10x slower than the model: 25 tiles, latencies scaled
        // so the implied work rate collapses by far more than the 25%
        // drift threshold.
        let reg = easyhps_obs::Registry::new();
        let h = reg.histogram("master_tile_latency_ns");
        let wl = class.workload(20, 5);
        let per_tile_ns = wl.total_work() * 1_000 * 10 / (3_000 * 25);
        for _ in 0..25 {
            h.observe(per_tile_ns);
        }
        tuner.calibrate(&class, GridDims::square(20), &reg.snapshot());
        assert!(
            tuner.table().cost.work_per_us < 1_000,
            "rate dropped: {}",
            tuner.table().cost.work_per_us
        );
        // Stale entries dropped; the class that just ran was re-tuned
        // under the new calibration, the other class must re-tune later.
        assert_eq!(tuner.table().len(), 1);
        let after = tuner.table().get(&class.key()).unwrap();
        assert!(tuner.table().get(&other.key()).is_none());
        assert_ne!(before.predicted_ns, after.predicted_ns);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
