//! Worker-pool components (paper §V-A): the computable and finished
//! sub-task stacks, the overtime queue and the sub-task register table.
//!
//! These are small, single-purpose structures; the master and slave
//! schedulers compose them with the [`easyhps_core::DagParser`] to
//! implement the dynamic worker pools of Figs. 9-12.

use std::collections::VecDeque;
use std::time::{Duration, Instant};

/// The sub-task register table now lives in the scheduler core (it is
/// state of the extracted master machine); re-exported here for the
/// existing public path.
pub use easyhps_core::sched::RegisterTable;

/// LIFO stack of sub-task ids, the paper's linked-list "sub-task stack".
/// Used for the finished stack (buffering completion notices between the
/// receive path and the DAG update) and anywhere a plain stack is needed.
#[derive(Clone, Debug, Default)]
pub struct TaskStack {
    items: Vec<u32>,
}

impl TaskStack {
    /// Empty stack.
    pub fn new() -> Self {
        Self::default()
    }

    /// Push a sub-task id.
    pub fn push(&mut self, task: u32) {
        self.items.push(task);
    }

    /// Pop the most recently pushed id.
    pub fn pop(&mut self) -> Option<u32> {
        self.items.pop()
    }

    /// Number of ids on the stack.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }
}

/// One entry of the overtime queue: a running sub-task with its start time
/// and executor.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct OvertimeEntry {
    /// Sub-task id.
    pub task: u32,
    /// Executor (slave rank index at process level, thread index at thread
    /// level).
    pub executor: u32,
    /// When execution started.
    pub started: Instant,
}

/// The overtime queue (paper §V-A3): executing sub-tasks with start times,
/// scanned by the fault-tolerance thread for timeouts.
#[derive(Clone, Debug, Default)]
pub struct OvertimeQueue {
    entries: VecDeque<OvertimeEntry>,
}

impl OvertimeQueue {
    /// Empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record that `task` started executing on `executor` now.
    pub fn push(&mut self, task: u32, executor: u32) {
        self.push_at(task, executor, Instant::now());
    }

    /// Record a start at an explicit instant (for tests).
    pub fn push_at(&mut self, task: u32, executor: u32, started: Instant) {
        self.entries.push_back(OvertimeEntry {
            task,
            executor,
            started,
        });
    }

    /// Remove the entry for `task` (called when it finishes). Returns the
    /// entry if it was present.
    pub fn remove(&mut self, task: u32) -> Option<OvertimeEntry> {
        let idx = self.entries.iter().position(|e| e.task == task)?;
        self.entries.remove(idx)
    }

    /// Drain every entry older than `timeout`, returning them in queue
    /// order (oldest first). These are the presumed-failed sub-tasks to
    /// redistribute.
    pub fn drain_overdue(&mut self, timeout: Duration) -> Vec<OvertimeEntry> {
        let now = Instant::now();
        let mut overdue = Vec::new();
        // Re-dispatch can interleave start times, so every entry is
        // checked — but in one pass: `retain` keeps the fresh entries in
        // place instead of shifting the queue once per removal.
        self.entries.retain(|e| {
            if now.duration_since(e.started) >= timeout {
                overdue.push(*e);
                false
            } else {
                true
            }
        });
        overdue
    }

    /// Number of executing sub-tasks tracked.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no sub-task is executing.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stack_is_lifo() {
        let mut s = TaskStack::new();
        s.push(1);
        s.push(2);
        s.push(3);
        assert_eq!(s.len(), 3);
        assert_eq!(s.pop(), Some(3));
        assert_eq!(s.pop(), Some(2));
        assert_eq!(s.pop(), Some(1));
        assert_eq!(s.pop(), None);
        assert!(s.is_empty());
    }

    #[test]
    fn overtime_remove_on_completion() {
        let mut q = OvertimeQueue::new();
        q.push(5, 1);
        q.push(6, 2);
        assert_eq!(q.len(), 2);
        let e = q.remove(5).unwrap();
        assert_eq!(e.executor, 1);
        assert!(q.remove(5).is_none());
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn overdue_drains_only_old_entries() {
        let mut q = OvertimeQueue::new();
        let old = Instant::now() - Duration::from_secs(10);
        q.push_at(1, 0, old);
        q.push(2, 1); // fresh
        let overdue = q.drain_overdue(Duration::from_secs(5));
        assert_eq!(overdue.len(), 1);
        assert_eq!(overdue[0].task, 1);
        assert_eq!(q.len(), 1);
        assert!(q.drain_overdue(Duration::from_secs(5)).is_empty());
    }
}
