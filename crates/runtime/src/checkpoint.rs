//! Master-side checkpoint/restart.
//!
//! The paper's fault tolerance covers slave failures; a master failure
//! loses the whole run. A [`Checkpoint`] closes that gap: it captures the
//! set of finished master-DAG sub-tasks together with their matrix
//! regions, serialized with the same wire codec as the protocol, so a new
//! master can resume exactly where the old one stopped — only unfinished
//! sub-tasks are re-dispatched.

use easyhps_core::{DagDataDrivenModel, TaskDag, TileRegion, VertexId};
use easyhps_dp::{Cell, DpMatrix};
use easyhps_net::{WireError, WireReader, WireWriter};

/// Magic header guarding against feeding a checkpoint to the wrong
/// decoder.
const MAGIC: u32 = 0x4850_5343; // "CSPH"

/// A resumable snapshot of a partially executed run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Checkpoint {
    /// Matrix extent (consistency check on resume).
    rows: u32,
    cols: u32,
    /// Finished master-DAG sub-tasks: `(dense id, region, cells)`.
    finished: Vec<(u32, TileRegion, Vec<u8>)>,
}

/// Validate a decoded entry set against the claimed matrix extent:
/// every region in-matrix and non-empty, no duplicate vertex ids, no
/// overlapping regions, and at least one byte of cell data per cell (no
/// cell encoding is narrower than a byte). Shared by [`Checkpoint::
/// from_bytes`] and the durable segment loader — a checkpoint is the
/// master's source of truth on resume, so nothing structurally unsound
/// may get past decode.
pub(crate) fn validate_entries(
    rows: u32,
    cols: u32,
    finished: &[(u32, TileRegion, Vec<u8>)],
) -> Result<(), WireError> {
    let mut ids = std::collections::HashSet::with_capacity(finished.len());
    // Cell-granular occupancy: two regions overlap iff they share a cell.
    // Total work is bounded by the total cell bytes (>= 1 byte per cell),
    // which is bounded by the blob the entries were decoded from.
    let mut cells = std::collections::HashSet::new();
    for (id, region, bytes) in finished {
        if !ids.insert(*id) {
            return Err(WireError {
                context: "checkpoint duplicate vertex id",
            });
        }
        if region.row_start >= region.row_end || region.col_start >= region.col_end {
            return Err(WireError {
                context: "checkpoint empty or inverted region",
            });
        }
        if region.row_end > rows || region.col_end > cols {
            return Err(WireError {
                context: "checkpoint region outside matrix",
            });
        }
        let area =
            (region.row_end - region.row_start) as u64 * (region.col_end - region.col_start) as u64;
        if (bytes.len() as u64) < area {
            return Err(WireError {
                context: "checkpoint cell bytes shorter than region",
            });
        }
        for row in region.row_start..region.row_end {
            for col in region.col_start..region.col_end {
                if !cells.insert(row as u64 * cols as u64 + col as u64) {
                    return Err(WireError {
                        context: "checkpoint overlapping regions",
                    });
                }
            }
        }
    }
    Ok(())
}

impl Checkpoint {
    /// Capture the finished sub-tasks of a run: `finished` lists dense
    /// master-DAG vertex ids whose regions in `matrix` hold final values.
    pub fn capture<C: Cell>(
        model: &DagDataDrivenModel,
        dag: &TaskDag,
        matrix: &DpMatrix<C>,
        finished: impl IntoIterator<Item = VertexId>,
    ) -> Self {
        let dims = matrix.dims();
        let finished = finished
            .into_iter()
            .map(|v| {
                let region = model.tile_region(dag.vertex(v).pos);
                (v.0, region, matrix.encode_region(region))
            })
            .collect();
        Self {
            rows: dims.rows,
            cols: dims.cols,
            finished,
        }
    }

    /// Assemble a checkpoint from already-decoded parts, applying the
    /// same structural validation as [`Self::from_bytes`]. Used by the
    /// durable segment loader after merging on-disk segments.
    pub(crate) fn from_parts(
        rows: u32,
        cols: u32,
        finished: Vec<(u32, TileRegion, Vec<u8>)>,
    ) -> Result<Self, WireError> {
        validate_entries(rows, cols, &finished)?;
        Ok(Self {
            rows,
            cols,
            finished,
        })
    }

    /// Matrix extent the checkpoint was captured for.
    #[cfg(test)]
    pub(crate) fn extent(&self) -> (u32, u32) {
        (self.rows, self.cols)
    }

    /// Number of finished sub-tasks recorded.
    pub fn finished_len(&self) -> usize {
        self.finished.len()
    }

    /// Ids of the finished sub-tasks.
    pub fn finished_tasks(&self) -> impl Iterator<Item = VertexId> + '_ {
        self.finished.iter().map(|(id, _, _)| VertexId(*id))
    }

    /// Write the recorded regions back into `matrix` (resume path).
    /// Panics if the matrix extent differs from the captured one.
    pub fn restore_into<C: Cell>(&self, matrix: &mut DpMatrix<C>) {
        assert_eq!(
            (matrix.dims().rows, matrix.dims().cols),
            (self.rows, self.cols),
            "checkpoint was captured for a different matrix size"
        );
        for (_, region, bytes) in &self.finished {
            matrix.decode_region(*region, bytes);
        }
    }

    /// Serialize to bytes (stable format: magic, dims, count, entries).
    pub fn to_bytes(&self) -> Vec<u8> {
        let body: usize = self.finished.iter().map(|(_, _, b)| b.len() + 24).sum();
        let mut w = WireWriter::with_capacity(16 + body);
        w.put_u32(MAGIC).put_u32(self.rows).put_u32(self.cols);
        w.put_u32(self.finished.len() as u32);
        for (id, region, bytes) in &self.finished {
            w.put_u32(*id)
                .put_u32(region.row_start)
                .put_u32(region.row_end)
                .put_u32(region.col_start)
                .put_u32(region.col_end)
                .put_bytes(bytes);
        }
        w.finish().to_vec()
    }

    /// Decode from bytes produced by [`Self::to_bytes`], rejecting
    /// structurally unsound data: duplicate vertex ids, empty or
    /// out-of-matrix regions, overlapping regions, and entry counts the
    /// buffer cannot possibly hold (so a hostile length prefix cannot
    /// drive a huge allocation).
    pub fn from_bytes(buf: &[u8]) -> Result<Self, WireError> {
        let mut r = WireReader::new(buf);
        if r.get_u32()? != MAGIC {
            return Err(WireError {
                context: "checkpoint magic",
            });
        }
        let rows = r.get_u32()?;
        let cols = r.get_u32()?;
        let n = r.get_u32()?;
        // Every entry takes at least 24 bytes (id + region + length
        // prefix); a count the remaining bytes cannot hold is corrupt.
        // Checked *before* the allocation sized by it.
        if n as u64 * 24 > r.remaining() as u64 {
            return Err(WireError {
                context: "checkpoint entry count exceeds buffer",
            });
        }
        let mut finished = Vec::with_capacity(n as usize);
        for _ in 0..n {
            let id = r.get_u32()?;
            let region = TileRegion::new(r.get_u32()?, r.get_u32()?, r.get_u32()?, r.get_u32()?);
            let bytes = r.get_bytes()?;
            finished.push((id, region, bytes));
        }
        r.expect_end()?;
        Self::from_parts(rows, cols, finished)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use easyhps_core::{DagParser, GridDims, PatternKind};
    use easyhps_dp::{DpProblem, EditDistance};

    fn setup() -> (DagDataDrivenModel, TaskDag, DpMatrix<i32>, EditDistance) {
        let p = EditDistance::new(b"checkpointing".to_vec(), b"checkpoints".to_vec());
        let model = DagDataDrivenModel::from_library(
            PatternKind::Wavefront2D,
            p.dims(),
            GridDims::square(4),
            GridDims::square(2),
        );
        let dag = model.master_dag();
        let m = DpMatrix::new(p.dims());
        (model, dag, m, p)
    }

    #[test]
    fn roundtrip_bytes() {
        let (model, dag, mut m, p) = setup();
        // Finish the first five tiles in topological order.
        let mut done = Vec::new();
        let mut parser = DagParser::new(&dag);
        for _ in 0..5 {
            let v = parser.pop_computable().unwrap();
            p.compute_region(&mut m, model.tile_region(dag.vertex(v).pos));
            parser.complete(&dag, v, None).unwrap();
            done.push(v);
        }
        let cp = Checkpoint::capture(&model, &dag, &m, done.clone());
        assert_eq!(cp.finished_len(), 5);
        let decoded = Checkpoint::from_bytes(&cp.to_bytes()).unwrap();
        assert_eq!(decoded, cp);

        // Restoring into a fresh matrix reproduces exactly those regions.
        let mut m2 = DpMatrix::<i32>::new(m.dims());
        decoded.restore_into(&mut m2);
        for v in done {
            let region = model.tile_region(dag.vertex(v).pos);
            for pos in region.iter() {
                assert_eq!(m2.at(pos), m.at(pos), "cell {pos}");
            }
        }
    }

    #[test]
    fn rejects_garbage_and_wrong_magic() {
        assert!(Checkpoint::from_bytes(&[1, 2, 3]).is_err());
        let (model, dag, m, _) = setup();
        let cp = Checkpoint::capture::<i32>(&model, &dag, &m, []);
        let mut bytes = cp.to_bytes();
        bytes[0] ^= 0xFF;
        assert!(Checkpoint::from_bytes(&bytes).is_err());
        bytes[0] ^= 0xFF;
        bytes.push(9); // trailing garbage
        assert!(Checkpoint::from_bytes(&bytes).is_err());
    }

    #[test]
    #[should_panic(expected = "different matrix size")]
    fn restore_into_wrong_size_panics() {
        let (model, dag, m, _) = setup();
        let cp = Checkpoint::capture::<i32>(&model, &dag, &m, []);
        let mut wrong = DpMatrix::<i32>::new(GridDims::square(3));
        cp.restore_into(&mut wrong);
    }

    /// Encode a raw checkpoint blob without going through `capture`, so
    /// structurally unsound entry sets can be fed to `from_bytes`.
    fn raw_blob(rows: u32, cols: u32, entries: &[(u32, TileRegion, Vec<u8>)]) -> Vec<u8> {
        let mut w = WireWriter::new();
        w.put_u32(MAGIC).put_u32(rows).put_u32(cols);
        w.put_u32(entries.len() as u32);
        for (id, region, bytes) in entries {
            w.put_u32(*id)
                .put_u32(region.row_start)
                .put_u32(region.row_end)
                .put_u32(region.col_start)
                .put_u32(region.col_end)
                .put_bytes(bytes);
        }
        w.finish().to_vec()
    }

    fn region_entry(id: u32, r0: u32, r1: u32, c0: u32, c1: u32) -> (u32, TileRegion, Vec<u8>) {
        let area = ((r1.saturating_sub(r0)) * (c1.saturating_sub(c0))) as usize;
        (
            id,
            TileRegion::new(r0, r1, c0, c1),
            vec![1; area.max(1) * 4],
        )
    }

    fn rejects(blob: &[u8], why: &str) {
        let err = Checkpoint::from_bytes(blob).expect_err(why);
        assert!(err.to_string().contains(why), "{err} should mention {why}");
    }

    #[test]
    fn rejects_duplicate_vertex_ids() {
        let blob = raw_blob(
            8,
            8,
            &[region_entry(3, 0, 2, 0, 2), region_entry(3, 2, 4, 2, 4)],
        );
        rejects(&blob, "duplicate vertex id");
    }

    #[test]
    fn rejects_overlapping_regions() {
        let blob = raw_blob(
            8,
            8,
            &[region_entry(0, 0, 3, 0, 3), region_entry(1, 2, 5, 2, 5)],
        );
        rejects(&blob, "overlapping regions");
    }

    #[test]
    fn rejects_out_of_matrix_region() {
        let blob = raw_blob(8, 8, &[region_entry(0, 6, 9, 0, 2)]);
        rejects(&blob, "outside matrix");
    }

    #[test]
    fn rejects_empty_and_inverted_regions() {
        let blob = raw_blob(8, 8, &[region_entry(0, 2, 2, 0, 2)]);
        rejects(&blob, "empty or inverted region");
        let blob = raw_blob(8, 8, &[region_entry(0, 4, 2, 0, 2)]);
        rejects(&blob, "empty or inverted region");
    }

    #[test]
    fn rejects_cell_bytes_shorter_than_region() {
        let blob = raw_blob(8, 8, &[(0, TileRegion::new(0, 4, 0, 4), vec![1; 3])]);
        rejects(&blob, "cell bytes shorter than region");
    }

    /// A hostile entry count must be rejected *before* any allocation
    /// sized by it — `u32::MAX` entries "fit" in 16 bytes of header only
    /// if nobody checks.
    #[test]
    fn rejects_entry_count_exceeding_buffer_without_allocating() {
        let mut w = WireWriter::new();
        w.put_u32(MAGIC).put_u32(8).put_u32(8).put_u32(u32::MAX);
        rejects(&w.finish(), "entry count exceeds buffer");
    }
}
