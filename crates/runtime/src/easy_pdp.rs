//! EasyPDP compatibility mode: single-level shared-memory execution.
//!
//! EasyHPS grew out of the authors' earlier EasyPDP system (paper §II,
//! ref. [14]), which runs the DAG Data Driven Model on one shared-memory
//! node: a single DAG of sub-tasks drained by a thread pool, no master
//! rank, no message passing. This module provides that mode — useful on
//! its own for laptop-scale problems, and as the single-level baseline
//! when evaluating what the multilevel architecture buys.

use crate::config::Deployment;
use crate::shared_grid::SharedGrid;
use crate::slave::execute_tile;
use crate::RuntimeError;
use easyhps_core::{DagDataDrivenModel, GridDims, GridPos, ScheduleMode};
use easyhps_dp::{DpMatrix, DpProblem};
use std::time::{Duration, Instant};

/// Result of a single-level (EasyPDP) run.
#[derive(Debug)]
pub struct PdpOutput<C: easyhps_dp::Cell> {
    /// The computed matrix.
    pub matrix: DpMatrix<C>,
    /// Sub-tasks executed.
    pub subtasks: u64,
    /// Sum of per-sub-task kernel times.
    pub busy_ns: u64,
    /// Kernel panics recovered by re-queueing.
    pub failures: u64,
    /// Wall-clock duration.
    pub elapsed: Duration,
}

/// Builder for single-level shared-memory execution — the EasyPDP mode.
///
/// ```
/// use easyhps_runtime::EasyPdp;
/// use easyhps_dp::{DpProblem, EditDistance};
///
/// let problem = EditDistance::new(b"kitten".to_vec(), b"sitting".to_vec());
/// let out = EasyPdp::new(problem)
///     .partition((3, 3))
///     .threads(2)
///     .run()
///     .unwrap();
/// assert_eq!(out.matrix.get(6, 7), 3);
/// ```
pub struct EasyPdp<P: DpProblem> {
    problem: P,
    partition: Option<GridDims>,
    threads: usize,
    mode: ScheduleMode,
}

impl<P: DpProblem> EasyPdp<P> {
    /// Start configuring a single-level run of `problem`.
    pub fn new(problem: P) -> Self {
        Self {
            problem,
            partition: None,
            threads: 2,
            mode: ScheduleMode::Dynamic,
        }
    }

    /// Sub-task block size (there is only one level, so one partition).
    pub fn partition(mut self, size: impl Into<GridDims>) -> Self {
        self.partition = Some(size.into());
        self
    }

    /// Computing threads.
    pub fn threads(mut self, n: usize) -> Self {
        self.threads = n.max(1);
        self
    }

    /// Scheduling policy for the pool (default dynamic).
    pub fn mode(mut self, mode: ScheduleMode) -> Self {
        self.mode = mode;
        self
    }

    /// Execute on the calling process's threads and return the matrix.
    pub fn run(self) -> Result<PdpOutput<P::Cell>, RuntimeError> {
        let t0 = Instant::now();
        let dims = self.problem.dims();
        let partition = self.partition.unwrap_or_else(|| {
            GridDims::new(dims.rows.div_ceil(8).max(1), dims.cols.div_ceil(8).max(1))
        });
        // One process-level tile covering the whole grid; the thread-level
        // partition is the user's.
        let model = DagDataDrivenModel::builder(self.problem.pattern())
            .process_partition_size(dims)
            .thread_partition_size(partition)
            .build();
        model.master_dag().validate()?;
        model.slave_dag(GridPos::new(0, 0)).validate()?;

        let mut config = Deployment::local(1, self.threads);
        config.thread_mode = self.mode;

        let grid = parking_lot::RwLock::new(SharedGrid::<P::Cell>::new(dims));
        // Single-level mode still registers metrics (against a private
        // registry by default) so execute_tile is identical either way.
        let registry = crate::obs::registry_of(&config.obs);
        let sm = crate::obs::SlaveMetrics::register(&registry, 0);
        let exec = std::thread::scope(|scope| {
            let pool = crate::slave::ComputePool::spawn(
                scope,
                self.threads,
                &self.problem,
                &grid,
                config.obs.recorder.clone(),
                0,
            );
            // Single-level mode has no master to heartbeat.
            execute_tile(
                &model,
                &pool,
                GridPos::new(0, 0),
                &config,
                &sm,
                &mut || {},
                None,
            )
        })?;

        Ok(PdpOutput {
            matrix: grid.into_inner().to_matrix(),
            subtasks: exec.subtasks,
            busy_ns: exec.busy_ns,
            failures: exec.failures,
            elapsed: t0.elapsed(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use easyhps_dp::sequence::{random_sequence, Alphabet};
    use easyhps_dp::{EditDistance, Nussinov, SmithWatermanGeneralGap};

    #[test]
    fn single_level_matches_sequential() {
        let a = random_sequence(Alphabet::Dna, 40, 1);
        let b = random_sequence(Alphabet::Dna, 44, 2);
        let p = EditDistance::new(a, b);
        let reference = p.solve_sequential();
        let out = EasyPdp::new(p).partition((7, 9)).threads(3).run().unwrap();
        assert_eq!(out.matrix, reference);
        assert!(out.subtasks > 1);
        assert_eq!(out.failures, 0);
    }

    #[test]
    fn triangular_single_level() {
        let rna = random_sequence(Alphabet::Rna, 50, 3);
        let p = Nussinov::new(rna);
        let pattern = p.pattern();
        let reference = p.solve_sequential();
        let out = EasyPdp::new(p).partition((8, 8)).threads(4).run().unwrap();
        for pos in reference.dims().iter() {
            if pattern.contains(pos) {
                assert_eq!(out.matrix.at(pos), reference.at(pos), "cell {pos}");
            }
        }
    }

    #[test]
    fn static_pool_mode_is_correct() {
        let a = random_sequence(Alphabet::Dna, 30, 4);
        let b = random_sequence(Alphabet::Dna, 30, 5);
        let p = SmithWatermanGeneralGap::dna(a, b);
        let reference = p.solve_sequential();
        let out = EasyPdp::new(p)
            .partition((6, 6))
            .threads(3)
            .mode(ScheduleMode::BlockCyclic { block: 1 })
            .run()
            .unwrap();
        assert_eq!(out.matrix, reference);
    }

    #[test]
    fn default_partition_covers_grid() {
        let p = EditDistance::new(b"abcd".to_vec(), b"abdd".to_vec());
        let reference = p.solve_sequential();
        let out = EasyPdp::new(p).run().unwrap();
        assert_eq!(out.matrix, reference);
    }

    #[test]
    fn recovers_injected_panics() {
        use crate::testing::FaultyProblem;
        let a = random_sequence(Alphabet::Dna, 25, 6);
        let b = random_sequence(Alphabet::Dna, 25, 7);
        let inner = EditDistance::new(a, b);
        let reference = inner.solve_sequential();
        let out = EasyPdp::new(FaultyProblem::new(inner, 3))
            .partition((5, 5))
            .threads(2)
            .run()
            .unwrap();
        assert_eq!(out.matrix, reference);
        assert_eq!(out.failures, 3);
    }
}
