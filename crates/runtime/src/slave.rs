//! The slave part: thread-level parallelization of one node (paper §V-C,
//! Figs. 11-12).
//!
//! Each slave rank runs [`run_slave`]: a scheduling loop that announces
//! idleness, receives sub-task assignments with their input strips,
//! executes them on a pool of computing threads over the shared node
//! matrix, and returns the computed region. The pool is spawned **once per
//! slave lifetime** and reused across every ASSIGN — thread creation is
//! not on the per-tile path. Computing-thread failures (panics) are caught
//! and the sub-sub-task is re-queued — the paper's "restart the
//! corresponding computing thread".
//!
//! The loop talks to the master over a [`ReliableEndpoint`]: IDLE, DONE
//! and STATS are acknowledged and retransmitted, so a lossy link cannot
//! silently lose a result. In between — and *during* long tile
//! computations — the slave emits unreliable HEARTBEATs at
//! `heartbeat_interval`, which is how the master tells slow from dead. A
//! heartbeat send failing with a channel error doubles as the slave's
//! master-death detector (its own receiver never disconnects, because
//! every endpoint holds a sender to itself).

use crate::config::Deployment;
use crate::obs::{lane_of, publish_endpoint_stats, registry_of, SlaveMetrics, TID_NET};
use crate::protocol::{tags, AssignMsg, DoneMsg, SlaveStatsMsg};
use crate::sched::{PoolAction, PoolEvent, PoolLog, PoolSched};
use crate::shared_grid::SharedGrid;
use crate::storage::NodeStorage;
use crate::RuntimeError;
use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError, Sender};
use easyhps_core::{DagDataDrivenModel, GridPos, TileRegion, VertexId};
use easyhps_dp::DpProblem;
use easyhps_net::{Endpoint, NetError, Rank, ReliableEndpoint};
use easyhps_obs::{EventRecorder, LaneBuf};
use parking_lot::RwLock;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// One job handed to a computing thread.
#[derive(Clone, Copy, Debug)]
struct Job {
    /// Dense id in the slave DAG.
    sub: u32,
    /// Global cell region of the sub-sub-task.
    region: TileRegion,
}

/// Result reported back by a computing thread.
#[derive(Clone, Copy, Debug)]
struct WorkerResult {
    worker: usize,
    sub: u32,
    elapsed_ns: u64,
    ok: bool,
}

/// Outcome of executing one master-level sub-task on the thread pool.
#[derive(Clone, Copy, Debug, Default)]
pub(crate) struct TileExecution {
    pub subtasks: u64,
    pub busy_ns: u64,
    pub failures: u64,
}

/// A persistent pool of computing threads over one node matrix.
///
/// Threads are spawned once (inside a [`std::thread::scope`]) and then
/// serve any number of tiles; [`execute_tile`] feeds them jobs through
/// per-worker channels. Workers take the grid's read lock per job, so the
/// scheduler can take the write lock between tiles (strip decode, result
/// encode) without any thread teardown.
pub(crate) struct ComputePool {
    job_txs: Vec<Sender<Job>>,
    result_rx: Receiver<WorkerResult>,
    /// Computing threads spawned over this pool's lifetime (= worker
    /// count: spawning happens exactly once, at construction).
    threads_spawned: u64,
}

impl ComputePool {
    /// Spawn `ct` computing threads into `scope`, computing `problem`
    /// regions against `grid`. Panics inside a kernel are caught in place;
    /// the worker reports failure and stays alive for re-queued work. With
    /// a `recorder`, each worker records one `sub` compute span per job on
    /// its own `(pid, 1 + worker)` event lane.
    pub(crate) fn spawn<'scope, 'env, P, S>(
        scope: &'scope std::thread::Scope<'scope, 'env>,
        ct: usize,
        problem: &'env P,
        grid: &'env RwLock<S>,
        recorder: Option<Arc<EventRecorder>>,
        pid: u32,
    ) -> Self
    where
        P: DpProblem,
        S: NodeStorage<P::Cell>,
    {
        let (result_tx, result_rx) = unbounded::<WorkerResult>();
        let mut job_txs = Vec::with_capacity(ct);
        for w in 0..ct {
            let (tx, rx) = unbounded::<Job>();
            job_txs.push(tx);
            let result_tx = result_tx.clone();
            let recorder = recorder.clone();
            scope.spawn(move || {
                let mut wl = recorder.map_or_else(LaneBuf::disabled, |r| r.lane(pid, 1 + w as u32));
                for job in rx.iter() {
                    let start_ns = wl.now_ns();
                    let t0 = Instant::now();
                    let g = grid.read();
                    // SAFETY: the slave scheduler dispatches each region to
                    // exactly one worker, and the DAG (validated) orders
                    // every read-region strictly before this task; channel
                    // send/recv provides the happens-before edges.
                    let outcome = catch_unwind(AssertUnwindSafe(|| {
                        let mut view = unsafe { g.task_view(job.region) };
                        problem.compute_region(&mut view, job.region);
                    }));
                    drop(g);
                    let elapsed_ns = t0.elapsed().as_nanos() as u64;
                    wl.span_since(
                        "sub",
                        "compute",
                        start_ns,
                        Some(("sub", u64::from(job.sub))),
                    );
                    let res = WorkerResult {
                        worker: w,
                        sub: job.sub,
                        elapsed_ns,
                        ok: outcome.is_ok(),
                    };
                    if result_tx.send(res).is_err() {
                        break;
                    }
                }
            });
        }
        Self {
            job_txs,
            result_rx,
            threads_spawned: ct as u64,
        }
    }

    /// Worker count.
    fn threads(&self) -> usize {
        self.job_txs.len()
    }

    /// Computing threads spawned over this pool's lifetime.
    pub(crate) fn threads_spawned(&self) -> u64 {
        self.threads_spawned
    }
}

/// Run the slave loop on `ep` until the master sends END, with dense node
/// storage (the paper's layout). Returns the stats that were reported
/// back, or the transport error that killed the slave (a `Dead` error
/// simulates a node crash and is expected under fault injection).
pub fn run_slave<P: DpProblem>(
    ep: Endpoint,
    problem: &P,
    model: &DagDataDrivenModel,
    config: &Deployment,
) -> Result<SlaveStatsMsg, RuntimeError> {
    run_slave_with_storage::<P, SharedGrid<P::Cell>>(ep, problem, model, config)
}

/// [`run_slave`] generic over the node-matrix storage strategy (dense
/// [`SharedGrid`] or sparse
/// [`SparseGrid`](crate::storage::SparseGrid)).
pub fn run_slave_with_storage<P: DpProblem, S: NodeStorage<P::Cell>>(
    ep: Endpoint,
    problem: &P,
    model: &DagDataDrivenModel,
    config: &Deployment,
) -> Result<SlaveStatsMsg, RuntimeError> {
    let master = Rank(0);
    let grid = RwLock::new(S::new(model.dag_size()));
    let ct = config.threads_per_slave.max(1);
    let mut rep = ReliableEndpoint::new(ep, config.retry.clone());

    // Observability: this rank is Chrome pid `rank`, slave index `rank-1`.
    // Metrics register unconditionally (against a private registry when
    // none is shared), so the loop below never branches on "metrics on".
    let obs = &config.obs;
    let pid = rep.rank().0;
    let w = (pid as usize).wrapping_sub(1);
    let registry = registry_of(obs);
    let sm = SlaveMetrics::register(&registry, w);
    let mut lane = lane_of(obs, pid, 0);
    rep.set_event_lane(lane_of(obs, pid, TID_NET));
    if let Some(rec) = &obs.recorder {
        rec.name_process(pid, format!("slave{w}"));
        rec.name_thread(pid, 0, "scheduler");
        for t in 0..ct {
            rec.name_thread(pid, 1 + t as u32, format!("worker{t}"));
        }
        rec.name_thread(pid, TID_NET, "net");
    }

    // Step a: announce idleness (acknowledged: a dropped IDLE would
    // otherwise starve this slave forever).
    rep.send_reliable(master, tags::IDLE, bytes::Bytes::new())?;

    std::thread::scope(|scope| {
        // The compute pool lives for the whole slave, not per tile.
        let pool = ComputePool::spawn(scope, ct, problem, &grid, obs.recorder.clone(), pid);
        let mut last_hb = Instant::now();

        loop {
            // A heartbeat failure means the master's endpoint is gone (or
            // this endpoint was killed): propagate, ending the slave.
            if last_hb.elapsed() >= config.heartbeat_interval {
                rep.send_unreliable(master, tags::HEARTBEAT, bytes::Bytes::new())?;
                sm.heartbeats.inc();
                lane.instant("heartbeat", "sched", None);
                last_hb = Instant::now();
            }
            let env = match rep.recv_timeout(config.heartbeat_interval) {
                Ok(env) => env,
                Err(NetError::Timeout) => continue,
                Err(e) => return Err(e.into()),
            };
            match env.tag {
                tags::END => {
                    // SlaveStatsMsg is a view over the registry: every
                    // field was maintained there as the tiles ran.
                    let stats = SlaveStatsMsg {
                        tasks_done: sm.tiles.get(),
                        subtasks_done: sm.subtasks.get(),
                        busy_ns: sm.busy_ns.get(),
                        thread_failures: sm.thread_failures.get(),
                        peak_node_bytes: sm.peak_node_bytes.get().max(0) as u64,
                        threads_spawned: pool.threads_spawned(),
                    };
                    let _ = rep.send_reliable(master, tags::STATS, stats.encode());
                    // Linger until the STATS (and any late DONE) is acked,
                    // so the master's teardown collection cannot miss it.
                    rep.drain_pending(Duration::from_secs(1));
                    publish_endpoint_stats(&registry, &format!("slave{w}"), &rep);
                    return Ok(stats);
                }
                tags::ASSIGN => {
                    let msg = AssignMsg::decode(&env.payload)?;
                    lane.instant("dispatch", "sched", Some(("task", u64::from(msg.task))));
                    let tile_start = lane.now_ns();
                    {
                        // Steps b-c: install input strips, back every
                        // sub-sub-task region with memory. Write lock: the
                        // pool is idle between tiles, so this never blocks.
                        let mut g = grid.write();
                        for (region, bytes) in &msg.inputs {
                            g.decode_region(*region, bytes);
                        }
                        g.prepare(&[msg.region]);
                    }
                    // Steps d-i: drive the slave DAG through the pool,
                    // heartbeating (and retransmitting pending sends)
                    // whenever the tile makes us wait — a long compute
                    // must not read as death to the master.
                    let exec = execute_tile(
                        model,
                        &pool,
                        msg.tile,
                        config,
                        &sm,
                        &mut || {
                            if last_hb.elapsed() >= config.heartbeat_interval {
                                let _ = rep.send_unreliable(
                                    master,
                                    tags::HEARTBEAT,
                                    bytes::Bytes::new(),
                                );
                                sm.heartbeats.inc();
                                last_hb = Instant::now();
                            }
                            rep.pump();
                        },
                        None,
                    )?;
                    sm.tiles.inc();
                    sm.subtasks.add(exec.subtasks);
                    sm.busy_ns.add(exec.busy_ns);
                    sm.thread_failures.add(exec.failures);
                    // Step h (slave side): return the computed region.
                    let mut g = grid.write();
                    sm.peak_node_bytes.set_max(g.allocated_bytes() as i64);
                    let output = g.encode_region(msg.region);
                    drop(g);
                    let done = DoneMsg {
                        task: msg.task,
                        // Echoed blindly: the slave has no epoch knowledge;
                        // the master fences completions from replaced
                        // incarnations by this echo alone.
                        epoch: msg.epoch,
                        region: msg.region,
                        output,
                    };
                    rep.send_reliable(master, tags::DONE, done.encode())?;
                    lane.span_since(
                        "compute",
                        "sched",
                        tile_start,
                        Some(("task", u64::from(msg.task))),
                    );
                    lane.instant("done", "sched", Some(("task", u64::from(msg.task))));
                }
                other => {
                    debug_assert!(false, "slave received unexpected {other}");
                }
            }
        }
    })
}

/// Execute one master tile on the persistent worker pool: partition it by
/// `thread_partition_size` and drive the shared [`PoolSched`] state
/// machine until every sub-sub-task completes. This function is the
/// machine's threaded driver — every scheduling decision (which worker
/// gets which sub-sub-task, what a failed kernel means) is the machine's;
/// this loop only moves jobs and results across channels. Every job
/// dispatched here is collected before returning, so the pool is
/// quiescent between calls. `on_wait` is invoked whenever waiting for a
/// worker result exceeds the heartbeat interval — the slave loop
/// heartbeats there so a long tile never reads as silence. With `log`,
/// every `(event, actions)` exchange is recorded for differential replay
/// against the virtual-time driver.
pub(crate) fn execute_tile(
    model: &DagDataDrivenModel,
    pool: &ComputePool,
    tile: GridPos,
    config: &Deployment,
    metrics: &SlaveMetrics,
    on_wait: &mut dyn FnMut(),
    mut log: Option<&mut PoolLog>,
) -> Result<TileExecution, RuntimeError> {
    let sdag = model.slave_dag(tile);
    let mut sched = PoolSched::new(&sdag, pool.threads(), config.thread_mode);
    let mut exec = TileExecution::default();

    let mut queue = sched.on_event(&sdag, PoolEvent::Start)?;
    if let Some(l) = log.as_deref_mut() {
        l.push((PoolEvent::Start, queue.clone()));
    }
    loop {
        let mut finished = false;
        for a in queue.drain(..) {
            match a {
                PoolAction::Run { worker, sub } => {
                    let region = model.sub_region(tile, sdag.vertex(VertexId(sub)).pos);
                    pool.job_txs[worker]
                        .send(Job { sub, region })
                        .expect("worker channel open");
                }
                PoolAction::Done => finished = true,
            }
        }
        if finished {
            break;
        }

        // Collect one result (we are not done, so either a worker is busy
        // or a dispatch just happened above); heartbeat while waiting.
        let res = loop {
            match pool.result_rx.recv_timeout(config.heartbeat_interval) {
                Ok(res) => break res,
                Err(RecvTimeoutError::Timeout) => on_wait(),
                Err(RecvTimeoutError::Disconnected) => {
                    unreachable!("workers alive while tasks remain")
                }
            }
        };
        exec.busy_ns += res.elapsed_ns;
        metrics.subtask_latency.observe(res.elapsed_ns);
        if res.ok {
            exec.subtasks += 1;
        } else {
            // Thread-level fault tolerance: the panic was caught (the
            // worker thread effectively restarted); the machine re-queues
            // the sub-sub-task for any worker.
            exec.failures += 1;
        }
        let ev = PoolEvent::WorkerDone {
            worker: res.worker,
            sub: res.sub,
            ok: res.ok,
        };
        queue = sched.on_event(&sdag, ev)?;
        if let Some(l) = log.as_deref_mut() {
            l.push((ev, queue.clone()));
        }
    }

    debug_assert!(sched.is_done());
    Ok(exec)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sched::replay_pool;
    use easyhps_core::GridDims;
    use easyhps_dp::sequence::{random_sequence, Alphabet};
    use easyhps_dp::{DpProblem, EditDistance};

    /// Differential test (threaded driver): record the real thread pool's
    /// event log while computing a tile, then replay the same events into
    /// a fresh machine — the actions must match batch for batch. Any
    /// divergence means the threaded driver smuggled policy of its own.
    #[test]
    fn threaded_pool_driver_matches_machine_replay() {
        let a = random_sequence(Alphabet::Dna, 32, 11);
        let b = random_sequence(Alphabet::Dna, 32, 12);
        let problem = EditDistance::new(a, b);
        let dims = problem.dims();
        let model = DagDataDrivenModel::builder(problem.pattern())
            .process_partition_size(dims)
            .thread_partition_size(GridDims::new(8, 8))
            .build();
        let config = Deployment::local(1, 3);
        let registry = easyhps_obs::Registry::new();
        let sm = SlaveMetrics::register(&registry, 0);
        let grid = RwLock::new(SharedGrid::<<EditDistance as DpProblem>::Cell>::new(dims));

        let mut log = PoolLog::new();
        let exec = std::thread::scope(|scope| {
            let pool = ComputePool::spawn(scope, 3, &problem, &grid, None, 0);
            execute_tile(
                &model,
                &pool,
                GridPos::new(0, 0),
                &config,
                &sm,
                &mut || {},
                Some(&mut log),
            )
        })
        .unwrap();
        assert!(exec.subtasks > 1, "tile actually ran on the pool");

        let sdag = model.slave_dag(GridPos::new(0, 0));
        let replayed =
            replay_pool(&sdag, 3, config.thread_mode, log.iter().map(|(e, _)| *e)).unwrap();
        let recorded: Vec<_> = log.into_iter().map(|(_, a)| a).collect();
        assert_eq!(
            replayed, recorded,
            "threaded driver and replay diverged on the same event log"
        );
    }
}
