//! Node-matrix storage strategies.
//!
//! The paper's §VII names space consumption as EasyHPS's main limitation:
//! every slave holds a full `dag_size` matrix even though it only ever
//! touches its input strips and its own tiles. [`NodeStorage`] abstracts
//! the node matrix so the slave can run either **dense** (one flat
//! allocation, fastest access — the paper's behaviour) or **sparse**
//! (fixed-size chunks allocated on demand — memory proportional to the
//! data a node actually sees). The sparse mode implements the paper's
//! future-work item.

use crate::shared_grid::{SharedGrid, TaskView};
use easyhps_core::{GridDims, GridPos, TileRegion};
use easyhps_dp::{Cell, DpGrid};
use std::cell::UnsafeCell;
use std::collections::HashMap;

/// Storage for one slave's node matrix. The safety contract of
/// [`NodeStorage::task_view`] is the same as
/// [`SharedGrid::task_view`]: per-region exclusivity plus
/// happens-before on reads, both guaranteed by the DAG schedule.
pub trait NodeStorage<C: Cell>: Send + Sync + 'static {
    /// The grid view computing threads work through.
    type View<'a>: DpGrid<C>
    where
        Self: 'a;

    /// Create storage for a `dims` matrix.
    fn new(dims: GridDims) -> Self;

    /// Make sure every cell of `regions` is backed by real memory. Called
    /// with exclusive access before the worker pool starts; dense storage
    /// is a no-op.
    fn prepare(&mut self, regions: &[TileRegion]);

    /// Overwrite `region` from wire bytes (exclusive access).
    fn decode_region(&mut self, region: TileRegion, bytes: &[u8]);

    /// Serialize `region` to wire bytes (exclusive access).
    fn encode_region(&mut self, region: TileRegion) -> Vec<u8>;

    /// Create a view that may write `region` and read finished cells.
    ///
    /// # Safety
    ///
    /// Same contract as [`SharedGrid::task_view`].
    unsafe fn task_view(&self, region: TileRegion) -> Self::View<'_>;

    /// Bytes of cell memory currently allocated.
    fn allocated_bytes(&self) -> u64;
}

impl<C: Cell> NodeStorage<C> for SharedGrid<C> {
    type View<'a> = TaskView<'a, C>;

    fn new(dims: GridDims) -> Self {
        SharedGrid::new(dims)
    }

    fn prepare(&mut self, _regions: &[TileRegion]) {}

    fn decode_region(&mut self, region: TileRegion, bytes: &[u8]) {
        self.as_exclusive().decode_region(region, bytes);
    }

    fn encode_region(&mut self, region: TileRegion) -> Vec<u8> {
        self.as_exclusive().encode_region(region)
    }

    unsafe fn task_view(&self, region: TileRegion) -> TaskView<'_, C> {
        // SAFETY: forwarded contract.
        unsafe { SharedGrid::task_view(self, region) }
    }

    fn allocated_bytes(&self) -> u64 {
        self.dims().area() * std::mem::size_of::<C>() as u64
    }
}

/// Chunk side length of the sparse grid, in cells. 64x64 chunks balance
/// map overhead against over-allocation at strip edges.
const CHUNK: u32 = 64;

/// Sparse node matrix: fixed-size chunks allocated on first touch.
///
/// Reads of unallocated chunks return `C::default()` — exactly what a
/// freshly allocated dense grid would contain (this matters for
/// recurrences that read never-written base cells, like Nussinov's lower
/// triangle).
pub struct SparseGrid<C: Cell> {
    dims: GridDims,
    chunk_grid: GridDims,
    chunks: HashMap<u64, Box<[UnsafeCell<C>]>>,
}

// SAFETY: aliasing discipline per NodeStorage contract; the chunk map is
// only mutated through &mut self (prepare/decode), never while views live.
unsafe impl<C: Cell> Sync for SparseGrid<C> {}

impl<C: Cell> SparseGrid<C> {
    fn chunk_key(&self, cr: u32, cc: u32) -> u64 {
        (cr as u64) << 32 | cc as u64
    }

    fn chunk_of(&self, row: u32, col: u32) -> (u32, u32, usize) {
        let (cr, cc) = (row / CHUNK, col / CHUNK);
        let idx = ((row % CHUNK) * CHUNK + (col % CHUNK)) as usize;
        (cr, cc, idx)
    }

    fn ensure_chunk(&mut self, cr: u32, cc: u32) {
        let key = self.chunk_key(cr, cc);
        self.chunks.entry(key).or_insert_with(|| {
            let n = (CHUNK * CHUNK) as usize;
            let mut v = Vec::with_capacity(n);
            v.resize_with(n, || UnsafeCell::new(C::default()));
            v.into_boxed_slice()
        });
    }

    #[inline]
    fn read(&self, row: u32, col: u32) -> C {
        debug_assert!(self.dims.contains(GridPos::new(row, col)));
        let (cr, cc, idx) = self.chunk_of(row, col);
        match self.chunks.get(&self.chunk_key(cr, cc)) {
            // SAFETY: per the NodeStorage view contract the cell is final
            // or owned by the reading task.
            Some(chunk) => unsafe { *chunk[idx].get() },
            None => C::default(),
        }
    }

    /// # Safety
    /// Caller must hold write rights to `(row, col)` per the view
    /// contract, and the chunk must be allocated (prepare() was called).
    #[inline]
    unsafe fn write(&self, row: u32, col: u32, value: C) {
        let (cr, cc, idx) = self.chunk_of(row, col);
        let chunk = self
            .chunks
            .get(&self.chunk_key(cr, cc))
            .expect("write to unprepared chunk: prepare() must cover every task region");
        // SAFETY: caller contract.
        unsafe { *chunk[idx].get() = value }
    }

    /// Number of allocated chunks (for tests and stats).
    pub fn chunk_count(&self) -> usize {
        self.chunks.len()
    }

    /// Call `f(chunk_key, in_chunk_idx, col, seg_end)` for each maximal
    /// chunk-contiguous segment of row cells `[col_start, col_end)`. Within
    /// one chunk a row is contiguous, so each segment maps to one slice.
    fn for_row_segments(
        &self,
        row: u32,
        col_start: u32,
        col_end: u32,
        mut f: impl FnMut(u64, usize, u32, u32),
    ) {
        let cr = row / CHUNK;
        let row_off = (row % CHUNK) * CHUNK;
        let mut c = col_start;
        while c < col_end {
            let cc = c / CHUNK;
            let seg_end = ((cc + 1) * CHUNK).min(col_end);
            f(
                self.chunk_key(cr, cc),
                (row_off + c % CHUNK) as usize,
                c,
                seg_end,
            );
            c = seg_end;
        }
    }

    /// Borrow row cells `[col_start, col_end)` as a slice, if they live in
    /// one allocated chunk (a row never spans chunks vertically, so this is
    /// the only contiguity requirement).
    ///
    /// # Safety
    ///
    /// Same as [`SparseGrid::read`], slice-wide: every cell must be
    /// finalized or owned by the caller for the borrow's lifetime.
    unsafe fn row_span(&self, row: u32, col_start: u32, col_end: u32) -> Option<&[C]> {
        debug_assert!(col_start <= col_end && col_end <= self.dims.cols);
        if col_start == col_end {
            return Some(&[]);
        }
        if col_start / CHUNK != (col_end - 1) / CHUNK {
            return None;
        }
        let (cr, cc, idx) = self.chunk_of(row, col_start);
        let chunk = self.chunks.get(&self.chunk_key(cr, cc))?;
        let len = (col_end - col_start) as usize;
        // SAFETY: `UnsafeCell<C>` has the same layout as `C`, the segment is
        // within one chunk row, and the caller guarantees no concurrent
        // writers per the view contract.
        Some(unsafe { std::slice::from_raw_parts(chunk[idx].get() as *const C, len) })
    }

    /// Bulk-read row cells into `dst`, filling `C::default()` for
    /// unallocated chunks (matching [`SparseGrid::read`]).
    fn read_row_cells(&self, row: u32, col_start: u32, dst: &mut [C]) {
        self.for_row_segments(
            row,
            col_start,
            col_start + dst.len() as u32,
            |key, idx, c, end| {
                let d = &mut dst[(c - col_start) as usize..(end - col_start) as usize];
                match self.chunks.get(&key) {
                    // SAFETY: per the view contract the cells are finalized or
                    // owned by the reading task; same layout argument as
                    // `row_span`.
                    Some(chunk) => d.copy_from_slice(unsafe {
                        std::slice::from_raw_parts(chunk[idx].get() as *const C, d.len())
                    }),
                    None => d.fill(C::default()),
                }
            },
        );
    }

    /// Bulk-write row cells from `values`.
    ///
    /// # Safety
    ///
    /// Same as [`SparseGrid::write`], slice-wide: the caller holds write
    /// rights to every cell, and every touched chunk is prepared.
    unsafe fn write_row_cells(&self, row: u32, col_start: u32, values: &[C]) {
        self.for_row_segments(
            row,
            col_start,
            col_start + values.len() as u32,
            |key, idx, c, end| {
                let chunk = self
                    .chunks
                    .get(&key)
                    .expect("write to unprepared chunk: prepare() must cover every task region");
                let src = &values[(c - col_start) as usize..(end - col_start) as usize];
                // SAFETY: caller contract; the segment stays inside one chunk
                // row, so the destination range is in bounds.
                unsafe { std::ptr::copy_nonoverlapping(src.as_ptr(), chunk[idx].get(), src.len()) };
            },
        );
    }
}

impl<C: Cell> NodeStorage<C> for SparseGrid<C> {
    type View<'a> = SparseView<'a, C>;

    fn new(dims: GridDims) -> Self {
        Self {
            dims,
            chunk_grid: dims.tiled_by(GridDims::square(CHUNK)),
            chunks: HashMap::new(),
        }
    }

    fn prepare(&mut self, regions: &[TileRegion]) {
        for region in regions {
            if region.is_empty() {
                continue;
            }
            for cr in region.row_start / CHUNK..=(region.row_end - 1) / CHUNK {
                for cc in region.col_start / CHUNK..=(region.col_end - 1) / CHUNK {
                    self.ensure_chunk(cr, cc);
                }
            }
        }
        let _ = self.chunk_grid;
    }

    fn decode_region(&mut self, region: TileRegion, bytes: &[u8]) {
        assert_eq!(
            bytes.len(),
            region.area() as usize * C::WIRE_SIZE,
            "byte length does not match region {region:?}"
        );
        if region.cols() == 0 {
            return;
        }
        self.prepare(&[region]);
        let row_bytes = region.cols() as usize * C::WIRE_SIZE;
        let mut scratch = vec![C::default(); region.cols() as usize];
        for (r, chunk) in (region.row_start..region.row_end).zip(bytes.chunks_exact(row_bytes)) {
            C::decode_slice(&mut scratch, chunk);
            // SAFETY: &mut self = exclusive; chunks just prepared.
            unsafe { self.write_row_cells(r, region.col_start, &scratch) };
        }
    }

    fn encode_region(&mut self, region: TileRegion) -> Vec<u8> {
        let mut out = Vec::with_capacity(region.area() as usize * C::WIRE_SIZE);
        let mut scratch = vec![C::default(); region.cols() as usize];
        for r in region.row_start..region.row_end {
            self.read_row_cells(r, region.col_start, &mut scratch);
            C::encode_slice(&scratch, &mut out);
        }
        out
    }

    unsafe fn task_view(&self, region: TileRegion) -> SparseView<'_, C> {
        SparseView { grid: self, region }
    }

    fn allocated_bytes(&self) -> u64 {
        self.chunks.len() as u64 * (CHUNK as u64 * CHUNK as u64) * std::mem::size_of::<C>() as u64
    }
}

/// Task view over a [`SparseGrid`].
pub struct SparseView<'g, C: Cell> {
    grid: &'g SparseGrid<C>,
    region: TileRegion,
}

impl<C: Cell> DpGrid<C> for SparseView<'_, C> {
    fn dims(&self) -> GridDims {
        self.grid.dims
    }

    #[inline]
    fn get(&self, row: u32, col: u32) -> C {
        self.grid.read(row, col)
    }

    #[inline]
    fn set(&mut self, row: u32, col: u32, value: C) {
        // Hot path: the region check is a debug assertion; release builds
        // rely on the DAG schedule (and the bulk write_row check).
        debug_assert!(
            self.region.contains(GridPos::new(row, col)),
            "task wrote ({row},{col}) outside its region {:?}",
            self.region
        );
        // SAFETY: in-region writes are exclusive per the view contract;
        // the slave prepares every task region before the pool starts.
        unsafe { self.grid.write(row, col, value) }
    }

    fn row_slice(&self, row: u32, col_start: u32, col_end: u32) -> Option<&[C]> {
        // SAFETY: the view's read contract (cells finalized or owned) is
        // exactly row_span's no-concurrent-writer requirement.
        unsafe { self.grid.row_span(row, col_start, col_end) }
    }

    fn read_row_into(&self, row: u32, col_start: u32, dst: &mut [C]) {
        self.grid.read_row_cells(row, col_start, dst);
    }

    fn write_row(&mut self, row: u32, col_start: u32, values: &[C]) {
        let col_end = col_start + values.len() as u32;
        // One region check per row instead of per cell.
        assert!(
            row >= self.region.row_start
                && row < self.region.row_end
                && col_start >= self.region.col_start
                && col_end <= self.region.col_end,
            "task wrote row {row} cols [{col_start},{col_end}) outside its region {:?}",
            self.region
        );
        // SAFETY: the row span is inside the view's region, where writes
        // are exclusive per the view contract.
        unsafe { self.grid.write_row_cells(row, col_start, values) }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sparse_reads_default_when_unallocated() {
        let g = SparseGrid::<i32>::new(GridDims::square(1000));
        assert_eq!(g.read(999, 999), 0);
        assert_eq!(g.allocated_bytes(), 0);
    }

    #[test]
    fn sparse_decode_encode_roundtrip() {
        let mut g = <SparseGrid<i32> as NodeStorage<i32>>::new(GridDims::square(500));
        let region = TileRegion::new(100, 164, 200, 280);
        let bytes: Vec<u8> = (0..region.area() as usize * 4)
            .map(|i| (i % 251) as u8)
            .collect();
        g.decode_region(region, &bytes);
        assert_eq!(g.encode_region(region), bytes);
        // Only the touched chunks exist: rows 100..164 span chunks 1..=2,
        // cols 200..280 span chunks 3..=4 -> at most 6 chunks.
        assert!(g.chunk_count() <= 6, "{} chunks", g.chunk_count());
    }

    #[test]
    fn sparse_task_view_reads_and_writes() {
        let mut g = <SparseGrid<i64> as NodeStorage<i64>>::new(GridDims::square(300));
        let region = TileRegion::new(64, 128, 64, 128);
        g.prepare(&[region]);
        let mut v = unsafe { g.task_view(region) };
        v.set(100, 100, 42);
        assert_eq!(v.get(100, 100), 42);
        assert_eq!(v.get(0, 0), 0, "unallocated reads default");
    }

    #[test]
    fn sparse_row_ops_cross_chunks() {
        let mut g = <SparseGrid<i32> as NodeStorage<i32>>::new(GridDims::new(4, 300));
        let region = TileRegion::new(0, 4, 30, 200); // spans chunks 0..=3
        g.prepare(&[region]);
        let mut v = unsafe { g.task_view(region) };
        let vals: Vec<i32> = (0..170).collect();
        v.write_row(2, 30, &vals);
        // Within one chunk the row is a real slice...
        assert_eq!(v.row_slice(2, 64, 128), Some(&vals[34..98]));
        // ...across chunks it is not, but read_row_into reassembles it.
        assert_eq!(v.row_slice(2, 30, 200), None);
        let mut back = vec![0i32; 170];
        v.read_row_into(2, 30, &mut back);
        assert_eq!(back, vals);
        // Reads reaching into unallocated chunks yield defaults.
        let mut edge = vec![-1i32; 150];
        v.read_row_into(2, 150, &mut edge);
        assert_eq!(&edge[..50], &vals[120..]);
        assert_eq!(&edge[50..], &[0i32; 100]);
    }

    // `set`'s region check is a debug assertion (hot path); only the bulk
    // `write_row` check fires in release builds.
    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "outside its region")]
    fn sparse_view_rejects_out_of_region_write() {
        let mut g = <SparseGrid<i32> as NodeStorage<i32>>::new(GridDims::square(100));
        let region = TileRegion::new(0, 10, 0, 10);
        g.prepare(&[region]);
        let mut v = unsafe { g.task_view(region) };
        v.set(50, 50, 1);
    }

    #[test]
    #[should_panic(expected = "outside its region")]
    fn sparse_view_rejects_out_of_region_row_write() {
        let mut g = <SparseGrid<i32> as NodeStorage<i32>>::new(GridDims::square(100));
        let region = TileRegion::new(0, 10, 0, 10);
        g.prepare(&[region]);
        let mut v = unsafe { g.task_view(region) };
        v.write_row(5, 8, &[1, 2, 3]); // cols [8,11) spill out of [0,10)
    }

    #[test]
    #[should_panic(expected = "unprepared chunk")]
    fn sparse_write_without_prepare_panics() {
        let g = <SparseGrid<i32> as NodeStorage<i32>>::new(GridDims::square(100));
        let mut v = unsafe { g.task_view(TileRegion::new(0, 10, 0, 10)) };
        v.set(5, 5, 1);
    }

    #[test]
    fn sparse_allocates_proportionally() {
        let mut g = <SparseGrid<i32> as NodeStorage<i32>>::new(GridDims::square(10_000));
        // A 10000^2 dense i32 grid would be 400 MB; touch one 128x128 area.
        g.prepare(&[TileRegion::new(5_000, 5_128, 5_000, 5_128)]);
        assert!(
            g.allocated_bytes() <= 9 * 64 * 64 * 4,
            "{} bytes",
            g.allocated_bytes()
        );
    }

    #[test]
    fn dense_storage_trait_roundtrip() {
        let mut g = <SharedGrid<i32> as NodeStorage<i32>>::new(GridDims::square(8));
        let region = TileRegion::new(2, 6, 2, 6);
        let bytes: Vec<u8> = (0..region.area() as usize * 4).map(|i| i as u8).collect();
        NodeStorage::decode_region(&mut g, region, &bytes);
        assert_eq!(NodeStorage::encode_region(&mut g, region), bytes);
        assert_eq!(NodeStorage::allocated_bytes(&g), 8 * 8 * 4);
    }

    #[test]
    fn sparse_concurrent_disjoint_writers() {
        let mut g = <SparseGrid<i64> as NodeStorage<i64>>::new(GridDims::new(2, 200));
        let top = TileRegion::new(0, 1, 0, 200);
        let bottom = TileRegion::new(1, 2, 0, 200);
        g.prepare(&[top, bottom]);
        std::thread::scope(|s| {
            let vt = unsafe { g.task_view(top) };
            let vb = unsafe { g.task_view(bottom) };
            s.spawn(move || {
                let mut v = vt;
                for c in 0..200 {
                    v.set(0, c, c as i64);
                }
            });
            s.spawn(move || {
                let mut v = vb;
                for c in 0..200 {
                    v.set(1, c, -(c as i64));
                }
            });
        });
        for c in 0..200u32 {
            assert_eq!(g.read(0, c), c as i64);
            assert_eq!(g.read(1, c), -(c as i64));
        }
    }
}
