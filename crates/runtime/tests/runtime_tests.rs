//! End-to-end tests of the multilevel runtime: correctness against the
//! sequential reference for every algorithm and scheduling mode, plus the
//! fault-tolerance drills.

use easyhps_dp::sequence::{random_sequence, Alphabet};
use easyhps_dp::{
    DpProblem, EditDistance, Lcs, MatrixChain, Nussinov, OptimalBst, Quadrant2D2D,
    SmithWatermanAffine, SmithWatermanGeneralGap,
};
use easyhps_net::FaultPlan;
use easyhps_runtime::testing::FaultyProblem;
use easyhps_runtime::{EasyHps, RuntimeError, ScheduleMode};
use std::time::Duration;

/// Run `problem` through the full runtime and compare present cells to the
/// sequential reference.
fn assert_runtime_matches<P: DpProblem + Clone>(
    problem: P,
    configure: impl FnOnce(EasyHps<P>) -> EasyHps<P>,
) {
    let reference = problem.solve_sequential();
    let pattern = problem.pattern();
    let out = configure(EasyHps::new(problem))
        .run()
        .expect("run succeeds");
    for p in reference.dims().iter() {
        if pattern.contains(p) {
            assert_eq!(out.matrix.at(p), reference.at(p), "cell {p}");
        }
    }
}

#[test]
fn edit_distance_on_runtime() {
    let a = random_sequence(Alphabet::Dna, 57, 1);
    let b = random_sequence(Alphabet::Dna, 49, 2);
    assert_runtime_matches(EditDistance::new(a, b), |e| {
        e.process_partition((10, 10))
            .thread_partition((4, 4))
            .slaves(3)
            .threads_per_slave(2)
    });
}

#[test]
fn swgg_on_runtime() {
    let a = random_sequence(Alphabet::Dna, 40, 3);
    let b = random_sequence(Alphabet::Dna, 44, 4);
    assert_runtime_matches(SmithWatermanGeneralGap::dna(a, b), |e| {
        e.process_partition((8, 8))
            .thread_partition((3, 3))
            .slaves(2)
            .threads_per_slave(3)
    });
}

#[test]
fn sw_affine_on_runtime() {
    let a = random_sequence(Alphabet::Dna, 35, 5);
    let b = random_sequence(Alphabet::Dna, 31, 6);
    assert_runtime_matches(SmithWatermanAffine::dna(a, b), |e| {
        e.process_partition((7, 9))
            .thread_partition((3, 4))
            .slaves(2)
            .threads_per_slave(2)
    });
}

#[test]
fn nussinov_on_runtime() {
    let rna = random_sequence(Alphabet::Rna, 50, 7);
    assert_runtime_matches(Nussinov::new(rna), |e| {
        e.process_partition((10, 10))
            .thread_partition((4, 4))
            .slaves(3)
            .threads_per_slave(2)
    });
}

#[test]
fn lcs_on_runtime() {
    let a = random_sequence(Alphabet::Protein, 30, 8);
    let b = random_sequence(Alphabet::Protein, 33, 9);
    assert_runtime_matches(Lcs::new(a, b), |e| {
        e.process_partition((6, 6))
            .thread_partition((2, 2))
            .slaves(2)
            .threads_per_slave(2)
    });
}

#[test]
fn matrix_chain_on_runtime() {
    let dims: Vec<u64> = (0..=24).map(|i| 2 + (i * 11 % 19)).collect();
    assert_runtime_matches(MatrixChain::new(dims), |e| {
        e.process_partition((6, 6))
            .thread_partition((2, 2))
            .slaves(2)
            .threads_per_slave(2)
    });
}

#[test]
fn obst_on_runtime() {
    let freq: Vec<u64> = (0..20).map(|i| 1 + (i * 7 % 13)).collect();
    assert_runtime_matches(OptimalBst::new(freq), |e| {
        e.process_partition((5, 5))
            .thread_partition((2, 2))
            .slaves(2)
            .threads_per_slave(2)
    });
}

#[test]
fn quadrant_2d2d_on_runtime() {
    assert_runtime_matches(Quadrant2D2D::new(20, 77), |e| {
        e.process_partition((6, 6))
            .thread_partition((3, 3))
            .slaves(2)
            .threads_per_slave(2)
    });
}

#[test]
fn block_cyclic_wavefront_is_correct_too() {
    // The BCW baseline must produce identical results, only slower.
    let a = random_sequence(Alphabet::Dna, 36, 11);
    let b = random_sequence(Alphabet::Dna, 36, 12);
    assert_runtime_matches(SmithWatermanGeneralGap::dna(a, b), |e| {
        e.process_partition((6, 6))
            .thread_partition((3, 3))
            .slaves(3)
            .threads_per_slave(2)
            .process_mode(ScheduleMode::BlockCyclic { block: 1 })
            .thread_mode(ScheduleMode::BlockCyclic { block: 1 })
    });
}

#[test]
fn column_wavefront_is_correct_too() {
    let rna = random_sequence(Alphabet::Rna, 40, 13);
    assert_runtime_matches(Nussinov::new(rna), |e| {
        e.process_partition((8, 8))
            .thread_partition((4, 4))
            .slaves(2)
            .threads_per_slave(2)
            .process_mode(ScheduleMode::ColumnWavefront)
            .thread_mode(ScheduleMode::ColumnWavefront)
    });
}

#[test]
fn single_slave_single_thread_degenerate() {
    let a = random_sequence(Alphabet::Dna, 20, 14);
    let b = random_sequence(Alphabet::Dna, 22, 15);
    assert_runtime_matches(EditDistance::new(a, b), |e| {
        e.process_partition((5, 5))
            .thread_partition((5, 5))
            .slaves(1)
            .threads_per_slave(1)
    });
}

#[test]
fn one_tile_covers_whole_problem() {
    let a = random_sequence(Alphabet::Dna, 12, 16);
    let b = random_sequence(Alphabet::Dna, 12, 17);
    assert_runtime_matches(EditDistance::new(a, b), |e| {
        e.process_partition((13, 13))
            .thread_partition((13, 13))
            .slaves(2)
            .threads_per_slave(2)
    });
}

#[test]
fn no_slaves_is_an_error() {
    let p = EditDistance::new(b"a".to_vec(), b"b".to_vec());
    let err = EasyHps::new(p).slaves(0).run().unwrap_err();
    assert_eq!(err, RuntimeError::NoSlaves);
}

#[test]
fn report_counts_are_consistent() {
    let a = random_sequence(Alphabet::Dna, 30, 18);
    let b = random_sequence(Alphabet::Dna, 30, 19);
    let p = EditDistance::new(a, b);
    let out = EasyHps::new(p)
        .process_partition((8, 8))
        .thread_partition((3, 3))
        .slaves(2)
        .threads_per_slave(2)
        .run()
        .unwrap();
    let r = &out.report;
    // 31x31 grid in 8x8 tiles -> 4x4 = 16 master sub-tasks.
    assert_eq!(r.master.completed, 16);
    assert_eq!(r.master.dispatched, 16, "no re-dispatch without faults");
    assert_eq!(r.master.redispatched, 0);
    assert_eq!(r.master.dead_slaves, 0);
    // Each 8x8 tile in 3x3 sub-tiles -> 9 sub-sub-tasks (3x3 tile grid),
    // ragged edges have fewer; total must cover all 16 tiles.
    let slave_tasks: u64 = r.slaves.iter().flatten().map(|s| s.tasks_done).sum();
    assert_eq!(slave_tasks, 16);
    assert!(r.total_subtasks() >= 16);
    assert_eq!(
        r.slaves
            .iter()
            .flatten()
            .map(|s| s.thread_failures)
            .sum::<u64>(),
        0
    );
    // The compute pool is persistent: each slave spawns its ct computing
    // threads exactly once, not once per assigned tile (16 tiles over 2
    // slaves guarantees some slave ran many tiles on those same threads).
    for s in r.slaves.iter().flatten() {
        assert_eq!(
            s.threads_spawned, 2,
            "threads spawned once per slave lifetime"
        );
    }
    assert!(
        r.slaves.iter().flatten().any(|s| s.tasks_done > 1),
        "at least one slave executed several tiles on one pool"
    );
}

#[test]
fn thread_level_fault_tolerance_recovers_from_panics() {
    let a = random_sequence(Alphabet::Dna, 25, 20);
    let b = random_sequence(Alphabet::Dna, 25, 21);
    let inner = EditDistance::new(a, b);
    let reference = inner.solve_sequential();
    let faulty = FaultyProblem::new(inner, 5);
    let out = EasyHps::new(faulty)
        .process_partition((9, 9))
        .thread_partition((3, 3))
        .slaves(2)
        .threads_per_slave(2)
        .run()
        .expect("recovers from injected panics");
    assert_eq!(out.matrix, reference);
    let failures: u64 = out
        .report
        .slaves
        .iter()
        .flatten()
        .map(|s| s.thread_failures)
        .sum();
    assert_eq!(failures, 5, "every injected panic recovered exactly once");
}

#[test]
fn process_level_fault_tolerance_survives_slave_death() {
    // Slave 0 dies after 3 sends (its IDLE + two results); the master must
    // time it out, redistribute, and still produce a correct matrix.
    let a = random_sequence(Alphabet::Dna, 30, 22);
    let b = random_sequence(Alphabet::Dna, 30, 23);
    let p = EditDistance::new(a, b);
    let reference = p.solve_sequential();
    let out = EasyHps::new(p)
        .process_partition((6, 6))
        .thread_partition((3, 3))
        .slaves(3)
        .threads_per_slave(2)
        .task_timeout(Duration::from_millis(300))
        .inject_fault(0, FaultPlan::die_after(3))
        .run()
        .expect("survives one slave dying");
    assert_eq!(out.matrix, reference);
    assert_eq!(out.report.master.dead_slaves, 1);
    assert!(
        out.report.slaves[0].is_none(),
        "dead slave reports no stats"
    );
    assert!(out.report.slaves[1].is_some());
}

#[test]
fn all_slaves_dead_is_reported() {
    let a = random_sequence(Alphabet::Dna, 20, 24);
    let b = random_sequence(Alphabet::Dna, 20, 25);
    let p = EditDistance::new(a, b);
    let err = EasyHps::new(p)
        .process_partition((5, 5))
        .thread_partition((5, 5))
        .slaves(2)
        .threads_per_slave(1)
        .task_timeout(Duration::from_millis(200))
        .inject_fault(0, FaultPlan::die_after(1))
        .inject_fault(1, FaultPlan::die_after(1))
        .run()
        .unwrap_err();
    assert_eq!(err, RuntimeError::AllSlavesDead);
}

#[test]
fn larger_multilevel_nussinov_with_failures() {
    // Triangular workload + injected thread panics + a dying slave: the
    // full fault-tolerance stack at once.
    let rna = random_sequence(Alphabet::Rna, 45, 26);
    let inner = Nussinov::new(rna);
    let reference = inner.solve_sequential();
    let pattern = inner.pattern();
    let faulty = FaultyProblem::new(inner, 3);
    let out = EasyHps::new(faulty)
        .process_partition((9, 9))
        .thread_partition((3, 3))
        .slaves(3)
        .threads_per_slave(2)
        .task_timeout(Duration::from_millis(500))
        .inject_fault(1, FaultPlan::die_after(4))
        .run()
        .expect("survives combined faults");
    for p in reference.dims().iter() {
        if pattern.contains(p) {
            assert_eq!(out.matrix.at(p), reference.at(p), "cell {p}");
        }
    }
}

#[test]
fn needleman_wunsch_on_runtime() {
    let a = random_sequence(Alphabet::Dna, 33, 30);
    let b = random_sequence(Alphabet::Dna, 37, 31);
    assert_runtime_matches(easyhps_dp::NeedlemanWunsch::dna(a, b), |e| {
        e.process_partition((8, 8))
            .thread_partition((3, 3))
            .slaves(2)
            .threads_per_slave(2)
    });
}

#[test]
fn knapsack_on_runtime_with_column_partitions() {
    // The RowLookback2D pattern must ship whole previous-row prefixes;
    // column partitions would corrupt results if it under-declared.
    let items: Vec<(u32, u64)> = (0..20)
        .map(|i| (1 + i % 7, (i * 13 % 29) as u64 + 1))
        .collect();
    assert_runtime_matches(easyhps_dp::Knapsack::new(&items, 60), |e| {
        e.process_partition((6, 13))
            .thread_partition((3, 5))
            .slaves(2)
            .threads_per_slave(2)
    });
}

#[test]
fn cyk_on_runtime() {
    let word: Vec<u8> = b"(()())((()))()(()(()))((())())".to_vec();
    let p = easyhps_dp::CykParser::new(easyhps_dp::Grammar::balanced_parens(), word.clone());
    let reference = p.solve_sequential();
    assert!(p.recognized(&reference), "the word is balanced");
    assert_runtime_matches(
        easyhps_dp::CykParser::new(easyhps_dp::Grammar::balanced_parens(), word),
        |e| {
            e.process_partition((8, 8))
                .thread_partition((3, 3))
                .slaves(3)
                .threads_per_slave(2)
        },
    );
}

#[test]
fn single_level_and_multilevel_agree() {
    // EasyPDP (one shared-memory pool) and EasyHPS (multilevel) must
    // produce identical matrices for the same problem.
    use easyhps_runtime::EasyPdp;
    let rna = random_sequence(Alphabet::Rna, 40, 40);
    let multilevel = EasyHps::new(Nussinov::new(rna.clone()))
        .process_partition((10, 10))
        .thread_partition((5, 5))
        .slaves(2)
        .threads_per_slave(2)
        .run()
        .unwrap();
    let single = EasyPdp::new(Nussinov::new(rna.clone()))
        .partition((5, 5))
        .threads(4)
        .run()
        .unwrap();
    let pattern = Nussinov::new(rna).pattern();
    for pos in multilevel.matrix.dims().iter() {
        if pattern.contains(pos) {
            assert_eq!(
                multilevel.matrix.at(pos),
                single.matrix.at(pos),
                "cell {pos}"
            );
        }
    }
}

#[test]
fn sparse_memory_mode_is_correct_and_smaller() {
    use easyhps_runtime::MemoryMode;
    let rna = random_sequence(Alphabet::Rna, 400, 50);
    let reference = Nussinov::new(rna.clone()).solve_sequential();
    let pattern = Nussinov::new(rna.clone()).pattern();

    let run = |mode: MemoryMode| {
        EasyHps::new(Nussinov::new(rna.clone()))
            .process_partition((80, 80))
            .thread_partition((20, 20))
            .slaves(3)
            .threads_per_slave(2)
            .memory_mode(mode)
            .run()
            .unwrap()
    };
    let dense = run(MemoryMode::Dense);
    let sparse = run(MemoryMode::Sparse);

    for pos in reference.dims().iter() {
        if pattern.contains(pos) {
            assert_eq!(
                sparse.matrix.at(pos),
                reference.at(pos),
                "sparse cell {pos}"
            );
            assert_eq!(dense.matrix.at(pos), reference.at(pos), "dense cell {pos}");
        }
    }
    let peak = |out: &easyhps_runtime::RunOutput<i32>| {
        out.report
            .slaves
            .iter()
            .flatten()
            .map(|s| s.peak_node_bytes)
            .max()
            .unwrap()
    };
    let (pd, ps) = (peak(&dense), peak(&sparse));
    assert_eq!(pd, 400 * 400 * 4, "dense allocates the full matrix");
    assert!(
        ps * 10 < pd * 9,
        "sparse ({ps} B) must undercut dense ({pd} B) on a triangular workload"
    );
}

#[test]
fn runtime_trace_records_every_tile() {
    let a = random_sequence(Alphabet::Dna, 40, 60);
    let b = random_sequence(Alphabet::Dna, 40, 61);
    let out = EasyHps::new(EditDistance::new(a, b))
        .process_partition((10, 10))
        .thread_partition((5, 5))
        .slaves(2)
        .threads_per_slave(2)
        .run()
        .unwrap();
    let trace = &out.report.trace;
    assert_eq!(trace.spans.len() as u64, out.report.master.completed);
    assert!(
        !trace.has_lane_overlaps(),
        "a slave never runs two tiles at once:\n{}",
        trace.gantt(60)
    );
    // Both slaves appear.
    let lanes: std::collections::BTreeSet<_> = trace.spans.iter().map(|s| s.lane.clone()).collect();
    assert_eq!(lanes.len(), 2);
    assert!(trace.gantt(50).contains("slave0"));
}

#[test]
fn checkpoint_and_resume_complete_the_run() {
    let a = random_sequence(Alphabet::Dna, 50, 70);
    let b = random_sequence(Alphabet::Dna, 50, 71);
    let reference = EditDistance::new(a.clone(), b.clone()).solve_sequential();

    // Phase 1: run only 10 of the 25 tiles, then stop with a checkpoint.
    let partial = EasyHps::new(EditDistance::new(a.clone(), b.clone()))
        .process_partition((11, 11))
        .thread_partition((4, 4))
        .slaves(2)
        .threads_per_slave(2)
        .tile_budget(10)
        .run()
        .unwrap();
    assert!(partial.report.master.completed >= 10);
    assert!(partial.report.master.completed < 25, "stopped early");
    let cp = partial.checkpoint.expect("early stop yields a checkpoint");

    // The checkpoint round-trips through bytes (a file on a real cluster).
    let cp = easyhps_runtime::Checkpoint::from_bytes(&cp.to_bytes()).unwrap();
    let resumed_from = cp.finished_len() as u64;

    // Phase 2: resume; only the remaining tiles are dispatched.
    let full = EasyHps::new(EditDistance::new(a, b))
        .process_partition((11, 11))
        .thread_partition((4, 4))
        .slaves(2)
        .threads_per_slave(2)
        .resume_from(cp)
        .run()
        .unwrap();
    assert!(full.checkpoint.is_none(), "run completed");
    assert_eq!(full.matrix, reference);
    assert_eq!(full.report.master.completed, 25);
    assert_eq!(
        full.report.master.dispatched,
        25 - resumed_from,
        "resumed tiles are not re-dispatched"
    );
}

#[test]
fn budget_covering_everything_behaves_like_a_full_run() {
    let a = random_sequence(Alphabet::Dna, 20, 72);
    let b = random_sequence(Alphabet::Dna, 20, 73);
    let reference = EditDistance::new(a.clone(), b.clone()).solve_sequential();
    let out = EasyHps::new(EditDistance::new(a, b))
        .process_partition((7, 7))
        .thread_partition((3, 3))
        .slaves(2)
        .threads_per_slave(1)
        .tile_budget(1_000)
        .run()
        .unwrap();
    assert!(out.checkpoint.is_none());
    assert_eq!(out.matrix, reference);
}

#[test]
fn viterbi_on_runtime_with_row_bands() {
    use easyhps_dp::{Hmm, Viterbi};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    let hmm = Hmm::random(10, 6, 4);
    let mut rng = StdRng::seed_from_u64(5);
    let obs: Vec<u32> = (0..60).map(|_| rng.random_range(0..6)).collect();
    let v = Viterbi::new(hmm.clone(), obs.clone());
    let reference = v.solve_sequential();
    // Full-row process tiles (10 columns) as PrevRow2D requires.
    let out = EasyHps::new(Viterbi::new(hmm, obs))
        .process_partition((12, 10))
        .thread_partition((3, 10))
        .slaves(2)
        .threads_per_slave(2)
        .run()
        .unwrap();
    assert_eq!(out.matrix, reference);
}

#[test]
fn semi_global_on_runtime() {
    let reference_seq = random_sequence(Alphabet::Dna, 60, 95);
    let query = reference_seq[20..45].to_vec();
    assert_runtime_matches(easyhps_dp::SemiGlobal::dna(query, reference_seq), |e| {
        e.process_partition((9, 13))
            .thread_partition((4, 5))
            .slaves(2)
            .threads_per_slave(2)
    });
}

#[test]
fn longest_palindrome_on_runtime() {
    let s = random_sequence(Alphabet::Dna, 48, 96);
    assert_runtime_matches(easyhps_dp::LongestPalindrome::new(s), |e| {
        e.process_partition((12, 12))
            .thread_partition((4, 4))
            .slaves(3)
            .threads_per_slave(2)
    });
}

#[test]
fn zero_or_oversized_thread_partition_is_rejected() {
    let problem = || {
        EditDistance::new(
            random_sequence(Alphabet::Dna, 40, 97),
            random_sequence(Alphabet::Dna, 40, 98),
        )
    };
    // Zero thread partition: a clear error, not a hang or a panic.
    let err = EasyHps::new(problem())
        .process_partition((8, 8))
        .thread_partition((0, 4))
        .run()
        .unwrap_err();
    assert!(matches!(err, RuntimeError::InvalidConfig(_)), "got {err:?}");
    assert!(err.to_string().contains("thread_partition_size"), "{err}");

    // Zero process partition likewise.
    let err = EasyHps::new(problem())
        .process_partition((8, 0))
        .run()
        .unwrap_err();
    assert!(matches!(err, RuntimeError::InvalidConfig(_)));

    // A thread tile bigger than its process tile cannot partition it.
    let err = EasyHps::new(problem())
        .process_partition((8, 8))
        .thread_partition((9, 8))
        .run()
        .unwrap_err();
    assert!(matches!(err, RuntimeError::InvalidConfig(_)), "got {err:?}");

    // Non-dividing (ragged) sizes stay legal.
    assert_runtime_matches(problem(), |e| {
        e.process_partition((8, 8))
            .thread_partition((3, 3))
            .slaves(2)
            .threads_per_slave(2)
    });
}

#[test]
fn autotuned_run_matches_reference_and_persists_table() {
    let dir = std::env::temp_dir().join(format!("easyhps-autotune-e2e-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let table = dir.join("tuning.tbl");
    let problem = EditDistance::new(
        random_sequence(Alphabet::Dna, 120, 99),
        random_sequence(Alphabet::Dna, 120, 100),
    );
    let reference = problem.solve_sequential();

    // First run: tunes via the simulator, persists the table, computes
    // the right answer with the recommended partitions.
    let out = EasyHps::new(problem.clone())
        .autotune(&table)
        .metrics(true)
        .slaves(2)
        .threads_per_slave(2)
        .run()
        .unwrap();
    assert_eq!(out.matrix, reference);
    let text = std::fs::read_to_string(&table).expect("table persisted");
    assert!(text.starts_with("easyhps-autotune v1"), "{text}");
    assert!(text.contains("uniform:121x121:s2:t2"), "{text}");

    // Second run loads the same recommendation (table entry count stable).
    let out = EasyHps::new(problem)
        .autotune(&table)
        .slaves(2)
        .threads_per_slave(2)
        .run()
        .unwrap();
    assert_eq!(out.matrix, reference);
    let lines = std::fs::read_to_string(&table).unwrap().lines().count();
    assert_eq!(lines, 3, "header + cost + one entry");
    let _ = std::fs::remove_dir_all(&dir);
}
