//! Driving `run_master` / `run_slave` over a hand-built network: the
//! lower-level API a real deployment would use, plus a kill-switch chaos
//! drill (a node yanked from outside at an arbitrary moment, not via a
//! pre-planned fault).

use easyhps_dp::sequence::{random_sequence, Alphabet};
use easyhps_dp::{DpProblem, EditDistance};
use easyhps_net::Network;
use easyhps_runtime::{run_master, run_slave, Deployment};
use std::time::Duration;

fn model_for(p: &EditDistance) -> easyhps_core::DagDataDrivenModel {
    easyhps_core::DagDataDrivenModel::builder(p.pattern())
        .process_partition_size(easyhps_core::GridDims::square(8))
        .thread_partition_size(easyhps_core::GridDims::square(4))
        .build()
}

#[test]
fn manual_network_run_matches_sequential() {
    let a = random_sequence(Alphabet::Dna, 30, 90);
    let b = random_sequence(Alphabet::Dna, 30, 91);
    let problem = EditDistance::new(a, b);
    let reference = problem.solve_sequential();
    let model = model_for(&problem);
    let config = Deployment::local(2, 2);

    let mut eps = Network::new(3);
    let master_ep = eps.remove(0);
    let out = std::thread::scope(|s| {
        for ep in eps {
            let (p, m, c) = (&problem, &model, &config);
            s.spawn(move || {
                let _ = run_slave(ep, p, m, c);
            });
        }
        run_master(master_ep, &problem, &model, &config).unwrap()
    });
    assert_eq!(out.matrix, reference);
    assert!(out.checkpoint.is_none());
}

#[test]
fn external_kill_switch_mid_run_is_survived() {
    let a = random_sequence(Alphabet::Dna, 40, 92);
    let b = random_sequence(Alphabet::Dna, 40, 93);
    let problem = EditDistance::new(a, b);
    let reference = problem.solve_sequential();
    let model = model_for(&problem);
    let mut config = Deployment::local(3, 1);
    config.task_timeout = Duration::from_millis(250);

    let mut eps = Network::new(4);
    let master_ep = eps.remove(0);
    // Grab a kill handle for slave rank 2 before handing the endpoint off.
    let kill = eps[1].kill_handle();

    let out = std::thread::scope(|s| {
        for ep in eps {
            let (p, m, c) = (&problem, &model, &config);
            s.spawn(move || {
                let _ = run_slave(ep, p, m, c);
            });
        }
        // An operator (or chaos monkey) pulls the plug shortly after start.
        s.spawn(move || {
            std::thread::sleep(Duration::from_millis(20));
            kill.kill();
        });
        run_master(master_ep, &problem, &model, &config).unwrap()
    });
    assert_eq!(
        out.matrix, reference,
        "result exact despite the yanked node"
    );
    // Depending on timing the node may die before or after taking work;
    // either way nobody waits forever and the matrix is right.
    assert!(out.stats.dead_slaves <= 1);
}
