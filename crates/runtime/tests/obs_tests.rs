//! Observability integration: a full multilevel run must export a valid
//! Chrome trace (loadable in Perfetto) and a metrics snapshot whose
//! counters agree with the run report — including under message loss
//! (retransmit counters/events) and across checkpoint/resume (only the
//! re-dispatched tiles counted on the resumed run).

use easyhps_dp::sequence::{random_sequence, Alphabet};
use easyhps_dp::{DpProblem, EditDistance, SmithWatermanGeneralGap};
use easyhps_obs::{labeled, validate_chrome_trace};
use easyhps_runtime::{EasyHps, Registry};
use std::collections::BTreeSet;
use std::sync::Arc;
use std::time::Duration;

/// Per-test temp path so parallel tests never collide on the trace file.
fn trace_path(test: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("easyhps-obs-{test}-{}.json", std::process::id()))
}

#[test]
fn swgg_e2e_exports_trace_and_metrics() {
    let a = random_sequence(Alphabet::Dna, 40, 11);
    let b = random_sequence(Alphabet::Dna, 44, 12);
    let problem = SmithWatermanGeneralGap::dna(a, b);
    let reference = problem.solve_sequential();
    let path = trace_path("swgg-e2e");

    let out = EasyHps::new(problem)
        .process_partition((11, 12)) // 41x45 grid -> 4x4 = 16 tiles
        .thread_partition((4, 4))
        .slaves(2)
        .threads_per_slave(2)
        .lossy_network(0.10, 7)
        .heartbeat(Duration::from_millis(5), Duration::from_secs(5))
        .metrics(true)
        .trace_out(&path)
        .run()
        .unwrap();
    assert_eq!(
        out.matrix, reference,
        "instrumentation must not change results"
    );
    let m = &out.report.master;
    assert_eq!(m.completed, 16);

    // --- Metrics: the registry is the run's bookkeeping, so its counters
    // must agree with the report built from it.
    let snap = out
        .metrics
        .as_ref()
        .expect("metrics(true) returns a registry")
        .snapshot();
    assert_eq!(snap.counter("master_tiles_completed"), Some(m.completed));
    assert_eq!(snap.counter("master_tiles_dispatched"), Some(m.dispatched));
    assert_eq!(snap.counter("master_tiles_resumed"), Some(0));

    let hist = snap
        .histogram("master_tile_latency_ns")
        .expect("tile latency histogram registered");
    assert_eq!(
        hist.count, m.completed,
        "one latency sample per accepted DONE"
    );
    assert!(hist.p50 > 0 && hist.p95 >= hist.p50 && hist.max >= hist.p99);

    // A 10% lossy link must retransmit; master-side counter matches the
    // report and the per-role series sum to a nonzero workspace total.
    assert_eq!(
        snap.counter(&labeled("net_retransmits", &[("role", "master")])),
        Some(m.retransmits)
    );
    assert!(
        snap.counter_total("net_retransmits") > 0,
        "10% loss must retransmit"
    );

    // No slave stays dead; every exclusion (if any) was re-admitted.
    let excl = snap.counter("master_slave_exclusions").unwrap();
    let readm = snap.counter("master_slave_readmissions").unwrap();
    assert_eq!(excl, readm, "every excluded slave must be re-admitted");
    assert_eq!(snap.gauge("master_dead_slaves"), Some(0));

    // Slave-side series are labelled per slave and cover all tiles.
    assert_eq!(snap.counter_total("slave_tiles_done"), m.completed);
    assert!(snap.counter_total("slave_subtasks_done") >= m.completed);
    assert!(
        snap.counter_total("slave_heartbeats") > 0,
        "5ms cadence must tick"
    );

    // Text exposition carries the summary-typed histogram with quantiles.
    let text = snap.render_text();
    assert!(
        text.contains("# TYPE master_tile_latency_ns summary"),
        "{text}"
    );
    assert!(
        text.contains("master_tile_latency_ns{quantile=\"0.5\"}"),
        "{text}"
    );
    assert!(text.contains("net_retransmits{role=\"master\"}"), "{text}");

    // JSON exposition parses and groups by kind.
    let json = easyhps_obs::json::parse(&snap.render_json()).expect("snapshot JSON parses");
    assert!(json
        .get("counters")
        .and_then(|c| c.get("master_tiles_completed"))
        .is_some());
    assert!(json
        .get("histograms")
        .and_then(|h| h.get("master_tile_latency_ns"))
        .is_some());

    // --- Trace: the written file is a structurally valid Chrome trace
    // with the documented event vocabulary on master + both slave pids.
    let trace = std::fs::read_to_string(&path).expect("trace file written");
    let summary = validate_chrome_trace(&trace).expect("trace must validate");
    assert!(
        summary.pids >= 3,
        "master + 2 slaves, got {} pids",
        summary.pids
    );
    assert!(summary.count("dispatch") >= 16, "{:?}", summary.by_name);
    assert!(summary.count("compute") >= 16, "{:?}", summary.by_name);
    assert!(summary.count("done") >= 16, "{:?}", summary.by_name);
    assert_eq!(
        summary.count("tile") as u64,
        m.completed,
        "{:?}",
        summary.by_name
    );
    assert!(
        summary.count("sub") as u64 >= m.completed,
        "{:?}",
        summary.by_name
    );
    assert!(summary.count("retransmit") >= 1, "{:?}", summary.by_name);
    assert!(summary.count("heartbeat") >= 1, "{:?}", summary.by_name);

    // "compute" tile spans must come from at least two distinct slave
    // processes (pid = 1 + slave index; the master is pid 0).
    let doc = easyhps_obs::json::parse(&trace).unwrap();
    let events = doc.get("traceEvents").and_then(|v| v.as_array()).unwrap();
    let compute_pids: BTreeSet<u64> = events
        .iter()
        .filter(|e| e.get("name").and_then(|v| v.as_str()) == Some("compute"))
        .map(|e| e.get("pid").and_then(|v| v.as_f64()).unwrap() as u64)
        .collect();
    assert!(
        compute_pids.len() >= 2,
        "compute spans on one lane only: {compute_pids:?}"
    );
    assert!(
        !compute_pids.contains(&0),
        "the master never computes tiles"
    );

    std::fs::remove_file(&path).ok();
}

#[test]
fn resume_counts_only_redispatched_tiles() {
    let a = random_sequence(Alphabet::Dna, 50, 21);
    let b = random_sequence(Alphabet::Dna, 50, 22);
    let problem = EditDistance::new(a, b);
    let reference = problem.solve_sequential();

    // 51x51 grid in 11x11 tiles -> 5x5 = 25 sub-tasks; stop after 10.
    let first = EasyHps::new(problem.clone())
        .process_partition((11, 11))
        .thread_partition((4, 4))
        .slaves(2)
        .threads_per_slave(2)
        .tile_budget(10)
        .metrics(true)
        .run()
        .unwrap();
    let cp = first.checkpoint.expect("budget stop must checkpoint");
    let resumed_from = cp.finished_len() as u64;
    assert!(resumed_from >= 10);
    let snap = first.metrics.unwrap().snapshot();
    assert_eq!(snap.counter("master_checkpoints"), Some(1));
    assert_eq!(snap.counter("master_tiles_resumed"), Some(0));

    // The resumed run gets a fresh registry: it must report only the
    // tiles it actually re-dispatched, with the restored ones counted
    // separately under master_tiles_resumed.
    let second = EasyHps::new(problem)
        .process_partition((11, 11))
        .thread_partition((4, 4))
        .slaves(2)
        .threads_per_slave(2)
        .resume_from(cp)
        .metrics(true)
        .run()
        .unwrap();
    assert_eq!(second.matrix, reference);
    assert_eq!(
        second.report.master.completed, 25,
        "stats view folds resumed tiles in"
    );

    let snap = second.metrics.unwrap().snapshot();
    assert_eq!(snap.counter("master_tiles_resumed"), Some(resumed_from));
    assert_eq!(
        snap.counter("master_tiles_dispatched"),
        Some(25 - resumed_from)
    );
    assert_eq!(
        snap.counter("master_tiles_completed"),
        Some(25 - resumed_from)
    );
    assert_eq!(
        snap.histogram("master_tile_latency_ns").unwrap().count,
        25 - resumed_from,
        "restored tiles must not fabricate latency samples"
    );
    assert_eq!(snap.counter("master_checkpoints"), Some(0));
}

#[test]
fn metrics_disabled_returns_no_registry() {
    let problem = EditDistance::new(b"kitten".to_vec(), b"sitting".to_vec());
    let out = EasyHps::new(problem)
        .process_partition((3, 3))
        .thread_partition((2, 2))
        .slaves(2)
        .threads_per_slave(2)
        .run()
        .unwrap();
    assert!(out.metrics.is_none(), "metrics are strictly opt-in");
    assert_eq!(out.matrix.get(6, 7), 3);
}

#[test]
fn shared_registry_accumulates_across_runs() {
    let registry = Arc::new(Registry::new());
    for _ in 0..2 {
        let problem = EditDistance::new(b"kitten".to_vec(), b"sitting".to_vec());
        let out = EasyHps::new(problem)
            .process_partition((3, 3))
            .thread_partition((2, 2))
            .slaves(2)
            .threads_per_slave(2)
            .metrics_registry(registry.clone())
            .run()
            .unwrap();
        assert!(Arc::ptr_eq(out.metrics.as_ref().unwrap(), &registry));
    }
    // 7x8 grid in 3x3 tiles -> 3x3 = 9 sub-tasks per run, two runs.
    let snap = registry.snapshot();
    assert_eq!(snap.counter("master_tiles_completed"), Some(18));
    assert_eq!(snap.histogram("master_tile_latency_ns").unwrap().count, 18);
}
