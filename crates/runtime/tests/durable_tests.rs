//! End-to-end drills of durable incremental checkpointing: a hard master
//! kill mid-run must be recoverable from the on-disk segments alone, with
//! the final matrix bit-identical to the sequential reference.

use easyhps_dp::sequence::{random_sequence, Alphabet};
use easyhps_dp::{DpProblem, EditDistance};
use easyhps_net::FaultPlan;
use easyhps_runtime::{Checkpoint, CheckpointPolicy, EasyHps, RuntimeError};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

fn tmp_dir(tag: &str) -> PathBuf {
    static NONCE: AtomicU64 = AtomicU64::new(0);
    let n = NONCE.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!(
        "easyhps-durable-e2e-{tag}-{}-{n}",
        std::process::id()
    ))
}

fn problem() -> EditDistance {
    let a = random_sequence(Alphabet::Dna, 50, 31);
    let b = random_sequence(Alphabet::Dna, 50, 32);
    EditDistance::new(a, b)
}

fn builder(p: EditDistance) -> EasyHps<EditDistance> {
    // 51x51 matrix in 11x11 tiles -> 5x5 = 25 sub-tasks.
    EasyHps::new(p)
        .process_partition((11, 11))
        .thread_partition((4, 4))
        .slaves(2)
        .threads_per_slave(2)
}

/// The tentpole invariant: kill the master's endpoint mid-run (its sends
/// start failing after a budget, exactly like a process kill as seen from
/// the network), then restart from the checkpoint *directory* — not from
/// any in-memory state — and the final matrix is bit-identical to the
/// sequential reference, with the restored tiles accounted.
#[test]
fn hard_master_kill_resumes_from_disk_bit_identical() {
    let dir = tmp_dir("kill");
    let p = problem();
    let reference = p.solve_sequential();

    // 25 tiles need >= 25 ASSIGN sends plus >= 25 DONE acks to finish; a
    // 40-send budget on the master endpoint guarantees death mid-run.
    let crashed = builder(p.clone())
        .checkpoint(CheckpointPolicy::new(&dir).with_every_tiles(1))
        .inject_master_fault(FaultPlan::die_after(40))
        .run();
    assert!(crashed.is_err(), "the master cannot finish on 40 sends");

    let cp = Checkpoint::load_dir(&dir)
        .expect("directory is readable")
        .expect("the run flushed segments before dying");
    let restored = cp.finished_len() as u64;
    assert!(restored > 0, "some accepted tiles were durable");

    let out = builder(p)
        .checkpoint(CheckpointPolicy::new(&dir).with_every_tiles(1))
        .resume_from(cp)
        .metrics(true)
        .run()
        .expect("resumed run completes");
    assert_eq!(out.matrix, reference, "bit-identical after kill + resume");

    let m = &out.report.master;
    assert_eq!(m.resumed, restored);
    assert_eq!(
        m.dispatched,
        m.completed + m.redispatched - m.resumed,
        "conservation: every non-resumed completion was dispatched"
    );
    let snap = out.metrics.unwrap().snapshot();
    assert_eq!(snap.counter("master_tiles_restored"), Some(restored));
    assert!(snap.counter("checkpoint_bytes").unwrap_or(0) > 0);

    std::fs::remove_dir_all(&dir).ok();
}

/// A graceful budget stop flushes everything it accepted at teardown: the
/// directory alone can resume the run, no in-memory checkpoint needed.
#[test]
fn budget_stop_leaves_a_resumable_directory() {
    let dir = tmp_dir("budget");
    let p = problem();
    let reference = p.solve_sequential();

    let partial = builder(p.clone())
        .checkpoint(CheckpointPolicy::new(&dir))
        .tile_budget(10)
        .run()
        .expect("budget stop is a clean exit");
    let in_memory = partial.checkpoint.expect("budget stop checkpoints");

    let cp = Checkpoint::load_dir(&dir).unwrap().expect("store exists");
    assert_eq!(
        cp.finished_len(),
        in_memory.finished_len(),
        "teardown flush covers every accepted tile"
    );

    let out = builder(p)
        .checkpoint(CheckpointPolicy::new(&dir))
        .resume_from(cp)
        .run()
        .expect("resumed run completes");
    assert_eq!(out.matrix, reference);

    std::fs::remove_dir_all(&dir).ok();
}

/// Pointing a *fresh* run at a directory holding prior progress is a
/// configuration error, not silent interleaving of two runs.
#[test]
fn dirty_directory_without_resume_is_refused() {
    let dir = tmp_dir("dirty");
    let p = problem();

    builder(p.clone())
        .checkpoint(CheckpointPolicy::new(&dir))
        .tile_budget(5)
        .run()
        .expect("first run");

    let err = builder(p)
        .checkpoint(CheckpointPolicy::new(&dir))
        .run()
        .expect_err("unresumed dirty directory is refused");
    assert!(matches!(err, RuntimeError::Checkpoint(_)), "{err}");
    // The refusal must name the offending directory and suggest both
    // ways out: resume the prior run, or pick a fresh directory.
    let msg = err.to_string();
    assert!(
        msg.contains(dir.to_str().unwrap()),
        "refusal must name the directory: {msg}"
    );
    assert!(
        msg.contains("--resume"),
        "refusal must suggest --resume: {msg}"
    );
    assert!(
        msg.contains("--checkpoint-dir"),
        "refusal must suggest a fresh --checkpoint-dir: {msg}"
    );

    std::fs::remove_dir_all(&dir).ok();
}

/// Interval-based capture: with the tile trigger off, progress still
/// reaches disk on the clock.
#[test]
fn interval_trigger_flushes_without_tile_threshold() {
    let dir = tmp_dir("interval");
    let p = problem();
    let reference = p.solve_sequential();

    let out = builder(p)
        .checkpoint(
            CheckpointPolicy::new(&dir)
                .with_every_tiles(0)
                .with_interval(std::time::Duration::from_millis(1)),
        )
        .run()
        .expect("run completes");
    assert_eq!(out.matrix, reference);

    let cp = Checkpoint::load_dir(&dir).unwrap().expect("store exists");
    assert_eq!(cp.finished_len(), 25, "final flush covers the whole run");

    std::fs::remove_dir_all(&dir).ok();
}
