//! Property-based tests for the runtime: the shared grid's concurrent
//! slice access (disjoint row-band writers hammering `TaskView::write_row`
//! from many threads must produce exactly the matrix a sequential fill
//! would), plus decoder robustness — every truncation of a checkpoint
//! blob or protocol message must fail with a clean `WireError`, never a
//! panic or a hostile-length allocation.

use easyhps_core::{GridDims, GridPos, TileRegion};
use easyhps_dp::DpGrid;
use easyhps_runtime::{AssignMsg, Checkpoint, DoneMsg, SharedGrid, SlaveStatsMsg};
use proptest::prelude::*;

/// The value every writer stores at `(row, col)` — distinct per cell so a
/// misdirected write is always visible.
fn expected(row: u32, col: u32, salt: i64) -> i64 {
    ((row as i64) << 32) ^ (col as i64) ^ salt
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// N threads, each owning a disjoint band of rows, write their band
    /// through bulk `write_row` (in several chunks per row), re-read it
    /// through `row_slice`, and the collected matrix is exact.
    #[test]
    fn disjoint_row_slice_writers_are_exact(
        rows in 1u32..60, cols in 1u32..60,
        writers in 1usize..8, chunk in 1u32..17,
        salt in 0i64..1000,
    ) {
        let dims = GridDims::new(rows, cols);
        let mut grid = SharedGrid::<i64>::new(dims);
        let writers = writers.min(rows as usize);
        let band = rows.div_ceil(writers as u32);
        std::thread::scope(|scope| {
            for w in 0..writers as u32 {
                let r0 = w * band;
                let r1 = ((w + 1) * band).min(rows);
                if r0 >= r1 {
                    continue;
                }
                let region = TileRegion::new(r0, r1, 0, cols);
                // SAFETY: the bands [r0, r1) partition the row range, so
                // no two views overlap — the same disjointness the DAG
                // scheduler guarantees for concurrent sub-tasks.
                let mut view = unsafe { grid.task_view(region) };
                scope.spawn(move || {
                    let mut buf = vec![0i64; chunk as usize];
                    for row in r0..r1 {
                        let mut c = 0;
                        while c < cols {
                            let end = (c + chunk).min(cols);
                            let n = (end - c) as usize;
                            for (k, slot) in buf[..n].iter_mut().enumerate() {
                                *slot = expected(row, c + k as u32, salt);
                            }
                            view.write_row(row, c, &buf[..n]);
                            c = end;
                        }
                        // Re-read through the bulk accessor: a writer must
                        // observe its own finalized row.
                        let got = view.row_slice(row, 0, cols).expect("own row is contiguous");
                        for (k, &v) in got.iter().enumerate() {
                            assert_eq!(v, expected(row, k as u32, salt), "row {row} col {k}");
                        }
                    }
                });
            }
        });
        let m = grid.to_matrix();
        for p in dims.iter() {
            prop_assert_eq!(m.at(p), expected(p.row, p.col, salt), "cell {}", p);
        }
    }
}

/// A real checkpoint blob with `tiles` finished tiles, produced the same
/// way the master produces one.
fn valid_checkpoint_blob(tiles: usize) -> Vec<u8> {
    use easyhps_core::{DagDataDrivenModel, DagParser, PatternKind};
    use easyhps_dp::{DpMatrix, DpProblem, EditDistance};

    let p = EditDistance::new(b"checkpointing".to_vec(), b"checkpoints".to_vec());
    let model = DagDataDrivenModel::from_library(
        PatternKind::Wavefront2D,
        p.dims(),
        GridDims::square(4),
        GridDims::square(2),
    );
    let dag = model.master_dag();
    let mut m = DpMatrix::<i32>::new(p.dims());
    let mut parser = DagParser::new(&dag);
    let mut done = Vec::new();
    for _ in 0..tiles {
        let v = parser.pop_computable().expect("enough tiles");
        p.compute_region(&mut m, model.tile_region(dag.vertex(v).pos));
        parser.complete(&dag, v, None).unwrap();
        done.push(v);
    }
    Checkpoint::capture(&model, &dag, &m, done).to_bytes()
}

fn arb_assign() -> impl Strategy<Value = AssignMsg> {
    (
        any::<u32>(),
        any::<u64>(),
        (0u32..100, 0u32..100),
        proptest::collection::vec(
            (
                (0u32..50, 0u32..50),
                proptest::collection::vec(any::<u8>(), 0..60),
            ),
            0..4,
        ),
    )
        .prop_map(|(task, epoch, (tr, tc), inputs)| AssignMsg {
            task,
            epoch,
            tile: GridPos::new(tr, tc),
            region: TileRegion::new(tr, tr + 2, tc, tc + 2),
            inputs: inputs
                .into_iter()
                .map(|((r, c), bytes)| (TileRegion::new(r, r + 1, c, c + 1), bytes))
                .collect(),
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Every byte-length prefix of a valid checkpoint blob fails decode
    /// cleanly: no panic, no hostile-length allocation, no silent
    /// part-read (the full blob is the only prefix that parses).
    #[test]
    fn every_checkpoint_prefix_fails_cleanly(tiles in 0usize..6) {
        let blob = valid_checkpoint_blob(tiles);
        prop_assert!(Checkpoint::from_bytes(&blob).is_ok());
        for cut in 0..blob.len() {
            prop_assert!(
                Checkpoint::from_bytes(&blob[..cut]).is_err(),
                "prefix of {cut}/{} bytes must not decode",
                blob.len()
            );
        }
    }

    /// Same for every wire message type the protocol exchanges.
    #[test]
    fn every_assign_prefix_fails_cleanly(msg in arb_assign()) {
        let buf = msg.encode();
        prop_assert_eq!(&AssignMsg::decode(&buf).unwrap(), &msg);
        for cut in 0..buf.len() {
            prop_assert!(AssignMsg::decode(&buf[..cut]).is_err(), "prefix {cut}");
        }
    }

    #[test]
    fn every_done_prefix_fails_cleanly(
        task in any::<u32>(),
        epoch in any::<u64>(),
        output in proptest::collection::vec(any::<u8>(), 0..120),
    ) {
        let msg = DoneMsg { task, epoch, region: TileRegion::new(0, 2, 0, 2), output };
        let buf = msg.encode();
        prop_assert_eq!(&DoneMsg::decode(&buf).unwrap(), &msg);
        for cut in 0..buf.len() {
            prop_assert!(DoneMsg::decode(&buf[..cut]).is_err(), "prefix {cut}");
        }
    }

    #[test]
    fn every_stats_prefix_fails_cleanly(vals in proptest::collection::vec(any::<u64>(), 6)) {
        let msg = SlaveStatsMsg {
            tasks_done: vals[0],
            subtasks_done: vals[1],
            busy_ns: vals[2],
            thread_failures: vals[3],
            peak_node_bytes: vals[4],
            threads_spawned: vals[5],
        };
        let buf = msg.encode();
        prop_assert_eq!(SlaveStatsMsg::decode(&buf).unwrap(), msg);
        for cut in 0..buf.len() {
            prop_assert!(SlaveStatsMsg::decode(&buf[..cut]).is_err(), "prefix {cut}");
        }
    }

    /// Arbitrary bytes through every decoder: errors are fine, panics and
    /// runaway allocations are not.
    #[test]
    fn random_bytes_never_panic_any_decoder(
        data in proptest::collection::vec(any::<u8>(), 0..400),
    ) {
        let _ = Checkpoint::from_bytes(&data);
        let _ = AssignMsg::decode(&data);
        let _ = DoneMsg::decode(&data);
        let _ = SlaveStatsMsg::decode(&data);
    }
}

/// Regression for the pre-allocation guard: an ASSIGN header claiming
/// `u32::MAX` inputs must be rejected before the allocation it sizes.
#[test]
fn assign_hostile_input_count_is_rejected() {
    use easyhps_net::WireWriter;
    let mut w = WireWriter::new();
    w.put_u32(7); // task
    w.put_u64(1); // epoch
    w.put_u32(0).put_u32(0); // tile
    w.put_u32(0).put_u32(2).put_u32(0).put_u32(2); // region
    w.put_u32(u32::MAX); // input count
    let err = AssignMsg::decode(&w.finish()).expect_err("hostile count");
    assert!(err.to_string().contains("input count"), "{err}");
}
