//! Property-based tests for the shared grid's concurrent slice access:
//! disjoint row-band writers hammering `TaskView::write_row` from many
//! threads must produce exactly the matrix a sequential fill would.

use easyhps_core::{GridDims, TileRegion};
use easyhps_dp::DpGrid;
use easyhps_runtime::SharedGrid;
use proptest::prelude::*;

/// The value every writer stores at `(row, col)` — distinct per cell so a
/// misdirected write is always visible.
fn expected(row: u32, col: u32, salt: i64) -> i64 {
    ((row as i64) << 32) ^ (col as i64) ^ salt
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// N threads, each owning a disjoint band of rows, write their band
    /// through bulk `write_row` (in several chunks per row), re-read it
    /// through `row_slice`, and the collected matrix is exact.
    #[test]
    fn disjoint_row_slice_writers_are_exact(
        rows in 1u32..60, cols in 1u32..60,
        writers in 1usize..8, chunk in 1u32..17,
        salt in 0i64..1000,
    ) {
        let dims = GridDims::new(rows, cols);
        let mut grid = SharedGrid::<i64>::new(dims);
        let writers = writers.min(rows as usize);
        let band = rows.div_ceil(writers as u32);
        std::thread::scope(|scope| {
            for w in 0..writers as u32 {
                let r0 = w * band;
                let r1 = ((w + 1) * band).min(rows);
                if r0 >= r1 {
                    continue;
                }
                let region = TileRegion::new(r0, r1, 0, cols);
                // SAFETY: the bands [r0, r1) partition the row range, so
                // no two views overlap — the same disjointness the DAG
                // scheduler guarantees for concurrent sub-tasks.
                let mut view = unsafe { grid.task_view(region) };
                scope.spawn(move || {
                    let mut buf = vec![0i64; chunk as usize];
                    for row in r0..r1 {
                        let mut c = 0;
                        while c < cols {
                            let end = (c + chunk).min(cols);
                            let n = (end - c) as usize;
                            for (k, slot) in buf[..n].iter_mut().enumerate() {
                                *slot = expected(row, c + k as u32, salt);
                            }
                            view.write_row(row, c, &buf[..n]);
                            c = end;
                        }
                        // Re-read through the bulk accessor: a writer must
                        // observe its own finalized row.
                        let got = view.row_slice(row, 0, cols).expect("own row is contiguous");
                        for (k, &v) in got.iter().enumerate() {
                            assert_eq!(v, expected(row, k as u32, salt), "row {row} col {k}");
                        }
                    }
                });
            }
        });
        let m = grid.to_matrix();
        for p in dims.iter() {
            prop_assert_eq!(m.at(p), expected(p.row, p.col, salt), "cell {}", p);
        }
    }
}
