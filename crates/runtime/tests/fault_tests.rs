//! Fault-path drills: lossy-network survival end-to-end, and regression
//! tests for the scheduler's single-drop failure modes (static-mode
//! livelock, dispatch-failure bookkeeping, the teardown stats race, and
//! checkpoint loss of in-flight completions on a budget stop).
//!
//! The hand-driven tests speak the wire protocol through a
//! [`ReliableEndpoint`] directly, playing a slave that is slow, silent or
//! gone at exactly the wrong moment.

use bytes::Bytes;
use easyhps_dp::sequence::{random_sequence, Alphabet};
use easyhps_dp::{DpMatrix, DpProblem, EditDistance, Nussinov, SmithWatermanGeneralGap};
use easyhps_net::{FaultPlan, NetError, Network, Rank, ReliableEndpoint, RetryPolicy};
use easyhps_runtime::{
    run_master, run_master_with, run_slave, tags, AssignMsg, Deployment, DoneMsg, EasyHps,
    ScheduleMode, SlaveStatsMsg,
};
use std::time::{Duration, Instant};

// ---------------------------------------------------------------------
// Tentpole: full runs complete bit-identically under uniform message loss.
// ---------------------------------------------------------------------

/// Run `problem` with 4 slaves under `p` uniform drop on every link
/// (master included) and check the matrix is bit-identical to the
/// sequential reference, with no slave permanently excluded.
fn assert_lossy_run_is_exact<P: DpProblem + Clone>(problem: P, p: f64, seed: u64) {
    let reference = problem.solve_sequential();
    let pattern = problem.pattern();
    let out = EasyHps::new(problem)
        .process_partition((10, 10))
        .thread_partition((4, 4))
        .slaves(4)
        .threads_per_slave(2)
        .lossy_network(p, seed)
        .run()
        .unwrap_or_else(|e| panic!("run must survive {p} drop: {e}"));
    for pos in reference.dims().iter() {
        if pattern.contains(pos) {
            assert_eq!(
                out.matrix.at(pos),
                reference.at(pos),
                "cell {pos} at drop rate {p}"
            );
        }
    }
    let m = &out.report.master;
    assert_eq!(
        m.dead_slaves, 0,
        "no live slave permanently excluded at {p}"
    );
    assert_eq!(m.completed, m.dispatched, "every dispatch completed at {p}");
    assert_eq!(m.redispatched, 0, "no timeout-driven redispatch at {p}");
    assert_eq!(
        m.stale_completions, 0,
        "dedup upstream: no stale DONEs at {p}"
    );
    assert_eq!(m.send_failures, 0, "retry pushed every send through at {p}");
    for (i, s) in out.report.slaves.iter().enumerate() {
        assert!(s.is_some(), "slave {i} reported stats at drop rate {p}");
    }
}

#[test]
fn swgg_survives_5_percent_drop() {
    let a = random_sequence(Alphabet::Dna, 40, 101);
    let b = random_sequence(Alphabet::Dna, 44, 102);
    assert_lossy_run_is_exact(SmithWatermanGeneralGap::dna(a, b), 0.05, 1);
}

#[test]
fn swgg_survives_10_percent_drop() {
    let a = random_sequence(Alphabet::Dna, 40, 103);
    let b = random_sequence(Alphabet::Dna, 44, 104);
    assert_lossy_run_is_exact(SmithWatermanGeneralGap::dna(a, b), 0.1, 2);
}

#[test]
fn swgg_survives_20_percent_drop() {
    let a = random_sequence(Alphabet::Dna, 40, 105);
    let b = random_sequence(Alphabet::Dna, 44, 106);
    assert_lossy_run_is_exact(SmithWatermanGeneralGap::dna(a, b), 0.2, 3);
}

#[test]
fn nussinov_survives_5_percent_drop() {
    let rna = random_sequence(Alphabet::Rna, 48, 107);
    assert_lossy_run_is_exact(Nussinov::new(rna), 0.05, 4);
}

/// Acceptance drill for the CRC-guarded framing: every link (master
/// included) flips one bit in ~1% of its outgoing frames. The run must
/// complete bit-identical to the sequential reference, the receivers
/// must have actually *caught* corrupt frames (so the pass is not
/// vacuous), and no decoder error surfaces as a run failure — corrupt
/// frames are dropped and recovered by retransmission.
#[test]
fn swgg_survives_1_percent_bitflips_bit_identical() {
    let a = random_sequence(Alphabet::Dna, 40, 109);
    let b = random_sequence(Alphabet::Dna, 44, 110);
    let problem = SmithWatermanGeneralGap::dna(a, b);
    let reference = problem.solve_sequential();
    let pattern = problem.pattern();
    let mut hps = EasyHps::new(problem)
        .process_partition((10, 10))
        .thread_partition((4, 4))
        .slaves(4)
        .threads_per_slave(2)
        .metrics(true);
    for rank in 0..5u64 {
        let fp = FaultPlan {
            seed: 0x5eed ^ rank,
            ..FaultPlan::default()
        }
        .with_bitflips(0.01);
        hps = if rank == 0 {
            hps.inject_master_fault(fp)
        } else {
            hps.inject_fault(rank as usize - 1, fp)
        };
    }
    let out = hps.run().expect("corrupting links are survivable");
    for pos in reference.dims().iter() {
        if pattern.contains(pos) {
            assert_eq!(out.matrix.at(pos), reference.at(pos), "cell {pos}");
        }
    }
    let snap = out.metrics.unwrap().snapshot();
    let injected = snap.counter_total("net_msgs_corrupted");
    let caught = snap.counter_total("net_frames_corrupt");
    assert!(injected > 0, "the plan actually flipped frames");
    assert!(
        caught > 0,
        "the CRC check caught corrupt frames ({injected} injected)"
    );
    assert_eq!(
        out.report.master.send_failures, 0,
        "retransmit pushed every corrupted message through"
    );
}

#[test]
fn nussinov_survives_10_percent_drop() {
    let rna = random_sequence(Alphabet::Rna, 48, 108);
    assert_lossy_run_is_exact(Nussinov::new(rna), 0.1, 5);
}

#[test]
fn nussinov_survives_20_percent_drop() {
    let rna = random_sequence(Alphabet::Rna, 48, 109);
    assert_lossy_run_is_exact(Nussinov::new(rna), 0.2, 6);
}

#[test]
fn heavy_loss_forces_retransmits_and_counters_stay_consistent() {
    // At 20% drop the reliability layer must visibly work (retransmits on
    // the master link), and the loss must stay invisible to scheduling.
    let a = random_sequence(Alphabet::Dna, 36, 110);
    let b = random_sequence(Alphabet::Dna, 36, 111);
    let problem = EditDistance::new(a, b);
    let reference = problem.solve_sequential();
    let out = EasyHps::new(problem)
        .process_partition((8, 8))
        .thread_partition((3, 3))
        .slaves(4)
        .threads_per_slave(2)
        .lossy_network(0.2, 42)
        .run()
        .unwrap();
    assert_eq!(out.matrix, reference);
    let m = &out.report.master;
    // 37x37 grid in 8x8 tiles -> 5x5 = 25 sub-tasks, each exactly once.
    assert_eq!(m.completed, 25);
    assert_eq!(m.dispatched, 25);
    assert!(
        m.retransmits > 0,
        "a 20% lossy master link must retransmit something"
    );
    assert_eq!(m.dead_slaves, 0);
    assert_eq!(out.report.trace.spans.len() as u64, m.completed);
}

// ---------------------------------------------------------------------
// Satellite: static-mode livelock on an excluded slave's tiles.
// ---------------------------------------------------------------------

#[test]
fn static_mode_survives_slave_death_via_orphan_fallback() {
    // Under BlockCyclic every tile has a static owner. When slave 0 dies,
    // its tiles are orphaned: without the dynamic fallback the master
    // spins forever (parser not done, no dispatchable task -> livelock,
    // this test hangs on the pre-fix scheduler).
    let a = random_sequence(Alphabet::Dna, 30, 120);
    let b = random_sequence(Alphabet::Dna, 30, 121);
    let problem = EditDistance::new(a, b);
    let reference = problem.solve_sequential();
    let out = EasyHps::new(problem)
        .process_partition((6, 6))
        .thread_partition((3, 3))
        .slaves(3)
        .threads_per_slave(2)
        .process_mode(ScheduleMode::BlockCyclic { block: 1 })
        .task_timeout(Duration::from_millis(300))
        .inject_fault(0, FaultPlan::die_after(3))
        .run()
        .expect("orphaned static tiles must fall back to dynamic dispatch");
    assert_eq!(out.matrix, reference);
    assert_eq!(out.report.master.dead_slaves, 1);
}

#[test]
fn column_wavefront_survives_slave_death_too() {
    let rna = random_sequence(Alphabet::Rna, 40, 122);
    let problem = Nussinov::new(rna);
    let reference = problem.solve_sequential();
    let pattern = problem.pattern();
    let out = EasyHps::new(problem)
        .process_partition((8, 8))
        .thread_partition((4, 4))
        .slaves(3)
        .threads_per_slave(2)
        .process_mode(ScheduleMode::ColumnWavefront)
        .task_timeout(Duration::from_millis(300))
        .inject_fault(1, FaultPlan::die_after(4))
        .run()
        .expect("column-wavefront orphans must be redistributable");
    for pos in reference.dims().iter() {
        if pattern.contains(pos) {
            assert_eq!(out.matrix.at(pos), reference.at(pos), "cell {pos}");
        }
    }
}

// ---------------------------------------------------------------------
// Satellite: dispatch-failure bookkeeping (no phantom dispatches).
// ---------------------------------------------------------------------

#[test]
fn failed_assign_send_is_not_counted_as_a_dispatch() {
    // Rank 1 announces idle and vanishes before the master starts: the
    // very first ASSIGN to it fails at the transport. That failed send
    // must not inflate `dispatched` or leave a stale trace start (on the
    // pre-fix master, dispatched > completed here).
    let a = random_sequence(Alphabet::Dna, 30, 130);
    let b = random_sequence(Alphabet::Dna, 30, 131);
    let problem = EditDistance::new(a, b);
    let reference = problem.solve_sequential();
    let model = easyhps_core::DagDataDrivenModel::builder(problem.pattern())
        .process_partition_size(easyhps_core::GridDims::square(8))
        .thread_partition_size(easyhps_core::GridDims::square(4))
        .build();
    let config = Deployment::local(2, 2);

    let mut eps = Network::new(3);
    let ep2 = eps.pop().unwrap();
    let ep1 = eps.pop().unwrap();
    let master_ep = eps.pop().unwrap();

    // The ghost slave: one reliable IDLE, then its endpoint is dropped
    // (deterministically, before the master runs).
    {
        let mut ghost = ReliableEndpoint::new(ep1, RetryPolicy::default());
        ghost
            .send_reliable(Rank(0), tags::IDLE, Bytes::new())
            .unwrap();
    }

    let out = std::thread::scope(|s| {
        let (p, m, c) = (&problem, &model, &config);
        s.spawn(move || {
            let _ = run_slave(ep2, p, m, c);
        });
        run_master(master_ep, &problem, &model, &config).unwrap()
    });

    assert_eq!(out.matrix, reference);
    // 31x31 in 8x8 tiles -> 16 sub-tasks, all done by the real slave.
    assert_eq!(out.stats.completed, 16);
    assert_eq!(
        out.stats.dispatched, out.stats.completed,
        "a failed ASSIGN send is not a dispatch"
    );
    assert_eq!(out.stats.redispatched, 0, "the task was never in flight");
    assert!(out.stats.send_failures >= 1, "the failed send is accounted");
    assert_eq!(out.stats.dead_slaves, 1);
    assert_eq!(
        out.trace.spans.len() as u64,
        out.stats.completed,
        "no stale trace start from the failed send"
    );
    assert!(out.slave_stats[0].is_none());
    assert!(out.slave_stats[1].is_some());
}

// ---------------------------------------------------------------------
// Satellite: teardown stats race (dead-marked but alive slave).
// ---------------------------------------------------------------------

#[test]
fn stats_from_excluded_slave_do_not_satisfy_a_live_slaves_slot() {
    // Slave A takes a task and goes silent long enough to be excluded,
    // then wakes and answers END immediately. Slave B does all the work
    // but delays its STATS. On the pre-fix master, A's STATS decremented
    // `expected` (which only counted B) and teardown returned without B's
    // stats.
    let problem = EditDistance::new(
        random_sequence(Alphabet::Dna, 20, 140),
        random_sequence(Alphabet::Dna, 20, 141),
    );
    let model = easyhps_core::DagDataDrivenModel::builder(problem.pattern())
        .process_partition_size(easyhps_core::GridDims::square(8))
        .thread_partition_size(easyhps_core::GridDims::square(4))
        .build();
    let dims = model.dag_size();
    let mut config = Deployment::local(2, 1);
    config.task_timeout = Duration::from_millis(150);
    config.ft_poll = Duration::from_millis(10);
    config.heartbeat_timeout = Duration::from_millis(100);

    let mut eps = Network::new(3);
    let ep_b = eps.pop().unwrap();
    let ep_a = eps.pop().unwrap();
    let master_ep = eps.pop().unwrap();

    let mut rep_a = ReliableEndpoint::new(ep_a, RetryPolicy::default());
    let mut rep_b = ReliableEndpoint::new(ep_b, RetryPolicy::default());
    rep_a
        .send_reliable(Rank(0), tags::IDLE, Bytes::new())
        .unwrap();
    rep_b
        .send_reliable(Rank(0), tags::IDLE, Bytes::new())
        .unwrap();

    let out = std::thread::scope(|s| {
        // A: take one ASSIGN (acked by the receive path), play dead past
        // task_timeout + heartbeat_timeout, then answer END instantly.
        s.spawn(move || loop {
            match rep_a.recv_timeout(Duration::from_millis(20)) {
                Ok(env) if env.tag == tags::ASSIGN => {
                    std::thread::sleep(Duration::from_millis(350));
                }
                Ok(env) if env.tag == tags::END => {
                    rep_a
                        .send_reliable(Rank(0), tags::STATS, SlaveStatsMsg::default().encode())
                        .unwrap();
                    rep_a.drain_pending(Duration::from_secs(1));
                    return;
                }
                Ok(_) | Err(NetError::Timeout) => {}
                Err(_) => return,
            }
        });
        // B: answer every ASSIGN instantly (zero-filled regions — this
        // test is about teardown accounting, not matrix values), heartbeat
        // while idle, and hold the STATS back after END.
        s.spawn(move || {
            let zeros = DpMatrix::<i32>::new(dims);
            let mut last_hb = Instant::now();
            loop {
                if last_hb.elapsed() >= Duration::from_millis(20) {
                    let _ = rep_b.send_unreliable(Rank(0), tags::HEARTBEAT, Bytes::new());
                    last_hb = Instant::now();
                }
                match rep_b.recv_timeout(Duration::from_millis(15)) {
                    Ok(env) if env.tag == tags::ASSIGN => {
                        let msg = AssignMsg::decode(&env.payload).unwrap();
                        let done = DoneMsg {
                            task: msg.task,
                            epoch: msg.epoch,
                            region: msg.region,
                            output: zeros.encode_region(msg.region),
                        };
                        rep_b
                            .send_reliable(Rank(0), tags::DONE, done.encode())
                            .unwrap();
                    }
                    Ok(env) if env.tag == tags::END => {
                        std::thread::sleep(Duration::from_millis(500));
                        rep_b
                            .send_reliable(Rank(0), tags::STATS, SlaveStatsMsg::default().encode())
                            .unwrap();
                        rep_b.drain_pending(Duration::from_secs(1));
                        return;
                    }
                    Ok(_) | Err(NetError::Timeout) => {}
                    Err(_) => return,
                }
            }
        });
        run_master(master_ep, &problem, &model, &config).unwrap()
    });

    assert_eq!(out.stats.dead_slaves, 1, "A was excluded as silent");
    assert!(
        out.slave_stats[1].is_some(),
        "the live slave's stats must be awaited even after the excluded \
         slave's STATS arrives"
    );
    assert!(
        out.slave_stats[0].is_some(),
        "the excluded slave's stats are still recorded"
    );
}

// ---------------------------------------------------------------------
// Satellite: in-flight DONEs are drained into the checkpoint on a budget
// stop.
// ---------------------------------------------------------------------

#[test]
fn budget_stop_drains_in_flight_completions_into_the_checkpoint() {
    // Two slaves each take one of Nussinov's initially computable
    // diagonal tiles; the budget is 1. The first DONE reaches the budget;
    // the second arrives during teardown and must land in the matrix and
    // checkpoint instead of being discarded (pre-fix: finished_len == 1
    // and the tile is recomputed on resume).
    let problem = Nussinov::new(random_sequence(Alphabet::Rna, 40, 150));
    let model = easyhps_core::DagDataDrivenModel::builder(problem.pattern())
        .process_partition_size(easyhps_core::GridDims::square(10))
        .thread_partition_size(easyhps_core::GridDims::square(4))
        .build();
    let dims = model.dag_size();
    let config = Deployment::local(2, 1);

    let mut eps = Network::new(3);
    let ep_b = eps.pop().unwrap();
    let ep_a = eps.pop().unwrap();
    let master_ep = eps.pop().unwrap();

    let mut rep_a = ReliableEndpoint::new(ep_a, RetryPolicy::default());
    let mut rep_b = ReliableEndpoint::new(ep_b, RetryPolicy::default());
    // Both IDLEs are queued before the master starts, so both slaves get
    // an assignment before the first completion can reach the budget.
    rep_a
        .send_reliable(Rank(0), tags::IDLE, Bytes::new())
        .unwrap();
    rep_b
        .send_reliable(Rank(0), tags::IDLE, Bytes::new())
        .unwrap();

    let serve = move |mut rep: ReliableEndpoint| {
        let zeros = DpMatrix::<i32>::new(dims);
        loop {
            match rep.recv_timeout(Duration::from_millis(20)) {
                Ok(env) if env.tag == tags::ASSIGN => {
                    let msg = AssignMsg::decode(&env.payload).unwrap();
                    let done = DoneMsg {
                        task: msg.task,
                        epoch: msg.epoch,
                        region: msg.region,
                        output: zeros.encode_region(msg.region),
                    };
                    rep.send_reliable(Rank(0), tags::DONE, done.encode())
                        .unwrap();
                }
                Ok(env) if env.tag == tags::END => {
                    rep.send_reliable(Rank(0), tags::STATS, SlaveStatsMsg::default().encode())
                        .unwrap();
                    rep.drain_pending(Duration::from_secs(1));
                    return;
                }
                Ok(_) | Err(NetError::Timeout) => {}
                Err(_) => return,
            }
        }
    };

    let out = std::thread::scope(|s| {
        s.spawn(move || serve(rep_a));
        s.spawn(move || serve(rep_b));
        run_master_with(master_ep, &problem, &model, &config, None, Some(1)).unwrap()
    });

    assert_eq!(
        out.stats.dispatched, 2,
        "both diagonal tiles dispatched before the budget hit; none after"
    );
    assert_eq!(
        out.stats.completed, 2,
        "the in-flight completion was accepted during teardown"
    );
    let cp = out.checkpoint.expect("budget stop yields a checkpoint");
    assert_eq!(
        cp.finished_len(),
        2,
        "teardown-drained DONE is in the checkpoint, not recomputed later"
    );
}

// ---------------------------------------------------------------------
// Heartbeats: a wrongly excluded (slow, not dead) slave is re-admitted.
// ---------------------------------------------------------------------

#[test]
fn silent_but_alive_slave_is_readmitted_after_heartbeat_resumes() {
    // A stalls past task_timeout + heartbeat_timeout (excluded), then
    // resumes heartbeating; the master must re-admit it — zero
    // permanently-excluded live slaves. B paces the run slowly enough
    // that the run is still going when A comes back.
    let problem = EditDistance::new(
        random_sequence(Alphabet::Dna, 30, 160),
        random_sequence(Alphabet::Dna, 30, 161),
    );
    let model = easyhps_core::DagDataDrivenModel::builder(problem.pattern())
        .process_partition_size(easyhps_core::GridDims::square(8))
        .thread_partition_size(easyhps_core::GridDims::square(4))
        .build();
    let dims = model.dag_size();
    let mut config = Deployment::local(2, 1);
    config.task_timeout = Duration::from_millis(100);
    config.ft_poll = Duration::from_millis(10);
    config.heartbeat_timeout = Duration::from_millis(80);

    let mut eps = Network::new(3);
    let ep_b = eps.pop().unwrap();
    let ep_a = eps.pop().unwrap();
    let master_ep = eps.pop().unwrap();

    let mut rep_a = ReliableEndpoint::new(ep_a, RetryPolicy::default());
    let mut rep_b = ReliableEndpoint::new(ep_b, RetryPolicy::default());
    rep_a
        .send_reliable(Rank(0), tags::IDLE, Bytes::new())
        .unwrap();
    rep_b
        .send_reliable(Rank(0), tags::IDLE, Bytes::new())
        .unwrap();

    let out = std::thread::scope(|s| {
        // A: ack its first ASSIGN, stall 300ms (exclusion), then come back
        // heartbeating and serving until END.
        s.spawn(move || {
            let zeros = DpMatrix::<i32>::new(dims);
            let mut stalled = false;
            let mut last_hb = Instant::now();
            loop {
                if stalled && last_hb.elapsed() >= Duration::from_millis(20) {
                    let _ = rep_a.send_unreliable(Rank(0), tags::HEARTBEAT, Bytes::new());
                    last_hb = Instant::now();
                }
                match rep_a.recv_timeout(Duration::from_millis(15)) {
                    Ok(env) if env.tag == tags::ASSIGN => {
                        if !stalled {
                            std::thread::sleep(Duration::from_millis(300));
                            stalled = true;
                        } else {
                            let msg = AssignMsg::decode(&env.payload).unwrap();
                            let done = DoneMsg {
                                task: msg.task,
                                epoch: msg.epoch,
                                region: msg.region,
                                output: zeros.encode_region(msg.region),
                            };
                            rep_a
                                .send_reliable(Rank(0), tags::DONE, done.encode())
                                .unwrap();
                        }
                    }
                    Ok(env) if env.tag == tags::END => {
                        rep_a
                            .send_reliable(Rank(0), tags::STATS, SlaveStatsMsg::default().encode())
                            .unwrap();
                        rep_a.drain_pending(Duration::from_secs(1));
                        return;
                    }
                    Ok(_) | Err(NetError::Timeout) => {}
                    Err(_) => return,
                }
            }
        });
        // B: serve every ASSIGN with a 40ms delay so the 16-tile run
        // outlasts A's stall, heartbeating throughout.
        s.spawn(move || {
            let zeros = DpMatrix::<i32>::new(dims);
            let mut last_hb = Instant::now();
            loop {
                if last_hb.elapsed() >= Duration::from_millis(20) {
                    let _ = rep_b.send_unreliable(Rank(0), tags::HEARTBEAT, Bytes::new());
                    last_hb = Instant::now();
                }
                match rep_b.recv_timeout(Duration::from_millis(15)) {
                    Ok(env) if env.tag == tags::ASSIGN => {
                        std::thread::sleep(Duration::from_millis(40));
                        let msg = AssignMsg::decode(&env.payload).unwrap();
                        let done = DoneMsg {
                            task: msg.task,
                            epoch: msg.epoch,
                            region: msg.region,
                            output: zeros.encode_region(msg.region),
                        };
                        rep_b
                            .send_reliable(Rank(0), tags::DONE, done.encode())
                            .unwrap();
                    }
                    Ok(env) if env.tag == tags::END => {
                        rep_b
                            .send_reliable(Rank(0), tags::STATS, SlaveStatsMsg::default().encode())
                            .unwrap();
                        rep_b.drain_pending(Duration::from_secs(1));
                        return;
                    }
                    Ok(_) | Err(NetError::Timeout) => {}
                    Err(_) => return,
                }
            }
        });
        run_master(master_ep, &problem, &model, &config).unwrap()
    });

    assert!(
        out.stats.readmitted >= 1,
        "the stalled slave must be re-admitted once it is heard again"
    );
    assert_eq!(
        out.stats.dead_slaves, 0,
        "no live slave is permanently excluded"
    );
    assert!(
        out.slave_stats[0].is_some(),
        "readmitted slave reports stats"
    );
    assert!(out.slave_stats[1].is_some());
}

// ---------------------------------------------------------------------
// Regression (PR 4): startup-exclusion — a slave that is slow to say its
// first word is within the heartbeat grace window, not silent-forever.
// (The direct revert detector is the `never_heard_slave_gets_startup_grace`
// unit test in master.rs; this drill exercises the same scenario
// end-to-end over the wire.)
// ---------------------------------------------------------------------

#[test]
fn slow_starting_slave_is_neither_excluded_nor_readmitted() {
    // A sends nothing at all for 400ms, well within the 1s heartbeat
    // grace, then joins and serves. B paces the run slowly enough that it
    // is still going when A appears. A must simply join: zero exclusions,
    // zero re-admissions, stats from both. With the startup seeding of
    // `last_seen` reverted, A counts as "silent since forever" and the
    // FT liveness sweep excludes it on its first poll, so `readmitted`
    // comes back nonzero.
    let problem = EditDistance::new(
        random_sequence(Alphabet::Dna, 30, 170),
        random_sequence(Alphabet::Dna, 30, 171),
    );
    let model = easyhps_core::DagDataDrivenModel::builder(problem.pattern())
        .process_partition_size(easyhps_core::GridDims::square(8))
        .thread_partition_size(easyhps_core::GridDims::square(4))
        .build();
    let dims = model.dag_size();
    let mut config = Deployment::local(2, 1);
    config.task_timeout = Duration::from_millis(200);
    config.ft_poll = Duration::from_millis(10);
    config.heartbeat_timeout = Duration::from_millis(1000);

    let mut eps = Network::new(3);
    let ep_b = eps.pop().unwrap();
    let ep_a = eps.pop().unwrap();
    let master_ep = eps.pop().unwrap();

    let mut rep_b = ReliableEndpoint::new(ep_b, RetryPolicy::default());
    rep_b
        .send_reliable(Rank(0), tags::IDLE, Bytes::new())
        .unwrap();

    let out = std::thread::scope(|s| {
        // A: dead air during the whole startup window, then a normal
        // serving loop with heartbeats.
        s.spawn(move || {
            std::thread::sleep(Duration::from_millis(400));
            let mut rep_a = ReliableEndpoint::new(ep_a, RetryPolicy::default());
            rep_a
                .send_reliable(Rank(0), tags::IDLE, Bytes::new())
                .unwrap();
            let zeros = DpMatrix::<i32>::new(dims);
            let mut last_hb = Instant::now();
            loop {
                if last_hb.elapsed() >= Duration::from_millis(20) {
                    let _ = rep_a.send_unreliable(Rank(0), tags::HEARTBEAT, Bytes::new());
                    last_hb = Instant::now();
                }
                match rep_a.recv_timeout(Duration::from_millis(15)) {
                    Ok(env) if env.tag == tags::ASSIGN => {
                        let msg = AssignMsg::decode(&env.payload).unwrap();
                        let done = DoneMsg {
                            task: msg.task,
                            epoch: msg.epoch,
                            region: msg.region,
                            output: zeros.encode_region(msg.region),
                        };
                        rep_a
                            .send_reliable(Rank(0), tags::DONE, done.encode())
                            .unwrap();
                    }
                    Ok(env) if env.tag == tags::END => {
                        rep_a
                            .send_reliable(Rank(0), tags::STATS, SlaveStatsMsg::default().encode())
                            .unwrap();
                        rep_a.drain_pending(Duration::from_secs(1));
                        return;
                    }
                    Ok(_) | Err(NetError::Timeout) => {}
                    Err(_) => return,
                }
            }
        });
        // B: serve every ASSIGN with a 60ms delay so the 16-tile run
        // outlasts A's 400ms of startup silence.
        s.spawn(move || {
            let zeros = DpMatrix::<i32>::new(dims);
            let mut last_hb = Instant::now();
            loop {
                if last_hb.elapsed() >= Duration::from_millis(20) {
                    let _ = rep_b.send_unreliable(Rank(0), tags::HEARTBEAT, Bytes::new());
                    last_hb = Instant::now();
                }
                match rep_b.recv_timeout(Duration::from_millis(15)) {
                    Ok(env) if env.tag == tags::ASSIGN => {
                        std::thread::sleep(Duration::from_millis(60));
                        let msg = AssignMsg::decode(&env.payload).unwrap();
                        let done = DoneMsg {
                            task: msg.task,
                            epoch: msg.epoch,
                            region: msg.region,
                            output: zeros.encode_region(msg.region),
                        };
                        rep_b
                            .send_reliable(Rank(0), tags::DONE, done.encode())
                            .unwrap();
                    }
                    Ok(env) if env.tag == tags::END => {
                        rep_b
                            .send_reliable(Rank(0), tags::STATS, SlaveStatsMsg::default().encode())
                            .unwrap();
                        rep_b.drain_pending(Duration::from_secs(1));
                        return;
                    }
                    Ok(_) | Err(NetError::Timeout) => {}
                    Err(_) => return,
                }
            }
        });
        run_master(master_ep, &problem, &model, &config).unwrap()
    });

    assert_eq!(
        out.stats.dead_slaves, 0,
        "a slow-starting slave must not be excluded"
    );
    assert_eq!(
        out.stats.readmitted, 0,
        "it was never excluded, so there is nothing to re-admit"
    );
    assert!(
        out.slave_stats[0].is_some(),
        "the late starter reports stats"
    );
    assert!(out.slave_stats[1].is_some());
}

// ---------------------------------------------------------------------
// Regression (PR 4): the teardown drain deadline scales with the
// configured RetryPolicy instead of being hard-coded to 2s.
// ---------------------------------------------------------------------

#[test]
fn teardown_waits_out_a_slow_retry_schedule_for_stats() {
    // A slow retry schedule (worst-case retransmit budget 4.4s) with a
    // 20% lossy slave link, and a slave whose STATS takes 2.6s to appear
    // after END. The pre-fix master cut collection at a flat 2s and
    // returned without the stats; the deadline must instead cover the
    // policy's whole retransmit budget.
    let problem = EditDistance::new(
        random_sequence(Alphabet::Dna, 20, 180),
        random_sequence(Alphabet::Dna, 20, 181),
    );
    let model = easyhps_core::DagDataDrivenModel::builder(problem.pattern())
        .process_partition_size(easyhps_core::GridDims::square(8))
        .thread_partition_size(easyhps_core::GridDims::square(4))
        .build();
    let dims = model.dag_size();
    let mut config = Deployment::local(1, 1);
    config.retry = RetryPolicy {
        max_attempts: 6,
        initial_backoff: Duration::from_millis(200),
        max_backoff: Duration::from_secs(1),
    };

    let plans = vec![None, Some(FaultPlan::lossy(0.2, 77))];
    let mut eps = Network::with_faults(2, &plans);
    let ep_a = eps.pop().unwrap();
    let master_ep = eps.pop().unwrap();

    let mut rep_a = ReliableEndpoint::new(ep_a, RetryPolicy::default());
    rep_a
        .send_reliable(Rank(0), tags::IDLE, Bytes::new())
        .unwrap();

    let out = std::thread::scope(|s| {
        s.spawn(move || {
            let zeros = DpMatrix::<i32>::new(dims);
            loop {
                match rep_a.recv_timeout(Duration::from_millis(15)) {
                    Ok(env) if env.tag == tags::ASSIGN => {
                        let msg = AssignMsg::decode(&env.payload).unwrap();
                        let done = DoneMsg {
                            task: msg.task,
                            epoch: msg.epoch,
                            region: msg.region,
                            output: zeros.encode_region(msg.region),
                        };
                        rep_a
                            .send_reliable(Rank(0), tags::DONE, done.encode())
                            .unwrap();
                    }
                    Ok(env) if env.tag == tags::END => {
                        // Slow stats assembly: past the old flat deadline,
                        // within the policy-derived one.
                        std::thread::sleep(Duration::from_millis(2600));
                        rep_a
                            .send_reliable(Rank(0), tags::STATS, SlaveStatsMsg::default().encode())
                            .unwrap();
                        rep_a.drain_pending(Duration::from_secs(3));
                        return;
                    }
                    Ok(_) | Err(NetError::Timeout) => {}
                    Err(_) => return,
                }
            }
        });
        run_master(master_ep, &problem, &model, &config).unwrap()
    });

    assert_eq!(out.stats.dead_slaves, 0);
    assert!(
        out.slave_stats[0].is_some(),
        "teardown must wait out the retry schedule's worst case, not a \
         hard-coded 2s"
    );
}

// ---------------------------------------------------------------------
// Epoch fencing: a two-incarnation slave's delayed first-incarnation
// DONE is rejected as stale-epoch — counted, never double-accepted —
// and the wire-level run differentially replays through the MasterSched
// state machine with identical accounting.
// ---------------------------------------------------------------------

#[test]
fn zombie_epoch_done_is_fenced_and_replays_through_the_machine() {
    // The wire-level half. A fixed in-process fleet never bumps its
    // fence (that takes a FleetAcceptor rejoin), so the zombie is played
    // from the slave side: for its first assignment the slave emits the
    // DONE twice — once stamped as the *other* incarnation would stamp
    // it (epoch one off the fence) and once correctly. The mis-stamped
    // frame must be counted and dropped before the register table is
    // consulted; the correct one is accepted. Exactly once, no
    // redispatch, no stale-completion.
    let problem = EditDistance::new(
        random_sequence(Alphabet::Dna, 30, 200),
        random_sequence(Alphabet::Dna, 30, 201),
    );
    let model = easyhps_core::DagDataDrivenModel::builder(problem.pattern())
        .process_partition_size(easyhps_core::GridDims::square(8))
        .thread_partition_size(easyhps_core::GridDims::square(4))
        .build();
    let dims = model.dag_size();
    let config = Deployment::local(1, 1);

    let mut eps = Network::new(2);
    let ep_a = eps.pop().unwrap();
    let master_ep = eps.pop().unwrap();

    let mut rep_a = ReliableEndpoint::new(ep_a, RetryPolicy::default());
    rep_a
        .send_reliable(Rank(0), tags::IDLE, Bytes::new())
        .unwrap();

    let out = std::thread::scope(|s| {
        s.spawn(move || {
            let zeros = DpMatrix::<i32>::new(dims);
            let mut zombie_sent = false;
            loop {
                match rep_a.recv_timeout(Duration::from_millis(15)) {
                    Ok(env) if env.tag == tags::ASSIGN => {
                        let msg = AssignMsg::decode(&env.payload).unwrap();
                        let output = zeros.encode_region(msg.region);
                        if !zombie_sent {
                            zombie_sent = true;
                            // The fenced incarnation's delayed DONE: same
                            // task, same payload, wrong epoch stamp.
                            let zombie = DoneMsg {
                                task: msg.task,
                                epoch: msg.epoch.wrapping_add(1),
                                region: msg.region,
                                output: output.clone(),
                            };
                            rep_a
                                .send_reliable(Rank(0), tags::DONE, zombie.encode())
                                .unwrap();
                        }
                        let done = DoneMsg {
                            task: msg.task,
                            epoch: msg.epoch,
                            region: msg.region,
                            output,
                        };
                        rep_a
                            .send_reliable(Rank(0), tags::DONE, done.encode())
                            .unwrap();
                    }
                    Ok(env) if env.tag == tags::END => {
                        rep_a
                            .send_reliable(Rank(0), tags::STATS, SlaveStatsMsg::default().encode())
                            .unwrap();
                        rep_a.drain_pending(Duration::from_secs(1));
                        return;
                    }
                    Ok(_) | Err(NetError::Timeout) => {}
                    Err(_) => return,
                }
            }
        });
        run_master(master_ep, &problem, &model, &config).unwrap()
    });

    // 31x31 in 8x8 tiles -> 16 sub-tasks.
    assert_eq!(out.stats.completed, 16, "every tile accepted exactly once");
    assert_eq!(out.stats.dispatched, 16);
    assert_eq!(
        out.stats.stale_epoch_rejected, 1,
        "the zombie stamp was counted and fenced"
    );
    assert_eq!(
        out.stats.stale_completions, 0,
        "epoch fencing fires before the register table's stale check"
    );
    assert_eq!(out.stats.redispatched, 0, "the fresh DONE landed in time");
    assert_eq!(out.stats.dead_slaves, 0);

    // The differential half: the same order of observations — idle
    // slave, dispatch, a stale-epoch frame for the first assignment,
    // then the genuine completion — fed to the bare MasterSched machine
    // must land on identical accounting.
    use easyhps_core::sched::{MasterAction, MasterEvent, MasterSched, SchedParams};
    let dag = model.master_dag();
    let params = SchedParams::default();
    let mut m = MasterSched::new(&dag, 1, ScheduleMode::Dynamic, &params, None);
    let mut accepted = vec![0u64; dag.len()];
    let mut zombie_replayed = false;
    let mut now = 0u64;
    m.on_event(&dag, MasterEvent::Idle { slave: 0 }).unwrap();
    for _ in 0..4 * dag.len() + 8 {
        if m.is_done() {
            break;
        }
        now += 1_000_000;
        let acts = m.on_event(&dag, MasterEvent::Tick { now_ns: now }).unwrap();
        for a in acts {
            let MasterAction::Assign { slave, task } = a else {
                continue;
            };
            if !zombie_replayed {
                zombie_replayed = true;
                let fenced = m
                    .on_event(&dag, MasterEvent::StaleEpoch { slave, task })
                    .unwrap();
                assert!(fenced.is_empty(), "stale-epoch frame acts: {fenced:?}");
            }
            for d in m.on_event(&dag, MasterEvent::Done { slave, task }).unwrap() {
                if let MasterAction::Accept { task, .. } = d {
                    accepted[task as usize] += 1;
                }
            }
        }
    }
    assert!(m.is_done(), "the replay finishes the DAG");
    let c = m.counters();
    assert_eq!(c.completed, out.stats.completed, "replay diverged: {c:?}");
    assert_eq!(c.dispatched, out.stats.dispatched, "replay diverged: {c:?}");
    assert_eq!(
        c.stale_epoch, out.stats.stale_epoch_rejected,
        "replay diverged: {c:?}"
    );
    assert!(
        accepted.iter().all(|n| *n == 1),
        "a tile was double-accepted in replay: {accepted:?}"
    );
}

// ---------------------------------------------------------------------
// Regression (PR 4): a DONE frame from an out-of-range source rank is
// ignored outright — no per-slave state touched, no panic from a rogue
// task id, not even a stale-completion count.
// ---------------------------------------------------------------------

#[test]
fn rogue_out_of_range_rank_done_frames_are_ignored() {
    // The network has one rank more than the deployment knows about; the
    // extra rank floods the master with DONE frames carrying an
    // out-of-range task id. On the pre-fix master the main loop reached
    // `register.accepts` with the rogue rank (and an unhardened register
    // table panicked on the task index); now the frames must vanish
    // without a trace while the real slaves finish the run bit-exactly.
    let problem = EditDistance::new(
        random_sequence(Alphabet::Dna, 30, 190),
        random_sequence(Alphabet::Dna, 30, 191),
    );
    let reference = problem.solve_sequential();
    let model = easyhps_core::DagDataDrivenModel::builder(problem.pattern())
        .process_partition_size(easyhps_core::GridDims::square(8))
        .thread_partition_size(easyhps_core::GridDims::square(4))
        .build();
    let dims = model.dag_size();
    let config = Deployment::local(2, 2);

    let mut eps = Network::new(4);
    let rogue_ep = eps.pop().unwrap(); // rank 3: not a slave
    let ep_b = eps.pop().unwrap();
    let ep_a = eps.pop().unwrap();
    let master_ep = eps.pop().unwrap();

    // Queue the rogue frames before the master starts so they are
    // processed by the main loop, not the teardown drain.
    let mut rogue = ReliableEndpoint::new(rogue_ep, RetryPolicy::default());
    let region = easyhps_core::TileRegion::new(0, 1, 0, 1);
    let rogue_done = DoneMsg {
        task: u32::MAX,
        epoch: 0,
        region,
        output: DpMatrix::<i32>::new(dims).encode_region(region),
    };
    for _ in 0..3 {
        rogue
            .send_reliable(Rank(0), tags::DONE, rogue_done.encode())
            .unwrap();
    }

    let out = std::thread::scope(|s| {
        let (p, m, c) = (&problem, &model, &config);
        s.spawn(move || {
            let _ = run_slave(ep_a, p, m, c);
        });
        s.spawn(move || {
            let _ = run_slave(ep_b, p, m, c);
        });
        // Let the rogue pump its retransmit/ack cycle while the run goes.
        s.spawn(move || {
            rogue.drain_pending(Duration::from_secs(2));
        });
        run_master(master_ep, &problem, &model, &config).unwrap()
    });

    assert_eq!(out.matrix, reference, "real slaves still compute exactly");
    assert_eq!(out.stats.completed, 16);
    assert_eq!(
        out.stats.stale_completions, 0,
        "rogue frames are ignored outright, not counted as stale"
    );
    assert_eq!(out.stats.dead_slaves, 0);
}
