//! Lock-free metrics: counters, gauges and log-scale histograms behind a
//! shared [`Registry`], with Prometheus-style text exposition and JSON
//! snapshot export.
//!
//! The hot-path contract: registration (name lookup) takes a mutex once,
//! after which the caller holds an `Arc` handle whose update methods are a
//! single relaxed atomic RMW — cheap enough for per-message and
//! per-sub-task code. A [`Histogram`] uses 64 fixed power-of-two buckets
//! (one per bit position of the observed value), so `observe` is two
//! `fetch_add`s, one `fetch_max` and no allocation; quantiles are read
//! back with one-octave resolution, clamped to the exact observed
//! maximum.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::json::JsonValue;

/// A monotonically increasing counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Increment by one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Increment by `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A gauge: a value that can move both ways (e.g. currently-dead slaves).
#[derive(Debug, Default)]
pub struct Gauge(AtomicI64);

impl Gauge {
    /// Set the value.
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Add `d` (may be negative).
    pub fn add(&self, d: i64) {
        self.0.fetch_add(d, Ordering::Relaxed);
    }

    /// Raise the value to `v` if it is larger (high-water marks).
    pub fn set_max(&self, v: i64) {
        self.0.fetch_max(v, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Number of histogram buckets: one per bit position of a `u64` value.
pub const HIST_BUCKETS: usize = 64;

/// A fixed-bucket log-scale histogram of `u64` samples (typically
/// nanoseconds). Bucket `i` holds values with `floor(log2(v)) == i`
/// (value 0 lands in bucket 0), so recording never allocates and never
/// locks.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; HIST_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self {
            buckets: [const { AtomicU64::new(0) }; HIST_BUCKETS],
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }
}

impl Histogram {
    /// Record one sample.
    pub fn observe(&self, v: u64) {
        let idx = 63 - (v | 1).leading_zeros() as usize;
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all samples.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Largest sample (0 when empty).
    pub fn max(&self) -> u64 {
        self.max.load(Ordering::Relaxed)
    }

    /// Mean sample (0.0 when empty).
    pub fn mean(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            self.sum() as f64 / n as f64
        }
    }

    /// The `q`-quantile (`0.0..=1.0`) with one-octave resolution: the
    /// upper bound of the bucket holding the target sample, clamped to
    /// the exact observed maximum. 0 when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        let counts: Vec<u64> = self
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        let total: u64 = counts.iter().sum();
        if total == 0 {
            return 0;
        }
        let target = ((q.clamp(0.0, 1.0) * total as f64).ceil() as u64).clamp(1, total);
        let mut cum = 0u64;
        for (i, c) in counts.iter().enumerate() {
            cum += c;
            if cum >= target {
                let upper = if i >= 63 {
                    u64::MAX
                } else {
                    (1u64 << (i + 1)) - 1
                };
                return upper.min(self.max());
            }
        }
        self.max()
    }

    /// Snapshot of the derived statistics.
    pub fn snapshot(&self) -> HistSnapshot {
        HistSnapshot {
            count: self.count(),
            sum: self.sum(),
            max: self.max(),
            p50: self.quantile(0.50),
            p95: self.quantile(0.95),
            p99: self.quantile(0.99),
        }
    }
}

/// Point-in-time view of a [`Histogram`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct HistSnapshot {
    /// Samples recorded.
    pub count: u64,
    /// Sum of samples.
    pub sum: u64,
    /// Exact maximum sample.
    pub max: u64,
    /// Median (one-octave resolution).
    pub p50: u64,
    /// 95th percentile (one-octave resolution).
    pub p95: u64,
    /// 99th percentile (one-octave resolution).
    pub p99: u64,
}

#[derive(Debug, Clone)]
enum Metric {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

/// A named collection of metrics. Handles returned by the accessors are
/// `Arc`s: keep them on the hot path instead of re-looking names up.
/// Cloning an `Arc<Registry>` shares the underlying metrics — in the
/// in-process virtual cluster, master and slaves all write to one
/// registry, distinguished by metric labels.
#[derive(Debug, Default)]
pub struct Registry {
    metrics: Mutex<BTreeMap<String, Metric>>,
}

/// Render `name{k="v",...}` — the registry's label convention. Metrics
/// with the same base name and different labels are distinct series.
pub fn labeled(name: &str, labels: &[(&str, &str)]) -> String {
    if labels.is_empty() {
        return name.to_string();
    }
    let mut out = String::with_capacity(name.len() + 16 * labels.len());
    out.push_str(name);
    out.push('{');
    for (i, (k, v)) in labels.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(k);
        out.push_str("=\"");
        out.push_str(v);
        out.push('"');
    }
    out.push('}');
    out
}

impl Registry {
    /// Empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Get or create the counter `name`. Panics if `name` is already
    /// registered as a different metric kind.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let mut m = self.metrics.lock().expect("registry mutex");
        match m
            .entry(name.to_string())
            .or_insert_with(|| Metric::Counter(Arc::new(Counter::default())))
        {
            Metric::Counter(c) => c.clone(),
            _ => panic!("metric {name} already registered with a different kind"),
        }
    }

    /// Get or create the gauge `name`. Panics on a kind mismatch.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        let mut m = self.metrics.lock().expect("registry mutex");
        match m
            .entry(name.to_string())
            .or_insert_with(|| Metric::Gauge(Arc::new(Gauge::default())))
        {
            Metric::Gauge(g) => g.clone(),
            _ => panic!("metric {name} already registered with a different kind"),
        }
    }

    /// Get or create the histogram `name`. Panics on a kind mismatch.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        let mut m = self.metrics.lock().expect("registry mutex");
        match m
            .entry(name.to_string())
            .or_insert_with(|| Metric::Histogram(Arc::new(Histogram::default())))
        {
            Metric::Histogram(h) => h.clone(),
            _ => panic!("metric {name} already registered with a different kind"),
        }
    }

    /// Point-in-time snapshot of every registered metric, sorted by name.
    pub fn snapshot(&self) -> Snapshot {
        let m = self.metrics.lock().expect("registry mutex");
        let entries = m
            .iter()
            .map(|(name, metric)| {
                let value = match metric {
                    Metric::Counter(c) => MetricValue::Counter(c.get()),
                    Metric::Gauge(g) => MetricValue::Gauge(g.get()),
                    Metric::Histogram(h) => MetricValue::Histogram(h.snapshot()),
                };
                (name.clone(), value)
            })
            .collect();
        Snapshot { entries }
    }
}

/// Snapshotted value of one metric.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum MetricValue {
    /// Counter value.
    Counter(u64),
    /// Gauge value.
    Gauge(i64),
    /// Histogram statistics.
    Histogram(HistSnapshot),
}

/// A point-in-time snapshot of a [`Registry`], renderable as Prometheus
/// text exposition or JSON.
#[derive(Clone, Debug, Default)]
pub struct Snapshot {
    /// `(full name, value)`, sorted by name.
    pub entries: Vec<(String, MetricValue)>,
}

/// `name{a="b"}` -> `("name", Some("a=\"b\""))`.
fn split_labels(full: &str) -> (&str, Option<&str>) {
    match full.split_once('{') {
        Some((base, rest)) => (base, Some(rest.trim_end_matches('}'))),
        None => (full, None),
    }
}

/// Re-attach labels, optionally appending one extra `k="v"` pair.
fn with_labels(base: &str, labels: Option<&str>, extra: Option<(&str, &str)>) -> String {
    let mut parts = Vec::new();
    if let Some(l) = labels {
        parts.push(l.to_string());
    }
    if let Some((k, v)) = extra {
        parts.push(format!("{k}=\"{v}\""));
    }
    if parts.is_empty() {
        base.to_string()
    } else {
        format!("{base}{{{}}}", parts.join(","))
    }
}

impl Snapshot {
    /// Value of the counter `name` (full name, labels included).
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.entries.iter().find_map(|(n, v)| match v {
            MetricValue::Counter(c) if n == name => Some(*c),
            _ => None,
        })
    }

    /// Value of the gauge `name`.
    pub fn gauge(&self, name: &str) -> Option<i64> {
        self.entries.iter().find_map(|(n, v)| match v {
            MetricValue::Gauge(g) if n == name => Some(*g),
            _ => None,
        })
    }

    /// Statistics of the histogram `name`.
    pub fn histogram(&self, name: &str) -> Option<HistSnapshot> {
        self.entries.iter().find_map(|(n, v)| match v {
            MetricValue::Histogram(h) if n == name => Some(*h),
            _ => None,
        })
    }

    /// Sum of every counter series whose base name is `base` (labels
    /// aggregated away).
    pub fn counter_total(&self, base: &str) -> u64 {
        self.entries
            .iter()
            .filter(|(n, _)| split_labels(n).0 == base)
            .map(|(_, v)| match v {
                MetricValue::Counter(c) => *c,
                _ => 0,
            })
            .sum()
    }

    /// Prometheus-style text exposition. Histograms render as summaries:
    /// `_count`, `_sum`, `_max` plus `quantile`-labelled series.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        let mut last_typed: Option<String> = None;
        for (name, value) in &self.entries {
            let (base, labels) = split_labels(name);
            let kind = match value {
                MetricValue::Counter(_) => "counter",
                MetricValue::Gauge(_) => "gauge",
                MetricValue::Histogram(_) => "summary",
            };
            if last_typed.as_deref() != Some(base) {
                out.push_str(&format!("# TYPE {base} {kind}\n"));
                last_typed = Some(base.to_string());
            }
            match value {
                MetricValue::Counter(c) => out.push_str(&format!("{name} {c}\n")),
                MetricValue::Gauge(g) => out.push_str(&format!("{name} {g}\n")),
                MetricValue::Histogram(h) => {
                    let series = |extra| with_labels(base, labels, extra);
                    out.push_str(&format!("{}_count{} {}\n", base, suffix(labels), h.count));
                    out.push_str(&format!("{}_sum{} {}\n", base, suffix(labels), h.sum));
                    out.push_str(&format!("{}_max{} {}\n", base, suffix(labels), h.max));
                    out.push_str(&format!(
                        "{} {}\n",
                        series(Some(("quantile", "0.5"))),
                        h.p50
                    ));
                    out.push_str(&format!(
                        "{} {}\n",
                        series(Some(("quantile", "0.95"))),
                        h.p95
                    ));
                    out.push_str(&format!(
                        "{} {}\n",
                        series(Some(("quantile", "0.99"))),
                        h.p99
                    ));
                }
            }
        }
        out
    }

    /// JSON snapshot: `{"counters":{...},"gauges":{...},"histograms":{...}}`.
    pub fn render_json(&self) -> String {
        let mut counters = Vec::new();
        let mut gauges = Vec::new();
        let mut histograms = Vec::new();
        for (name, value) in &self.entries {
            match value {
                MetricValue::Counter(c) => {
                    counters.push((name.clone(), JsonValue::from(*c)));
                }
                MetricValue::Gauge(g) => {
                    gauges.push((name.clone(), JsonValue::Num(*g as f64)));
                }
                MetricValue::Histogram(h) => {
                    let obj = JsonValue::Obj(vec![
                        ("count".into(), JsonValue::from(h.count)),
                        ("sum".into(), JsonValue::from(h.sum)),
                        ("max".into(), JsonValue::from(h.max)),
                        ("p50".into(), JsonValue::from(h.p50)),
                        ("p95".into(), JsonValue::from(h.p95)),
                        ("p99".into(), JsonValue::from(h.p99)),
                        ("mean".into(), JsonValue::Num(h.mean())),
                    ]);
                    histograms.push((name.clone(), obj));
                }
            }
        }
        JsonValue::Obj(vec![
            ("counters".into(), JsonValue::Obj(counters)),
            ("gauges".into(), JsonValue::Obj(gauges)),
            ("histograms".into(), JsonValue::Obj(histograms)),
        ])
        .to_string()
    }
}

impl HistSnapshot {
    fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

/// `Some("a=\"b\"")` -> `{a="b"}`, `None` -> ``.
fn suffix(labels: Option<&str>) -> String {
    match labels {
        Some(l) => format!("{{{l}}}"),
        None => String::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_roundtrip() {
        let r = Registry::new();
        let c = r.counter("easyhps_test_total");
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        // Same name returns the same underlying metric.
        assert_eq!(r.counter("easyhps_test_total").get(), 5);

        let g = r.gauge("easyhps_test_gauge");
        g.set(7);
        g.add(-3);
        g.set_max(2);
        assert_eq!(g.get(), 4);
        g.set_max(10);
        assert_eq!(g.get(), 10);
    }

    #[test]
    fn histogram_quantiles_are_octave_accurate() {
        let h = Histogram::default();
        for v in 1..=1000u64 {
            h.observe(v);
        }
        assert_eq!(h.count(), 1000);
        assert_eq!(h.sum(), 500_500);
        assert_eq!(h.max(), 1000);
        // True p50 = 500; bucket [512, 1023] or [256, 511] upper bound.
        let p50 = h.quantile(0.5);
        assert!((256..=1023).contains(&p50), "p50 = {p50}");
        // p99 = 990 -> bucket [512,1023], clamped to max 1000.
        assert_eq!(h.quantile(0.99), 1000);
        assert_eq!(h.quantile(1.0), 1000);
        // Empty histogram.
        let e = Histogram::default();
        assert_eq!(e.quantile(0.5), 0);
        assert_eq!(e.mean(), 0.0);
    }

    #[test]
    fn histogram_handles_zero_and_huge_values() {
        let h = Histogram::default();
        h.observe(0);
        h.observe(u64::MAX);
        assert_eq!(h.count(), 2);
        assert_eq!(h.max(), u64::MAX);
        assert_eq!(h.quantile(0.0), 1, "zero lands in bucket 0 (upper bound 1)");
    }

    #[test]
    fn labeled_series_are_distinct() {
        let r = Registry::new();
        r.counter(&labeled("retx", &[("peer", "1")])).add(3);
        r.counter(&labeled("retx", &[("peer", "2")])).add(5);
        let snap = r.snapshot();
        assert_eq!(snap.counter("retx{peer=\"1\"}"), Some(3));
        assert_eq!(snap.counter("retx{peer=\"2\"}"), Some(5));
        assert_eq!(snap.counter_total("retx"), 8);
    }

    #[test]
    fn text_exposition_format() {
        let r = Registry::new();
        r.counter("a_total").add(2);
        r.gauge("b_gauge").set(-1);
        r.histogram("lat_ns").observe(100);
        let text = r.snapshot().render_text();
        assert!(
            text.contains("# TYPE a_total counter\na_total 2\n"),
            "{text}"
        );
        assert!(
            text.contains("# TYPE b_gauge gauge\nb_gauge -1\n"),
            "{text}"
        );
        assert!(text.contains("lat_ns_count 1"), "{text}");
        assert!(text.contains("lat_ns{quantile=\"0.5\"} 100"), "{text}");
    }

    #[test]
    fn json_snapshot_parses_back() {
        let r = Registry::new();
        r.counter(&labeled("retx", &[("peer", "3")])).add(7);
        r.histogram("lat_ns").observe(1024);
        let json = r.snapshot().render_json();
        let v = crate::json::parse(&json).expect("valid JSON");
        let c = v
            .get("counters")
            .and_then(|c| c.get("retx{peer=\"3\"}"))
            .and_then(|x| x.as_f64());
        assert_eq!(c, Some(7.0));
        let p50 = v
            .get("histograms")
            .and_then(|h| h.get("lat_ns"))
            .and_then(|h| h.get("p50"))
            .and_then(|x| x.as_f64());
        assert_eq!(p50, Some(1024.0));
    }

    #[test]
    fn concurrent_updates_do_not_lose_counts() {
        let r = Arc::new(Registry::new());
        let c = r.counter("c");
        let h = r.histogram("h");
        std::thread::scope(|s| {
            for _ in 0..4 {
                let (c, h) = (c.clone(), h.clone());
                s.spawn(move || {
                    for i in 0..10_000u64 {
                        c.inc();
                        h.observe(i);
                    }
                });
            }
        });
        assert_eq!(c.get(), 40_000);
        assert_eq!(h.count(), 40_000);
    }
}
