//! Validation of exported Chrome trace-event JSON — used by tests and by
//! the `validate-trace` binary CI runs against real exports.

use std::collections::BTreeMap;

use crate::json::{parse, JsonValue};

/// What a validated trace contains.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct TraceSummary {
    /// Non-metadata events.
    pub events: usize,
    /// Distinct `(pid, tid)` lanes with at least one event.
    pub lanes: usize,
    /// Distinct pids with at least one event.
    pub pids: usize,
    /// Event count per name, sorted.
    pub by_name: Vec<(String, usize)>,
}

impl TraceSummary {
    /// Events recorded under `name`.
    pub fn count(&self, name: &str) -> usize {
        self.by_name
            .iter()
            .find(|(n, _)| n == name)
            .map_or(0, |(_, c)| *c)
    }
}

fn field_f64(e: &JsonValue, key: &str) -> Option<f64> {
    e.get(key).and_then(|v| v.as_f64())
}

/// Check that `text` is a loadable Chrome trace: it parses as JSON, has a
/// non-empty `traceEvents` array, every event carries `name`/`ph`/`pid`/
/// `tid` (and `ts` for non-metadata phases), and timestamps are monotone
/// non-decreasing per `(pid, tid)` lane in array order — the property
/// Perfetto's importer relies on for complete events emitted in order.
pub fn validate_chrome_trace(text: &str) -> Result<TraceSummary, String> {
    let doc = parse(text).map_err(|e| format!("not valid JSON: {e}"))?;
    let events = doc
        .get("traceEvents")
        .and_then(|v| v.as_array())
        .ok_or("missing traceEvents array")?;
    let mut last_ts: BTreeMap<(u64, u64), f64> = BTreeMap::new();
    let mut by_name: BTreeMap<String, usize> = BTreeMap::new();
    let mut pids: Vec<u64> = Vec::new();
    let mut real_events = 0usize;
    for (i, e) in events.iter().enumerate() {
        let name = e
            .get("name")
            .and_then(|v| v.as_str())
            .ok_or(format!("event {i}: missing name"))?;
        let ph = e
            .get("ph")
            .and_then(|v| v.as_str())
            .ok_or(format!("event {i}: missing ph"))?;
        let pid = field_f64(e, "pid").ok_or(format!("event {i}: missing pid"))? as u64;
        let tid = field_f64(e, "tid").ok_or(format!("event {i}: missing tid"))? as u64;
        if ph == "M" {
            continue; // metadata carries no timestamp
        }
        let ts = field_f64(e, "ts").ok_or(format!("event {i} ({name}): missing ts"))?;
        if ph == "X" && field_f64(e, "dur").is_none() {
            return Err(format!("event {i} ({name}): complete event without dur"));
        }
        let lane = (pid, tid);
        if let Some(prev) = last_ts.get(&lane) {
            if ts < *prev {
                return Err(format!(
                    "event {i} ({name}): ts {ts} < previous {prev} on lane pid={pid} tid={tid}"
                ));
            }
        }
        last_ts.insert(lane, ts);
        *by_name.entry(name.to_string()).or_default() += 1;
        if !pids.contains(&pid) {
            pids.push(pid);
        }
        real_events += 1;
    }
    if real_events == 0 {
        return Err("trace contains no events".into());
    }
    Ok(TraceSummary {
        events: real_events,
        lanes: last_ts.len(),
        pids: pids.len(),
        by_name: by_name.into_iter().collect(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accepts_a_minimal_trace() {
        let text = r#"{"traceEvents":[
            {"name":"process_name","ph":"M","pid":1,"tid":0,"args":{"name":"slave"}},
            {"name":"a","cat":"t","ph":"X","ts":1.0,"dur":2.0,"pid":1,"tid":0},
            {"name":"b","cat":"t","ph":"i","s":"t","ts":5.0,"pid":1,"tid":0}
        ]}"#;
        let s = validate_chrome_trace(text).unwrap();
        assert_eq!(s.events, 2);
        assert_eq!(s.lanes, 1);
        assert_eq!(s.pids, 1);
        assert_eq!(s.count("a"), 1);
        assert_eq!(s.count("missing"), 0);
    }

    #[test]
    fn rejects_non_monotone_lane() {
        let text = r#"{"traceEvents":[
            {"name":"a","ph":"i","s":"t","ts":5.0,"pid":0,"tid":0},
            {"name":"b","ph":"i","s":"t","ts":1.0,"pid":0,"tid":0}
        ]}"#;
        let err = validate_chrome_trace(text).unwrap_err();
        assert!(err.contains("ts 1 < previous 5"), "{err}");
        // Different lanes may interleave freely.
        let ok = r#"{"traceEvents":[
            {"name":"a","ph":"i","s":"t","ts":5.0,"pid":0,"tid":0},
            {"name":"b","ph":"i","s":"t","ts":1.0,"pid":0,"tid":1}
        ]}"#;
        assert!(validate_chrome_trace(ok).is_ok());
    }

    #[test]
    fn rejects_empty_or_malformed() {
        assert!(validate_chrome_trace("{}").is_err());
        assert!(validate_chrome_trace("{\"traceEvents\":[]}").is_err());
        assert!(validate_chrome_trace("not json").is_err());
        assert!(
            validate_chrome_trace(
                r#"{"traceEvents":[{"name":"a","ph":"X","ts":1,"pid":0,"tid":0}]}"#
            )
            .is_err(),
            "X without dur rejected"
        );
    }
}
