//! Structured event recording with Chrome trace-event export.
//!
//! An [`EventRecorder`] is shared (via `Arc`) by every thread of a run.
//! Each thread obtains a [`LaneBuf`] — an owned, append-only buffer keyed
//! by a Chrome `(pid, tid)` lane — and records spans and instants into it
//! with no synchronization at all; the buffer is drained into the
//! recorder exactly once, when the lane is dropped (thread teardown).
//! [`EventRecorder::chrome_trace_json`] then merges every lane, sorts by
//! `(pid, tid, ts)` and writes the Chrome trace-event JSON format that
//! Perfetto (<https://ui.perfetto.dev>) and `chrome://tracing` load
//! directly.
//!
//! All timestamps are nanoseconds since the recorder's creation, taken
//! from one shared monotonic epoch so lanes recorded on different threads
//! line up in the viewer.

use std::sync::{Arc, Mutex};
use std::time::Instant;

use crate::json::escape_into;

/// Chrome trace-event phase of a [`TraceEvent`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Phase {
    /// A complete span (`ph: "X"`, with a duration).
    Complete,
    /// A point event (`ph: "i"`, thread-scoped).
    Instant,
}

/// One recorded event. Names and categories are static strings so
/// recording never allocates.
#[derive(Clone, Copy, Debug)]
pub struct TraceEvent {
    /// Event name (shown on the slice).
    pub name: &'static str,
    /// Category (Perfetto filter).
    pub cat: &'static str,
    /// Span or instant.
    pub ph: Phase,
    /// Start, nanoseconds since the recorder epoch.
    pub ts_ns: u64,
    /// Duration in nanoseconds (0 for instants).
    pub dur_ns: u64,
    /// Chrome process id (EasyHPS: rank; 0 = master).
    pub pid: u32,
    /// Chrome thread id within the pid.
    pub tid: u32,
    /// Optional single numeric argument, shown in the details pane.
    pub arg: Option<(&'static str, u64)>,
}

#[derive(Debug, Default)]
struct RecorderState {
    events: Vec<TraceEvent>,
    /// `(pid, Some(tid) for thread_name / None for process_name, name)`.
    names: Vec<(u32, Option<u32>, String)>,
}

/// Shared event recorder; see the module docs.
#[derive(Debug)]
pub struct EventRecorder {
    t0: Instant,
    state: Mutex<RecorderState>,
}

impl Default for EventRecorder {
    fn default() -> Self {
        Self::new()
    }
}

impl EventRecorder {
    /// A recorder whose epoch is now.
    pub fn new() -> Self {
        Self {
            t0: Instant::now(),
            state: Mutex::new(RecorderState::default()),
        }
    }

    /// Nanoseconds since the recorder epoch.
    pub fn now_ns(&self) -> u64 {
        self.t0.elapsed().as_nanos() as u64
    }

    /// An owned per-thread buffer writing to lane `(pid, tid)`.
    pub fn lane(self: &Arc<Self>, pid: u32, tid: u32) -> LaneBuf {
        LaneBuf {
            rec: Some(self.clone()),
            pid,
            tid,
            buf: Vec::new(),
        }
    }

    /// Label process `pid` in the trace viewer (metadata event).
    pub fn name_process(&self, pid: u32, name: impl Into<String>) {
        let mut s = self.state.lock().expect("recorder mutex");
        s.names.push((pid, None, name.into()));
    }

    /// Label thread `(pid, tid)` in the trace viewer (metadata event).
    pub fn name_thread(&self, pid: u32, tid: u32, name: impl Into<String>) {
        let mut s = self.state.lock().expect("recorder mutex");
        s.names.push((pid, Some(tid), name.into()));
    }

    fn absorb(&self, mut events: Vec<TraceEvent>) {
        if events.is_empty() {
            return;
        }
        let mut s = self.state.lock().expect("recorder mutex");
        s.events.append(&mut events);
    }

    /// Number of events drained so far (flushed lanes only).
    pub fn len(&self) -> usize {
        self.state.lock().expect("recorder mutex").events.len()
    }

    /// Whether no events have been drained yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Render every drained lane as Chrome trace-event JSON. Events are
    /// sorted by `(pid, tid, ts)`, so timestamps are monotone within each
    /// lane. Timestamps are microseconds with nanosecond fractions, as
    /// the format requires.
    pub fn chrome_trace_json(&self) -> String {
        let s = self.state.lock().expect("recorder mutex");
        let mut events = s.events.clone();
        events.sort_by_key(|e| (e.pid, e.tid, e.ts_ns));
        let mut out = String::with_capacity(128 + events.len() * 96);
        out.push_str("{\"traceEvents\":[");
        let mut first = true;
        for (pid, tid, name) in &s.names {
            push_sep(&mut out, &mut first);
            let (kind, tid) = match tid {
                Some(t) => ("thread_name", *t),
                None => ("process_name", 0),
            };
            out.push_str(&format!(
                "{{\"name\":\"{kind}\",\"ph\":\"M\",\"pid\":{pid},\"tid\":{tid},\"args\":{{\"name\":\""
            ));
            escape_into(&mut out, name);
            out.push_str("\"}}");
        }
        for e in &events {
            push_sep(&mut out, &mut first);
            write_event(&mut out, e);
        }
        out.push_str("],\"displayTimeUnit\":\"ms\"}");
        out
    }
}

fn push_sep(out: &mut String, first: &mut bool) {
    if *first {
        *first = false;
    } else {
        out.push(',');
    }
}

/// `123456789 ns` -> `"123456.789"` (µs with ns fraction, no trailing
/// zeros beyond three decimals).
fn us(ns: u64) -> String {
    format!("{}.{:03}", ns / 1_000, ns % 1_000)
}

fn write_event(out: &mut String, e: &TraceEvent) {
    out.push_str("{\"name\":\"");
    escape_into(out, e.name);
    out.push_str("\",\"cat\":\"");
    escape_into(out, e.cat);
    out.push_str("\",\"ph\":\"");
    match e.ph {
        Phase::Complete => {
            out.push_str("X\",\"ts\":");
            out.push_str(&us(e.ts_ns));
            out.push_str(",\"dur\":");
            // A zero-width span is invisible; clamp to 1 ns.
            out.push_str(&us(e.dur_ns.max(1)));
        }
        Phase::Instant => {
            out.push_str("i\",\"s\":\"t\",\"ts\":");
            out.push_str(&us(e.ts_ns));
        }
    }
    out.push_str(&format!(",\"pid\":{},\"tid\":{}", e.pid, e.tid));
    if let Some((k, v)) = e.arg {
        out.push_str(",\"args\":{\"");
        escape_into(out, k);
        out.push_str(&format!("\":{v}}}"));
    }
    out.push('}');
}

/// An owned, unsynchronized event buffer bound to one `(pid, tid)` lane.
/// Dropping it flushes the buffered events into the recorder. A
/// [`LaneBuf::disabled`] lane accepts the same calls and discards them,
/// so instrumented code needs no `Option` plumbing.
#[derive(Debug)]
pub struct LaneBuf {
    rec: Option<Arc<EventRecorder>>,
    pid: u32,
    tid: u32,
    buf: Vec<TraceEvent>,
}

impl LaneBuf {
    /// A lane that drops everything (tracing off).
    pub fn disabled() -> Self {
        Self {
            rec: None,
            pid: 0,
            tid: 0,
            buf: Vec::new(),
        }
    }

    /// Whether events are actually recorded.
    pub fn is_enabled(&self) -> bool {
        self.rec.is_some()
    }

    /// Nanoseconds since the recorder epoch (0 when disabled).
    pub fn now_ns(&self) -> u64 {
        self.rec.as_ref().map_or(0, |r| r.now_ns())
    }

    /// Record an instant event happening now.
    pub fn instant(
        &mut self,
        name: &'static str,
        cat: &'static str,
        arg: Option<(&'static str, u64)>,
    ) {
        if self.rec.is_some() {
            let ts_ns = self.now_ns();
            self.push(name, cat, Phase::Instant, ts_ns, 0, arg);
        }
    }

    /// Record a complete span from `start_ns` (a previous [`Self::now_ns`])
    /// to now.
    pub fn span_since(
        &mut self,
        name: &'static str,
        cat: &'static str,
        start_ns: u64,
        arg: Option<(&'static str, u64)>,
    ) {
        if self.rec.is_some() {
            let end = self.now_ns();
            self.push(
                name,
                cat,
                Phase::Complete,
                start_ns,
                end.saturating_sub(start_ns),
                arg,
            );
        }
    }

    fn push(
        &mut self,
        name: &'static str,
        cat: &'static str,
        ph: Phase,
        ts_ns: u64,
        dur_ns: u64,
        arg: Option<(&'static str, u64)>,
    ) {
        self.buf.push(TraceEvent {
            name,
            cat,
            ph,
            ts_ns,
            dur_ns,
            pid: self.pid,
            tid: self.tid,
            arg,
        });
    }

    /// Drain buffered events into the recorder now (also done on drop).
    pub fn flush(&mut self) {
        if let Some(rec) = &self.rec {
            rec.absorb(std::mem::take(&mut self.buf));
        }
    }
}

impl Drop for LaneBuf {
    fn drop(&mut self) {
        self.flush();
    }
}

/// Convert an [`easyhps_core::Trace`] (ASCII-Gantt spans, e.g. from the
/// cluster simulator's virtual clock) into Chrome trace-event JSON. Lanes
/// become threads of one process, in the trace's natural lane order, each
/// labelled with its lane name; span labels become event names.
pub fn chrome_json_from_trace(trace: &easyhps_core::Trace) -> String {
    let lanes = trace.lane_names();
    let tid_of = |lane: &str| lanes.iter().position(|l| l == lane).unwrap_or(0) as u32;
    let mut out = String::with_capacity(128 + trace.spans.len() * 96);
    out.push_str("{\"traceEvents\":[");
    let mut first = true;
    push_sep(&mut out, &mut first);
    out.push_str(
        "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":0,\"tid\":0,\"args\":{\"name\":\"easyhps\"}}",
    );
    for (tid, lane) in lanes.iter().enumerate() {
        push_sep(&mut out, &mut first);
        out.push_str(&format!(
            "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":{tid},\"args\":{{\"name\":\""
        ));
        escape_into(&mut out, lane);
        out.push_str("\"}}");
    }
    let mut spans: Vec<&easyhps_core::Span> = trace.spans.iter().collect();
    spans.sort_by(|a, b| {
        (tid_of(&a.lane), a.start_ns)
            .partial_cmp(&(tid_of(&b.lane), b.start_ns))
            .expect("total order")
    });
    for s in spans {
        push_sep(&mut out, &mut first);
        out.push_str("{\"name\":\"");
        escape_into(&mut out, if s.label.is_empty() { "span" } else { &s.label });
        out.push_str("\",\"cat\":\"gantt\",\"ph\":\"X\",\"ts\":");
        out.push_str(&us(s.start_ns));
        out.push_str(",\"dur\":");
        out.push_str(&us((s.end_ns - s.start_ns).max(1)));
        out.push_str(&format!(",\"pid\":0,\"tid\":{}}}", tid_of(&s.lane)));
    }
    out.push_str("],\"displayTimeUnit\":\"ms\"}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::validate::validate_chrome_trace;

    #[test]
    fn lanes_flush_on_drop_and_export_sorted() {
        let rec = Arc::new(EventRecorder::new());
        rec.name_process(1, "slave0");
        rec.name_thread(1, 1, "worker0");
        {
            let mut lane = rec.lane(1, 1);
            let start = lane.now_ns();
            lane.instant("dispatch", "sched", Some(("task", 3)));
            lane.span_since("compute", "tile", start, Some(("task", 3)));
            assert_eq!(rec.len(), 0, "not flushed until drop");
        }
        assert_eq!(rec.len(), 2);
        let json = rec.chrome_trace_json();
        let summary = validate_chrome_trace(&json).expect("valid trace");
        assert_eq!(summary.events, 2);
        assert!(json.contains("\"thread_name\""), "{json}");
        assert!(json.contains("slave0"));
    }

    #[test]
    fn disabled_lane_is_a_no_op() {
        let mut lane = LaneBuf::disabled();
        lane.instant("x", "y", None);
        lane.span_since("x", "y", 0, None);
        lane.flush();
        assert!(!lane.is_enabled());
        assert_eq!(lane.now_ns(), 0);
    }

    #[test]
    fn timestamps_are_monotone_within_a_lane() {
        let rec = Arc::new(EventRecorder::new());
        {
            let mut a = rec.lane(0, 0);
            let mut b = rec.lane(0, 1);
            for _ in 0..50 {
                a.instant("a", "t", None);
                b.instant("b", "t", None);
            }
        }
        let json = rec.chrome_trace_json();
        validate_chrome_trace(&json).expect("monotone per lane");
    }

    #[test]
    fn converter_handles_core_traces() {
        let mut t = easyhps_core::Trace::new();
        t.record("slave10", "b", 500, 900);
        t.record("slave2", "a", 0, 1000);
        t.record("master", "m", 0, 100);
        let json = chrome_json_from_trace(&t);
        let summary = validate_chrome_trace(&json).expect("valid trace");
        assert_eq!(summary.events, 3);
        assert_eq!(summary.lanes, 3);
        // Natural lane order: slave2 gets a lower tid than slave10.
        let s2 = json.find("\"name\":\"slave2\"").unwrap();
        let s10 = json.find("\"name\":\"slave10\"").unwrap();
        assert!(s2 < s10, "slave2 thread named before slave10");
    }

    #[test]
    fn microsecond_rendering() {
        assert_eq!(us(0), "0.000");
        assert_eq!(us(1), "0.001");
        assert_eq!(us(123_456_789), "123456.789");
    }
}
