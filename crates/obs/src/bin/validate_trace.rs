//! `validate-trace` — check that an exported Chrome trace-event JSON file
//! is structurally loadable (parses, non-empty, monotone timestamps per
//! lane) and print a summary. Exit code 1 on any violation; CI runs this
//! against a real `--trace-out` export.

use std::process::ExitCode;

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let Some(path) = args.next() else {
        eprintln!("usage: validate-trace <trace.json> [--expect-pids N] [--expect-event NAME]");
        return ExitCode::FAILURE;
    };
    let mut expect_pids = 0usize;
    let mut expect_events: Vec<String> = Vec::new();
    while let Some(flag) = args.next() {
        let mut value = || args.next().ok_or(format!("{flag} needs a value"));
        let parsed = match flag.as_str() {
            "--expect-pids" => value().and_then(|v| {
                v.parse()
                    .map(|n| expect_pids = n)
                    .map_err(|_| format!("bad number '{v}'"))
            }),
            "--expect-event" => value().map(|v| expect_events.push(v)),
            other => Err(format!("unknown flag '{other}'")),
        };
        if let Err(e) = parsed {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    }

    let text = match std::fs::read_to_string(&path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("error: {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let summary = match easyhps_obs::validate_chrome_trace(&text) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!(
        "{path}: OK — {} events on {} lanes across {} processes",
        summary.events, summary.lanes, summary.pids
    );
    for (name, count) in &summary.by_name {
        println!("  {name}: {count}");
    }
    if expect_pids > 0 && summary.pids < expect_pids {
        eprintln!(
            "error: expected events from at least {expect_pids} processes, saw {}",
            summary.pids
        );
        return ExitCode::FAILURE;
    }
    for name in &expect_events {
        if summary.count(name) == 0 {
            eprintln!("error: expected at least one '{name}' event, saw none");
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}
