//! A minimal JSON value type with a writer and a recursive-descent
//! parser.
//!
//! The workspace is built fully offline (no serde); this module is just
//! enough JSON for the observability exports: the metrics snapshot, the
//! Chrome trace-event file, and the validators that read them back.
//! Objects preserve insertion order; numbers are `f64` (integers up to
//! 2^53 round-trip exactly, which covers every counter and timestamp the
//! exports emit).

use std::fmt;

/// A parsed or to-be-written JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum JsonValue {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (integers render without a decimal point).
    Num(f64),
    /// A string (unescaped).
    Str(String),
    /// An array.
    Arr(Vec<JsonValue>),
    /// An object, insertion-ordered.
    Obj(Vec<(String, JsonValue)>),
}

impl From<u64> for JsonValue {
    fn from(v: u64) -> Self {
        JsonValue::Num(v as f64)
    }
}

impl From<&str> for JsonValue {
    fn from(v: &str) -> Self {
        JsonValue::Str(v.to_string())
    }
}

impl JsonValue {
    /// Member `key` of an object, if present.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The number, if this is one.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The string, if this is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }
}

/// Escape `s` into `out` as a JSON string body (no surrounding quotes).
pub fn escape_into(out: &mut String, s: &str) {
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
}

fn write_num(out: &mut String, n: f64) {
    if n.fract() == 0.0 && n.abs() < 9.0e15 {
        out.push_str(&format!("{}", n as i64));
    } else {
        out.push_str(&format!("{n}"));
    }
}

impl fmt::Display for JsonValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut out = String::new();
        self.write_into(&mut out);
        f.write_str(&out)
    }
}

impl JsonValue {
    fn write_into(&self, out: &mut String) {
        match self {
            JsonValue::Null => out.push_str("null"),
            JsonValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            JsonValue::Num(n) => write_num(out, *n),
            JsonValue::Str(s) => {
                out.push('"');
                escape_into(out, s);
                out.push('"');
            }
            JsonValue::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write_into(out);
                }
                out.push(']');
            }
            JsonValue::Obj(members) => {
                out.push('{');
                for (i, (k, v)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('"');
                    escape_into(out, k);
                    out.push_str("\":");
                    v.write_into(out);
                }
                out.push('}');
            }
        }
    }
}

/// Parse a complete JSON document. Returns a message with a byte offset
/// on malformed input.
pub fn parse(text: &str) -> Result<JsonValue, String> {
    let bytes = text.as_bytes();
    let mut p = Parser { bytes, pos: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != bytes.len() {
        return Err(format!("trailing data at byte {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", b as char, self.pos))
        }
    }

    fn value(&mut self) -> Result<JsonValue, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(JsonValue::Str(self.string()?)),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            other => Err(format!("unexpected {:?} at byte {}", other, self.pos)),
        }
    }

    fn literal(&mut self, word: &str, v: JsonValue) -> Result<JsonValue, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }

    fn number(&mut self) -> Result<JsonValue, String> {
        let start = self.pos;
        while let Some(b) = self.peek() {
            if matches!(b, b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9') {
                self.pos += 1;
            } else {
                break;
            }
        }
        let s = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii");
        s.parse::<f64>()
            .map(JsonValue::Num)
            .map_err(|_| format!("bad number '{s}' at byte {start}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?,
                                16,
                            )
                            .map_err(|_| "bad \\u escape")?;
                            // Surrogate pairs are not emitted by our writer;
                            // map lone surrogates to the replacement char.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        other => return Err(format!("bad escape {other:?}")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 character.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| "invalid UTF-8 in string")?;
                    let ch = rest.chars().next().expect("non-empty");
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<JsonValue, String> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Arr(items));
                }
                other => return Err(format!("expected ',' or ']', got {other:?}")),
            }
        }
    }

    fn object(&mut self) -> Result<JsonValue, String> {
        self.eat(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let value = self.value()?;
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Obj(members));
                }
                other => return Err(format!("expected ',' or '}}', got {other:?}")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_nested() {
        let v = JsonValue::Obj(vec![
            ("a".into(), JsonValue::from(1u64)),
            (
                "b".into(),
                JsonValue::Arr(vec![
                    JsonValue::Str("x\"y\n".into()),
                    JsonValue::Bool(true),
                    JsonValue::Null,
                    JsonValue::Num(1.5),
                ]),
            ),
        ]);
        let text = v.to_string();
        assert_eq!(parse(&text).unwrap(), v);
    }

    #[test]
    fn integers_render_without_decimal_point() {
        assert_eq!(JsonValue::from(42u64).to_string(), "42");
        assert_eq!(JsonValue::Num(2.5).to_string(), "2.5");
    }

    #[test]
    fn parses_whitespace_and_unicode() {
        let v = parse(" { \"k\" : [ 1 , \"caf\\u00e9é\" ] } ").unwrap();
        assert_eq!(
            v.get("k").and_then(|a| a.as_array()).map(|a| a.len()),
            Some(2)
        );
        assert_eq!(
            v.get("k").unwrap().as_array().unwrap()[1].as_str(),
            Some("caféé")
        );
    }

    #[test]
    fn rejects_malformed() {
        assert!(parse("").is_err());
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{\"a\":1} x").is_err());
        assert!(parse("\"unterminated").is_err());
    }
}
