//! # easyhps-obs — metrics and structured tracing for EasyHPS
//!
//! The paper's scheduling claims — wavefront ramp-up, dynamic-vs-static
//! idle time, fault-tolerance gaps — are only as good as what a run can
//! *measure*. This crate is the measurement layer the rest of the
//! workspace reports through:
//!
//! * [`Registry`] — a shared collection of lock-free [`Counter`]s,
//!   [`Gauge`]s and fixed-bucket log-scale [`Histogram`]s. Handles are
//!   `Arc`s updated with single relaxed atomics, cheap enough for
//!   per-message and per-sub-task paths. Snapshots export as
//!   Prometheus-style text ([`Snapshot::render_text`]) or JSON
//!   ([`Snapshot::render_json`]).
//! * [`EventRecorder`] / [`LaneBuf`] — per-thread event buffers (spans
//!   and instants on Chrome `(pid, tid)` lanes, drained at teardown)
//!   exporting the Chrome trace-event JSON that Perfetto
//!   (<https://ui.perfetto.dev>) and `chrome://tracing` load directly,
//!   plus [`chrome_json_from_trace`] to convert an
//!   [`easyhps_core::Trace`] (e.g. the simulator's virtual-time Gantt)
//!   into the same format.
//! * [`validate_chrome_trace`] — the structural check CI runs against
//!   real exports (also available as the `validate-trace` binary).
//! * [`json`] — the tiny JSON reader/writer the exports are built on
//!   (the workspace builds offline, without serde).

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod events;
pub mod json;
mod metrics;
mod validate;

pub use events::{chrome_json_from_trace, EventRecorder, LaneBuf, Phase, TraceEvent};
pub use metrics::{
    labeled, Counter, Gauge, HistSnapshot, Histogram, MetricValue, Registry, Snapshot, HIST_BUCKETS,
};
pub use validate::{validate_chrome_trace, TraceSummary};
